//! JSON persistence of profiled chains.
//!
//! A profile file stores the `(u_F, u_B, W, a)` vector per layer plus the
//! settings it was produced with — exactly what an external profiler
//! (e.g. a PyTorch hook script) would emit. Loading a file produced
//! elsewhere is the supported path for replacing the analytic cost model
//! with real measurements.

use std::fs;
use std::io;
use std::path::Path;

use madpipe_json::{FromJson, JsonError, ToJson, Value};
use madpipe_model::Chain;

use crate::cost::GpuModel;

/// A profiled chain plus the provenance of the numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Batch size used.
    pub batch: u64,
    /// Square image size used.
    pub image_size: u64,
    /// Cost model, when synthesized (absent for measured profiles).
    pub gpu: Option<GpuModel>,
    /// The per-layer costs.
    pub chain: Chain,
}

impl Profile {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        Value::Object(vec![
            ("batch".into(), self.batch.to_json()),
            ("image_size".into(), self.image_size.to_json()),
            (
                "gpu".into(),
                self.gpu
                    .as_ref()
                    .map(ToJson::to_json)
                    .unwrap_or(Value::Null),
            ),
            ("chain".into(), self.chain.to_json()),
        ])
        .to_string_pretty()
    }

    /// Parse from JSON (the chain's prefix sums are rebuilt on read).
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let v = Value::parse(s)?;
        Ok(Self {
            batch: v.field("batch")?.as_u64()?,
            image_size: v.field("image_size")?.as_u64()?,
            gpu: Option::<GpuModel>::from_json(v.field("gpu")?)?,
            chain: Chain::from_json(v.field("chain")?)?,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let s = fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks::resnet50;

    #[test]
    fn json_roundtrip_preserves_costs() {
        let gpu = GpuModel::default();
        let chain = resnet50().profile(8, 1000, &gpu).unwrap();
        let profile = Profile {
            batch: 8,
            image_size: 1000,
            gpu: Some(gpu),
            chain: chain.clone(),
        };
        let back = Profile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back.batch, 8);
        assert_eq!(back.chain.len(), chain.len());
        // Prefix sums were rebuilt: U(1,L) must match.
        assert!((back.chain.total_compute_time() - chain.total_compute_time()).abs() < 1e-12);
    }

    #[test]
    fn file_roundtrip() {
        let gpu = GpuModel::default();
        let chain = resnet50().profile(2, 100, &gpu).unwrap();
        let profile = Profile {
            batch: 2,
            image_size: 100,
            gpu: Some(gpu),
            chain,
        };
        let dir = std::env::temp_dir().join("madpipe-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resnet50.json");
        profile.save(&path).unwrap();
        let back = Profile::load(&path).unwrap();
        assert_eq!(back, profile);
    }
}
