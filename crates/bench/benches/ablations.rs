//! Ablations of MadPipe's design choices, as called out in DESIGN.md:
//!
//! * **special processor on/off** — the paper's central contribution
//!   (non-contiguous allocations) against the same DP restricted to
//!   contiguous placements;
//! * **memory compaction on/off** — the phase-2 Figure-5 interleaving;
//! * **discretization granularity** — coarse / paper-default / fine
//!   grids, trading planning time for solution quality.
//!
//! Each ablation prints the achieved periods over a small memory sweep
//! (ResNet-50, P = 4, β = 12 GB/s) before Criterion measures the
//! planning cost of the two headline variants.

use criterion::{criterion_group, criterion_main, Criterion};

use madpipe_core::{madpipe_plan, Algorithm1Config, Discretization, PlannerConfig};
use madpipe_dnn::{resnet50, GpuModel};
use madpipe_model::Platform;
use madpipe_solver::PlaceConfig;

fn variant(name: &str, cfg: PlannerConfig, chain: &madpipe_model::Chain) {
    print!("{name:<28}");
    for m in [3u64, 4, 6, 8, 12] {
        let platform = Platform::gb(4, m, 12.0).unwrap();
        match madpipe_plan(chain, &platform, &cfg) {
            Ok(p) => print!(" {:>8.1}", p.period() * 1e3),
            Err(_) => print!(" {:>8}", "inf"),
        }
    }
    println!();
}

fn print_table(chain: &madpipe_model::Chain) {
    println!("\nAblation: achieved period (ms), ResNet-50, P = 4, beta = 12 GB/s");
    print!("{:<28}", "variant \\ M(GB)");
    for m in [3u64, 4, 6, 8, 12] {
        print!(" {m:>8}");
    }
    println!();

    let default = PlannerConfig::default();
    variant("madpipe (full)", default, chain);

    variant(
        "no special processor",
        PlannerConfig {
            algorithm1: Algorithm1Config {
                use_special: false,
                ..Algorithm1Config::default()
            },
            ..default
        },
        chain,
    );
    variant(
        "no memory compaction",
        PlannerConfig {
            place: PlaceConfig {
                compaction: false,
                ..PlaceConfig::default()
            },
            ..default
        },
        chain,
    );
    variant(
        "no refinement probes",
        PlannerConfig {
            refine_probes: 0,
            ..default
        },
        chain,
    );
    variant(
        "coarse discretization",
        PlannerConfig {
            algorithm1: Algorithm1Config {
                discretization: Discretization::coarse(),
                ..Algorithm1Config::default()
            },
            ..default
        },
        chain,
    );
    variant(
        "fine discretization",
        PlannerConfig {
            algorithm1: Algorithm1Config {
                discretization: Discretization::fine(),
                ..Algorithm1Config::default()
            },
            ..default
        },
        chain,
    );
}

fn bench(c: &mut Criterion) {
    let chain = resnet50().profile(8, 1000, &GpuModel::default()).unwrap();
    print_table(&chain);

    let platform = Platform::gb(4, 6, 12.0).unwrap();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("plan/default_grid", |b| {
        b.iter(|| {
            madpipe_plan(&chain, &platform, &PlannerConfig::default())
                .unwrap()
                .period()
        })
    });
    let coarse = PlannerConfig {
        algorithm1: Algorithm1Config {
            discretization: Discretization::coarse(),
            ..Algorithm1Config::default()
        },
        ..PlannerConfig::default()
    };
    group.bench_function("plan/coarse_grid", |b| {
        b.iter(|| madpipe_plan(&chain, &platform, &coarse).unwrap().period())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
