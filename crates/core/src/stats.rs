//! Planner observability: counters and timings collected while MadPipe
//! plans, exposed to the CLI (`--stats`) and the bench CSV writers.
//!
//! Two layers of instrumentation:
//!
//! * [`DpStats`] — aggregate counters of the cross-probe DP session
//!   ([`crate::dp::ProbeSession`]): how many DP solves actually ran, how
//!   many probes were answered from the outcome cache or the monotone
//!   infeasibility bound, and the memoization/prune behaviour inside the
//!   solves that did run;
//! * [`PlannerStats`] — the end-to-end picture: the probe timeline (every
//!   target period evaluated, tagged with the planner stage that asked
//!   for it), phase wall-clock times, and phase-2 scheduling counts.

/// Aggregate counters of one [`crate::dp::ProbeSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpStats {
    /// DP solves that actually ran (memo built from scratch).
    pub solves: usize,
    /// Probes answered from the cross-probe outcome cache.
    pub outcome_hits: usize,
    /// Probes answered by the monotone infeasibility bound (a target no
    /// larger than one already proven infeasible).
    pub bound_prunes: usize,
    /// Distinct memoized states created across all solves.
    pub states_created: u64,
    /// States served again from retained shards by outcome-cache hits.
    pub states_reused: u64,
    /// Intra-solve memo lookups that hit an existing state.
    pub memo_hits: u64,
    /// Times the exact load prune (`u ≥ best`) cut a stage scan short.
    pub load_prunes: u64,
    /// Times the monotone memory-overflow break cut a stage scan short.
    pub memory_prunes: u64,
}

impl DpStats {
    /// Fold another set of counters into this one.
    pub fn merge(&mut self, other: &DpStats) {
        self.solves += other.solves;
        self.outcome_hits += other.outcome_hits;
        self.bound_prunes += other.bound_prunes;
        self.states_created += other.states_created;
        self.states_reused += other.states_reused;
        self.memo_hits += other.memo_hits;
        self.load_prunes += other.load_prunes;
        self.memory_prunes += other.memory_prunes;
    }

    /// Probes answered without running a DP solve.
    pub fn probes_saved(&self) -> usize {
        self.outcome_hits + self.bound_prunes
    }
}

/// Which planner stage requested a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSource {
    /// Algorithm 1's bisection over `T̂`.
    Bisection,
    /// The memory-aware contiguous ablation (special processor off).
    ContiguousFallback,
    /// The post-bisection refinement grid.
    Refinement,
}

impl std::fmt::Display for ProbeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeSource::Bisection => write!(f, "bisection"),
            ProbeSource::ContiguousFallback => write!(f, "contiguous"),
            ProbeSource::Refinement => write!(f, "refinement"),
        }
    }
}

/// One entry of the probe timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// Stage that asked for this probe.
    pub source: ProbeSource,
    /// Target period `T̂`.
    pub t_hat: f64,
    /// Whether the special processor was enabled.
    pub use_special: bool,
    /// Raw DP period (infinite when infeasible).
    pub period: f64,
    /// Memoized states of the solve that answered this probe.
    pub states: usize,
    /// Answered from the cross-probe outcome cache (no solve ran).
    pub cached: bool,
    /// Answered by the monotone infeasibility bound (no solve ran).
    pub pruned: bool,
    /// Wall-clock seconds spent answering (≈ 0 for cached/pruned).
    pub seconds: f64,
}

/// End-to-end planner instrumentation for one [`crate::madpipe_plan`]
/// run, also available on failure (the counters explain *why* planning
/// failed, e.g. every probe infeasible).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlannerStats {
    /// Aggregate DP counters of the shared probe session.
    pub dp: DpStats,
    /// Every probe in evaluation order (parallel batches keep their
    /// submission order, so the timeline is deterministic).
    pub probes: Vec<ProbeRecord>,
    /// Distinct allocations handed to phase 2.
    pub schedules_attempted: usize,
    /// Of those, how many produced a valid schedule.
    pub schedules_solved: usize,
    /// Wall time of the phase-1 bisection (including its DP solves).
    pub phase1_seconds: f64,
    /// Wall time of the contiguous-fallback bisection.
    pub fallback_seconds: f64,
    /// Wall time of the refinement-grid probes.
    pub refine_seconds: f64,
    /// Wall time of phase-2 scheduling (all candidate allocations).
    pub schedule_seconds: f64,
    /// Total wall time of the plan call.
    pub total_seconds: f64,
    /// Worker threads used for independent probes and scheduling.
    pub threads: usize,
    /// Plans that passed differential certification
    /// ([`crate::certify::Certificate::record`]).
    pub certifications_passed: usize,
    /// Plans that failed it.
    pub certifications_failed: usize,
}

impl PlannerStats {
    /// One-line summary suitable for CLI output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "probes {} ({} solved, {} cached, {} pruned), states {} (+{} reused), \
             schedules {}/{}, {:.3}s total ({} thread{})",
            self.probes.len(),
            self.dp.solves,
            self.dp.outcome_hits,
            self.dp.bound_prunes,
            self.dp.states_created,
            self.dp.states_reused,
            self.schedules_solved,
            self.schedules_attempted,
            self.total_seconds,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        );
        let certs = self.certifications_passed + self.certifications_failed;
        if certs > 0 {
            s.push_str(&format!(", certify {}/{certs}", self.certifications_passed));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = DpStats {
            solves: 2,
            outcome_hits: 1,
            bound_prunes: 0,
            states_created: 100,
            states_reused: 40,
            memo_hits: 7,
            load_prunes: 3,
            memory_prunes: 1,
        };
        let b = DpStats {
            solves: 1,
            outcome_hits: 2,
            bound_prunes: 3,
            states_created: 10,
            states_reused: 0,
            memo_hits: 1,
            load_prunes: 1,
            memory_prunes: 0,
        };
        a.merge(&b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.outcome_hits, 3);
        assert_eq!(a.bound_prunes, 3);
        assert_eq!(a.states_created, 110);
        assert_eq!(a.probes_saved(), 6);
    }

    #[test]
    fn summary_mentions_the_key_counters() {
        let stats = PlannerStats {
            threads: 4,
            schedules_attempted: 5,
            schedules_solved: 4,
            ..PlannerStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("4/5"));
        assert!(s.contains("4 threads"));
    }
}
