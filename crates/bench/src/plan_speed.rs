//! Plan-speed benchmark: MadPipe planning time over the fig6 grid,
//! serialized to JSON and gated against a committed reference — the data
//! path behind CI's `bench-plan-speed` job.
//!
//! Two properties gate, with very different tolerances:
//!
//! * **Periods gate bit-for-bit.** The planner is deterministic, so the
//!   achieved period of every cell is stored as raw IEEE-754 bits and
//!   compared exactly. Any drift — even 1 ulp — means the solver changed
//!   behaviour, not just speed, and the baseline must be refreshed
//!   deliberately.
//! * **Times gate loosely.** What is measured is the *DP portion* of
//!   planning (phase 1 bisection + contiguous fallback + refinement),
//!   because that is what the dense memo / branch-and-bound work
//!   accelerates; phase-2 scheduling is untouched by it and would dilute
//!   the signal. Wall time is hostage to the CI runner, so the gate only
//!   fails beyond a multiple of the baseline (default 1.25×), and the
//!   per-cell number is a median over repeats.

use std::io;
use std::path::Path;
use std::time::Instant;

use madpipe_core::{madpipe_plan_with_stats, PlannerConfig};
use madpipe_json::{JsonError, Value};
use madpipe_model::Platform;

use crate::grid::{paper_chains, GridConfig};

/// Format version of `BENCH_plan_speed.json`.
pub const PLAN_SPEED_VERSION: u64 = 1;

/// One cell's plan-speed measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpeedRecord {
    pub network: String,
    pub p: usize,
    pub m_gb: u64,
    pub beta_gb: f64,
    /// Median DP seconds across repeats: `phase1 + fallback + refine`
    /// from the planner's phase clocks.
    pub dp_seconds: f64,
    /// Median end-to-end planning seconds across repeats (includes the
    /// phase-2 scheduler; informational, not gated).
    pub total_seconds: f64,
    /// Raw IEEE-754 bits of the achieved period (`None` = infeasible).
    /// Stored as bits, not a float, so the JSON round trip and the gate
    /// are exact by construction.
    pub period_bits: Option<u64>,
}

impl PlanSpeedRecord {
    /// Identity of the cell this record measures.
    pub fn key(&self) -> (String, usize, u64, u64) {
        (
            self.network.clone(),
            self.p,
            self.m_gb,
            self.beta_gb.to_bits(),
        )
    }

    /// The achieved period as a float (for display only).
    pub fn period(&self) -> Option<f64> {
        self.period_bits.map(f64::from_bits)
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("network".into(), Value::Str(self.network.clone())),
            ("p".into(), Value::UInt(self.p as u64)),
            ("m_gb".into(), Value::UInt(self.m_gb)),
            ("beta_gb".into(), Value::Float(self.beta_gb)),
            ("dp_seconds".into(), Value::Float(self.dp_seconds)),
            ("total_seconds".into(), Value::Float(self.total_seconds)),
            (
                "period_bits".into(),
                match self.period_bits {
                    Some(b) => Value::UInt(b),
                    None => Value::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            network: v.field("network")?.as_str()?.to_string(),
            p: v.field("p")?.as_u64()? as usize,
            m_gb: v.field("m_gb")?.as_u64()?,
            beta_gb: v.field("beta_gb")?.as_f64()?,
            dp_seconds: v.field("dp_seconds")?.as_f64()?,
            total_seconds: v.field("total_seconds")?.as_f64()?,
            period_bits: match v.get("period_bits") {
                None | Some(Value::Null) => None,
                Some(b) => Some(b.as_u64()?),
            },
        })
    }
}

/// The measured grid: ResNet-50 over the quick-grid pattern
/// (`P ∈ {2, 4, 8}`, `M ∈ {3, 4, 6, 8, 10, 12, 16}` GB,
/// `β ∈ {12, 24}` GB/s) — 42 cells, the single-network slice of the
/// fig6 sweep. One network keeps the job a couple of minutes while
/// still crossing every memory regime the DP cares about.
pub fn plan_speed_grid() -> GridConfig {
    GridConfig {
        networks: vec!["resnet50".into()],
        ..GridConfig::quick()
    }
}

/// Run the plan-speed grid: every cell planned `repeats` times on a
/// cold session, medians recorded. Panics if repeats is 0 or a cell's
/// period is not bit-identical across its own repeats (that would mean
/// the planner went non-deterministic, which no baseline can gate).
pub fn run_plan_speed(
    cfg: &GridConfig,
    planner: &PlannerConfig,
    repeats: usize,
) -> Vec<PlanSpeedRecord> {
    assert!(repeats > 0, "plan-speed needs at least one repeat");
    let chains = paper_chains(cfg);
    let mut out = Vec::new();
    for (chain, network) in chains.iter().zip(&cfg.networks) {
        for cell in cfg.cells().iter().filter(|c| &c.network == network) {
            let platform =
                Platform::gb(cell.p, cell.m_gb, cell.beta_gb).expect("valid grid platform");
            let mut dp_times = Vec::with_capacity(repeats);
            let mut totals = Vec::with_capacity(repeats);
            let mut bits: Option<Option<u64>> = None;
            for _ in 0..repeats {
                let wall = Instant::now();
                let (plan, stats) = madpipe_plan_with_stats(chain, &platform, planner);
                let total = wall.elapsed().as_secs_f64();
                let dp = stats.phase1_seconds + stats.fallback_seconds + stats.refine_seconds;
                let these = plan.ok().map(|p| p.period().to_bits());
                match &bits {
                    None => bits = Some(these),
                    Some(prev) => assert_eq!(
                        *prev, these,
                        "{} P={} M={}GB: period changed across repeats",
                        cell.network, cell.p, cell.m_gb
                    ),
                }
                dp_times.push(dp);
                totals.push(total);
            }
            out.push(PlanSpeedRecord {
                network: cell.network.clone(),
                p: cell.p,
                m_gb: cell.m_gb,
                beta_gb: cell.beta_gb,
                dp_seconds: median(&mut dp_times),
                total_seconds: median(&mut totals),
                period_bits: bits.expect("repeats > 0"),
            });
        }
    }
    out
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Serialize `records` as a `BENCH_plan_speed.json` document.
pub fn render(records: &[PlanSpeedRecord]) -> String {
    let doc = Value::Object(vec![
        ("version".into(), Value::UInt(PLAN_SPEED_VERSION)),
        (
            "records".into(),
            Value::Array(records.iter().map(|r| r.to_json()).collect()),
        ),
    ]);
    doc.to_string_pretty()
}

/// Write `records` to `path`.
pub fn save(records: &[PlanSpeedRecord], path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, render(records))
}

/// Load a `BENCH_plan_speed.json` document.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<PlanSpeedRecord>, String> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    parse(&text).map_err(|e| format!("parsing {}: {e}", path.as_ref().display()))
}

/// Parse a `BENCH_plan_speed.json` document from text.
pub fn parse(text: &str) -> Result<Vec<PlanSpeedRecord>, JsonError> {
    let doc = Value::parse(text)?;
    let version = doc.field("version")?.as_u64()?;
    if version != PLAN_SPEED_VERSION {
        return Err(JsonError::new(format!(
            "plan-speed baseline version {version} (this build reads {PLAN_SPEED_VERSION})"
        )));
    }
    doc.field("records")?
        .as_array()?
        .iter()
        .map(PlanSpeedRecord::from_json)
        .collect()
}

/// Compare `current` against `baseline`.
///
/// Violations (returned as human-readable lines, empty = pass):
/// * a cell present in one set but not the other;
/// * a period differing from the baseline **in any bit** (including
///   feasible/infeasible flips) — the solver changed behaviour;
/// * the DP time exceeding `time_factor ×` the baseline plus a 10 ms
///   absolute grace — the fastest cells finish in ~10 ms, where
///   scheduler jitter alone exceeds any sane relative factor.
pub fn compare_plan_speed(
    current: &[PlanSpeedRecord],
    baseline: &[PlanSpeedRecord],
    time_factor: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let describe = |r: &PlanSpeedRecord| {
        format!(
            "{} P={} M={}GB beta={}GB/s",
            r.network, r.p, r.m_gb, r.beta_gb
        )
    };
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            violations.push(format!("{}: missing from the current run", describe(base)));
            continue;
        };
        if cur.period_bits != base.period_bits {
            let show = |b: &Option<u64>| match b {
                Some(bits) => format!("{:.17e} ({bits:#018x})", f64::from_bits(*bits)),
                None => "infeasible".to_string(),
            };
            violations.push(format!(
                "{}: period not bit-identical: {} vs baseline {}",
                describe(base),
                show(&cur.period_bits),
                show(&base.period_bits)
            ));
        }
        const TIME_GRACE_SECONDS: f64 = 0.010;
        if base.dp_seconds > 0.0
            && cur.dp_seconds > base.dp_seconds * time_factor + TIME_GRACE_SECONDS
        {
            violations.push(format!(
                "{}: DP took {:.3} s vs baseline {:.3} s (> {time_factor}x + 10ms)",
                describe(base),
                cur.dp_seconds,
                base.dp_seconds
            ));
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.key() == cur.key()) {
            violations.push(format!(
                "{}: not in the baseline (refresh it)",
                describe(cur)
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(p: usize, m: u64, period: Option<f64>, dp: f64) -> PlanSpeedRecord {
        PlanSpeedRecord {
            network: "resnet50".into(),
            p,
            m_gb: m,
            beta_gb: 12.0,
            dp_seconds: dp,
            total_seconds: dp * 2.0,
            period_bits: period.map(f64::to_bits),
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let records = vec![
            record(4, 6, Some(0.103_712_345_678_9), 0.42),
            record(4, 3, None, 0.01),
        ];
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        assert!(parse("{\"version\": 99, \"records\": []}").is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let records = vec![record(4, 6, Some(0.1), 0.4)];
        assert!(compare_plan_speed(&records, &records, 1.25).is_empty());
    }

    #[test]
    fn a_single_ulp_of_period_drift_is_flagged() {
        let base = vec![record(4, 6, Some(0.1), 0.4)];
        let mut cur = base.clone();
        cur[0].period_bits = cur[0].period_bits.map(|b| b + 1);
        let v = compare_plan_speed(&cur, &base, 1.25);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("not bit-identical"));
    }

    #[test]
    fn feasibility_flips_are_period_violations() {
        let base = vec![record(4, 3, None, 0.01)];
        let mut cur = base.clone();
        cur[0].period_bits = Some(0.2f64.to_bits());
        let v = compare_plan_speed(&cur, &base, 1.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("infeasible"));
    }

    #[test]
    fn slow_dp_is_flagged_only_beyond_the_factor() {
        let base = vec![record(4, 6, Some(0.1), 0.4)];
        let mut cur = base.clone();
        cur[0].dp_seconds = 0.48; // 1.2x < 1.25x: fine
        assert!(compare_plan_speed(&cur, &base, 1.25).is_empty());
        cur[0].dp_seconds = 0.55; // 1.375x: violation
        let v = compare_plan_speed(&cur, &base, 1.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("DP took"));
    }

    #[test]
    fn missing_and_extra_cells_are_flagged() {
        let base = vec![record(4, 6, Some(0.1), 0.4), record(8, 6, Some(0.2), 0.5)];
        let cur = vec![record(4, 6, Some(0.1), 0.4), record(2, 6, Some(0.3), 0.3)];
        let v = compare_plan_speed(&cur, &base, 1.25);
        assert!(v.iter().any(|x| x.contains("missing from the current run")));
        assert!(v.iter().any(|x| x.contains("not in the baseline")));
    }

    #[test]
    fn plan_speed_grid_is_the_single_network_fig6_slice() {
        let g = plan_speed_grid();
        assert_eq!(g.networks, vec!["resnet50".to_string()]);
        assert_eq!(g.cells().len(), 3 * 7 * 2);
    }

    #[test]
    fn medians_are_order_free() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn run_measures_a_tiny_cell_deterministically() {
        // One micro cell, twice: times recorded, periods bit-stable.
        let cfg = GridConfig {
            networks: vec!["resnet50".into()],
            p_values: vec![2],
            m_values: vec![8],
            beta_values: vec![12.0],
            batch: 1,
            image_size: 100,
        };
        let planner = PlannerConfig {
            algorithm1: madpipe_core::Algorithm1Config {
                iterations: 4,
                discretization: madpipe_core::Discretization::coarse(),
                use_special: true,
            },
            refine_probes: 0,
            ..PlannerConfig::default()
        };
        let records = run_plan_speed(&cfg, &planner, 2);
        assert_eq!(records.len(), 1);
        assert!(records[0].period_bits.is_some());
        assert!(records[0].dp_seconds > 0.0);
        assert!(records[0].total_seconds >= records[0].dp_seconds);
    }
}
