//! Overload drills: sustained storms of uncacheable work must flip the
//! admission gate into shedding (structured `overloaded` errors, never
//! stalls), expired work must be dropped at dequeue without running the
//! DP, a slow-loris client must not stall other connections — and
//! every plan that *is* served stays bit-identical to offline planning.
//!
//! The traffic shapes come from the deterministic client-event schedule
//! in `madpipe_sim::chaos` (`ClientEvent`), the same draw the CI
//! overload smoke replays.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_json::{ToJson, Value};
use madpipe_model::{Chain, Layer, Platform};
use madpipe_serve::{ServeConfig, Server};
use madpipe_sim::{ChaosStream, ClientEvent};

/// Heavier than the integration family (more layers) so one plan costs
/// real worker time and a pipelined burst builds a standing queue.
fn chain(seed: u64) -> Chain {
    let layers = (0..8)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (2 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    Chain::new(format!("storm{seed}"), 1 << 20, layers).unwrap()
}

fn platform() -> Platform {
    Platform::gb(4, 2, 12.0).unwrap()
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(addr: std::net::SocketAddr, line: &str) -> Value {
    let (mut stream, mut reader) = connect(addr);
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Value::parse(response.trim()).expect("response is JSON")
}

/// Write a whole batch, then read one response per line (the reactor
/// answers pipelined requests in order).
fn pipeline(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    batch: &[String],
) -> Vec<Value> {
    let mut payload = String::new();
    for line in batch {
        payload.push_str(line);
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).unwrap();
    batch
        .iter()
        .map(|_| {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            Value::parse(response.trim()).expect("response is JSON")
        })
        .collect()
}

fn serve_counter(addr: std::net::SocketAddr, name: &str) -> u64 {
    let v = roundtrip(addr, r#"{"cmd":"metrics"}"#);
    let text = v.field("metrics").unwrap().as_str().unwrap();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn error_kind(v: &Value) -> Option<String> {
    v.field("error")
        .ok()?
        .field("kind")
        .ok()?
        .as_str()
        .ok()
        .map(str::to_string)
}

/// Every ok response must carry a period bit-identical to offline
/// planning of the same seed; overload verdicts must be structured.
fn check_response(v: &Value, seed: u64, oracle: &mut HashMap<u64, u64>) -> &'static str {
    if v.field("ok").unwrap() == &Value::Bool(true) {
        let bits = oracle.entry(seed).or_insert_with(|| {
            madpipe_plan(&chain(seed), &platform(), &PlannerConfig::default())
                .expect("offline plan")
                .period()
                .to_bits()
        });
        let served = v
            .field("plan")
            .unwrap()
            .field("period")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(
            served.to_bits(),
            *bits,
            "seed {seed}: storm-served plan diverged from offline"
        );
        "ok"
    } else {
        match error_kind(v).as_deref() {
            Some("overloaded") => "shed",
            Some("timeout") => "timeout",
            other => panic!(
                "unexpected storm error kind {other:?}: {}",
                v.to_string_compact()
            ),
        }
    }
}

#[test]
fn sustained_storm_sheds_instead_of_stalling_and_recovers_after_drain() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1, // one worker: arrivals outpace service by design
        cache_entries: 256,
        timeout: Duration::from_secs(60),
        queue_depth: 512,
        // An aggressive gate so the drill flips it quickly: any standing
        // queue whose minimum sojourn stays above 200 µs for 10 ms is
        // overload.
        shed_target: Duration::from_micros(200),
        shed_window: Duration::from_millis(10),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    // Burst sizes come from the frozen client-event schedule.
    let bursts: Vec<usize> = ChaosStream::client_events(0xC0FFEE, 48)
        .into_iter()
        .filter_map(|e| match e {
            ClientEvent::OverloadStorm { burst } => Some(burst),
            ClientEvent::SlowLoris { .. } => None,
        })
        .collect();
    assert!(bursts.len() >= 8, "schedule yields enough storms");

    // Two closed-loop feeders share the one worker, so each other's
    // batches keep the queue standing while their own submits arrive —
    // the shape the sojourn gate exists to catch. Every request is a
    // unique instance: no cache hits, every admitted job runs the DP.
    let next_seed = AtomicU64::new(0);
    let deadline = Instant::now() + Duration::from_secs(3);
    let outcomes: Vec<(u64, &'static str)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_feeder| {
                let next_seed = &next_seed;
                let bursts = &bursts;
                scope.spawn(move || {
                    let mut oracle = HashMap::new();
                    let mut tallies = Vec::new();
                    let (mut stream, mut reader) = connect(addr);
                    for (round, burst) in bursts.iter().cycle().enumerate() {
                        if Instant::now() >= deadline || round >= 24 {
                            break;
                        }
                        let seeds: Vec<u64> = (0..*burst)
                            .map(|_| next_seed.fetch_add(1, Ordering::Relaxed))
                            .collect();
                        let batch: Vec<String> = seeds
                            .iter()
                            .map(|s| plan_line(&chain(*s), &platform()))
                            .collect();
                        let responses = pipeline(&mut stream, &mut reader, &batch);
                        for (seed, v) in seeds.iter().zip(&responses) {
                            tallies.push((*seed, check_response(v, *seed, &mut oracle)));
                        }
                        // Stop early once shedding is observed plus a
                        // little extra load for good measure.
                        if tallies.iter().filter(|(_, o)| *o == "shed").count() > 4 {
                            break;
                        }
                    }
                    tallies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let count = |what: &str| outcomes.iter().filter(|(_, o)| *o == what).count();
    assert!(count("ok") > 0, "the storm still gets work done");
    assert!(
        count("shed") > 0,
        "a sustained storm over one worker must trip the overload gate \
         (ok {}, shed {}, timeout {})",
        count("ok"),
        count("shed"),
        count("timeout"),
    );
    assert!(
        serve_counter(addr, "madpipe_serve_shed_overload") >= count("shed") as u64,
        "shed responses are accounted in serve.shed.overload"
    );

    // Recovery: once the queue drains, the gate re-admits — a fresh
    // instance plans fine, first try, no shedding residue.
    for _ in 0..200 {
        let h = roundtrip(addr, r#"{"cmd":"health"}"#);
        let depth = h
            .field("health")
            .unwrap()
            .field("queue_depth")
            .unwrap()
            .as_u64()
            .unwrap();
        if depth == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let fresh = next_seed.fetch_add(1, Ordering::Relaxed);
    let v = roundtrip(addr, &plan_line(&chain(fresh), &platform()));
    assert_eq!(
        v.field("ok").unwrap(),
        &Value::Bool(true),
        "post-storm request must be admitted again: {}",
        v.to_string_compact()
    );

    server.shutdown();
    server.join();
}

#[test]
fn expired_work_is_dropped_at_dequeue_without_running_the_dp() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        cache_entries: 64,
        // A deadline shorter than the queue the burst builds: the tail
        // of the burst *must* expire while waiting.
        timeout: Duration::from_millis(2),
        queue_depth: 64,
        // Keep the overload gate out of this drill: only expiry sheds.
        shed_target: Duration::from_secs(3600),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    let batch: Vec<String> = (1000..1024u64)
        .map(|s| plan_line(&chain(s), &platform()))
        .collect();
    let (mut stream, mut reader) = connect(addr);
    let responses = pipeline(&mut stream, &mut reader, &batch);
    let timeouts = responses
        .iter()
        .filter(|v| error_kind(v).as_deref() == Some("timeout"))
        .count();
    assert!(
        timeouts > 0,
        "a 24-deep burst against a 2 ms deadline must expire its tail"
    );
    let expired = serve_counter(addr, "madpipe_serve_shed_expired");
    assert!(
        expired > 0,
        "expired jobs are dropped at dequeue and counted (serve.shed.expired)"
    );
    // Dropped-at-dequeue means the DP never ran for them: plans counted
    // stay below the batch size by at least the expired count.
    let plans = serve_counter(addr, "madpipe_serve_plans");
    assert!(
        plans + expired <= batch.len() as u64,
        "expired work must not also burn a DP run (plans {plans}, expired {expired})"
    );

    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_clients_do_not_stall_the_reactor() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    // Loris stalls come from the frozen client-event schedule.
    let stalls: Vec<u64> = ChaosStream::client_events(0xC0FFEE, 48)
        .into_iter()
        .filter_map(|e| match e {
            ClientEvent::SlowLoris { stall_ms } => Some(stall_ms),
            ClientEvent::OverloadStorm { .. } => None,
        })
        .take(3)
        .collect();
    assert!(!stalls.is_empty(), "schedule yields a loris");

    std::thread::scope(|scope| {
        // Each loris dribbles a *valid* request, a few bytes at a time,
        // holding its connection (and a reactor slot) open throughout.
        let lorises: Vec<_> = stalls
            .iter()
            .enumerate()
            .map(|(i, stall)| {
                scope.spawn(move || {
                    let line = plan_line(&chain(2000 + i as u64), &platform());
                    let (mut stream, mut reader) = connect(addr);
                    let bytes = line.as_bytes();
                    for fragment in bytes.chunks(bytes.len() / 8 + 1) {
                        stream.write_all(fragment).unwrap();
                        stream.flush().unwrap();
                        std::thread::sleep(Duration::from_millis(*stall));
                    }
                    stream.write_all(b"\n").unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("loris answered");
                    Value::parse(response.trim()).expect("loris response is JSON")
                })
            })
            .collect();

        // Meanwhile ordinary clients must sail through: the dribbling
        // connections own reactor slots, not the reactor's event loop.
        let started = Instant::now();
        for i in 0..10u64 {
            let v = roundtrip(addr, &plan_line(&chain(3000 + i), &platform()));
            assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "normal traffic stalled behind a slow loris: {elapsed:?}"
        );

        // The loris requests themselves, reassembled, answer fine.
        for loris in lorises {
            let v = loris.join().unwrap();
            assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
        }
    });

    server.shutdown();
    server.join();
}
