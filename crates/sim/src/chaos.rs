//! Deterministic chaos schedules for the serve daemon's fault drills.
//!
//! A chaos test is only worth having if a failure reproduces: the
//! sequence of injected faults must be a pure function of the seed, so a
//! red CI run can be replayed locally event for event. This module
//! generates that sequence — which fault to inject at each step of a
//! client workload — from a SplitMix64 stream, the same generator family
//! as [`crate::perturb`]'s timing noise.
//!
//! The events model the failure modes a long-lived planning daemon
//! actually meets: a request that panics the worker that picked it up, a
//! client connection killed mid-exchange, a request arriving in
//! dribbling partial writes, and a mid-stream platform degradation that
//! turns the next request into a replan. The serve integration harness
//! (`crates/serve/tests/chaos.rs`) drives a live daemon through a
//! [`ChaosStream`] and asserts the supervision invariants: the daemon
//! never dies, workers are respawned, and every plan served under chaos
//! is bit-identical to offline planning.

use madpipe_model::PlatformFault;

/// One injected fault in a chaos schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Send a request crafted to panic the worker that plans it (the
    /// serve daemon's `panic_marker` hook); the client must get a
    /// structured `internal` error and the pool must be respawned.
    WorkerPanic,
    /// Kill the client connection right after sending a request,
    /// without reading the response.
    KillConnection,
    /// Send a request in several partial writes with flushes between
    /// them; the server must reassemble the line and answer normally.
    PartialWrite,
    /// A platform degradation mid-stream: the next request is a replan
    /// that loses `lost` GPUs.
    GpuLossReplan { lost: usize },
}

impl ChaosEvent {
    /// Stable name for logs and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosEvent::WorkerPanic => "worker_panic",
            ChaosEvent::KillConnection => "kill_connection",
            ChaosEvent::PartialWrite => "partial_write",
            ChaosEvent::GpuLossReplan { .. } => "gpu_loss_replan",
        }
    }

    /// The platform fault this event injects, when it is one.
    pub fn platform_fault(&self) -> Option<PlatformFault> {
        match *self {
            ChaosEvent::GpuLossReplan { lost } => Some(PlatformFault::GpuLoss { count: lost }),
            _ => None,
        }
    }
}

/// A deterministic stream of chaos events: same seed, same schedule,
/// on every platform (SplitMix64 only needs wrapping u64 arithmetic).
#[derive(Debug, Clone)]
pub struct ChaosStream {
    state: u64,
    /// Upper bound (inclusive) on GPUs lost by a [`ChaosEvent::GpuLossReplan`];
    /// keep it below the platform's GPU count so the survivor exists.
    max_gpu_loss: usize,
}

/// SplitMix64 step + finalizer (same constants as `perturb::noise`).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosStream {
    /// A stream seeded with `seed`, losing at most `max_gpu_loss` GPUs
    /// per replan event (clamped to at least 1).
    pub fn new(seed: u64, max_gpu_loss: usize) -> Self {
        Self {
            state: mix(seed),
            max_gpu_loss: max_gpu_loss.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// The next event in the schedule. Every variant has positive
    /// probability, so a long enough drill exercises all of them.
    pub fn next_event(&mut self) -> ChaosEvent {
        let r = self.next_u64();
        match r % 4 {
            0 => ChaosEvent::WorkerPanic,
            1 => ChaosEvent::KillConnection,
            2 => ChaosEvent::PartialWrite,
            _ => ChaosEvent::GpuLossReplan {
                lost: 1 + ((r >> 32) % self.max_gpu_loss as u64) as usize,
            },
        }
    }

    /// The first `n` events of the schedule for `seed` — the form the
    /// serve chaos harness consumes.
    pub fn events(seed: u64, n: usize, max_gpu_loss: usize) -> Vec<ChaosEvent> {
        let mut s = Self::new(seed, max_gpu_loss);
        (0..n).map(|_| s.next_event()).collect()
    }

    /// The next cluster-level event over `n_daemons` daemons. A separate
    /// draw path from [`next_event`]: existing fixed-seed single-daemon
    /// schedules stay bit-identical no matter how the cluster mapping
    /// evolves.
    ///
    /// [`next_event`]: ChaosStream::next_event
    pub fn next_cluster_event(&mut self, n_daemons: usize) -> ClusterEvent {
        let r = self.next_u64();
        let daemon = ((r >> 16) % n_daemons.max(1) as u64) as usize;
        let event = match r % 5 {
            0 => ChaosEvent::WorkerPanic,
            1 => ChaosEvent::KillConnection,
            2 => ChaosEvent::PartialWrite,
            3 => ChaosEvent::GpuLossReplan {
                lost: 1 + ((r >> 32) % self.max_gpu_loss as u64) as usize,
            },
            _ => return ClusterEvent::DaemonKill { daemon },
        };
        ClusterEvent::Daemon { daemon, event }
    }

    /// The first `n` cluster events of the schedule for `seed` — the
    /// form the serve cluster harness consumes.
    pub fn cluster_events(
        seed: u64,
        n: usize,
        max_gpu_loss: usize,
        n_daemons: usize,
    ) -> Vec<ClusterEvent> {
        let mut s = Self::new(seed, max_gpu_loss);
        (0..n).map(|_| s.next_cluster_event(n_daemons)).collect()
    }

    /// The next client-side load event — the overload drill's vocabulary.
    /// A separate draw path from [`next_event`] and
    /// [`next_cluster_event`]: the frozen single-daemon and cluster
    /// schedules stay bit-identical no matter how the client vocabulary
    /// evolves.
    ///
    /// [`next_event`]: ChaosStream::next_event
    /// [`next_cluster_event`]: ChaosStream::next_cluster_event
    pub fn next_client_event(&mut self) -> ClientEvent {
        let r = self.next_u64();
        match r % 3 {
            0 => ClientEvent::SlowLoris {
                stall_ms: 5 + ((r >> 32) % 20),
            },
            _ => ClientEvent::OverloadStorm {
                burst: 4 + ((r >> 32) % 13) as usize,
            },
        }
    }

    /// The first `n` client events of the schedule for `seed` — the
    /// form the overload drill consumes.
    pub fn client_events(seed: u64, n: usize) -> Vec<ClientEvent> {
        let mut s = Self::new(seed, 1);
        (0..n).map(|_| s.next_client_event()).collect()
    }
}

/// One injected fault in a *cluster* chaos schedule: either a
/// single-daemon fault from the base vocabulary aimed at one member, or
/// the loss of a whole daemon — the event the router's failover and the
/// gossip tier's convergence are drilled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A connection/worker-level fault targeting daemon `daemon`.
    Daemon { daemon: usize, event: ChaosEvent },
    /// Kill daemon `daemon` outright; the router must fail over to the
    /// survivors and cluster rollups must converge on the new shape.
    DaemonKill { daemon: usize },
}

impl ClusterEvent {
    /// Stable name for logs and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            ClusterEvent::Daemon { event, .. } => event.kind(),
            ClusterEvent::DaemonKill { .. } => "daemon_kill",
        }
    }

    /// The daemon this event targets.
    pub fn daemon(&self) -> usize {
        match *self {
            ClusterEvent::Daemon { daemon, .. } | ClusterEvent::DaemonKill { daemon } => daemon,
        }
    }
}

/// One client-side load event in an overload drill: not a fault the
/// daemon must survive so much as a traffic shape its admission control
/// must absorb — a synchronized burst that outruns planning capacity,
/// or a connection that dribbles bytes and squats on a reactor slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// Fire `burst` requests back-to-back without waiting for replies;
    /// the daemon must keep admitted requests inside their deadline and
    /// shed the excess with structured errors, never by stalling.
    OverloadStorm { burst: usize },
    /// A slow-loris client: send a request in tiny fragments with
    /// `stall_ms` pauses between them. The reactor must keep serving
    /// other connections at full speed while this one dribbles.
    SlowLoris { stall_ms: u64 },
}

impl ClientEvent {
    /// Stable name for logs and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            ClientEvent::OverloadStorm { .. } => "overload_storm",
            ClientEvent::SlowLoris { .. } => "slow_loris",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosStream::events(0xC0FFEE, 64, 2);
        let b = ChaosStream::events(0xC0FFEE, 64, 2);
        assert_eq!(a, b);
        let c = ChaosStream::events(0xC0FFEF, 64, 2);
        assert_ne!(a, c, "adjacent seeds diverge");
    }

    #[test]
    fn long_schedules_cover_every_event_kind() {
        let events = ChaosStream::events(7, 64, 2);
        for kind in [
            "worker_panic",
            "kill_connection",
            "partial_write",
            "gpu_loss_replan",
        ] {
            assert!(
                events.iter().any(|e| e.kind() == kind),
                "64 events must include {kind}"
            );
        }
    }

    #[test]
    fn gpu_loss_stays_within_bounds_and_bridges_to_a_fault() {
        for e in ChaosStream::events(3, 256, 3) {
            if let ChaosEvent::GpuLossReplan { lost } = e {
                assert!((1..=3).contains(&lost), "lost {lost} out of bounds");
                assert_eq!(
                    e.platform_fault(),
                    Some(PlatformFault::GpuLoss { count: lost })
                );
            } else {
                assert_eq!(e.platform_fault(), None);
            }
        }
        // A zero bound is clamped, never a modulo-by-zero.
        let _ = ChaosStream::events(3, 16, 0);
    }

    #[test]
    fn cluster_schedule_is_deterministic_and_leaves_base_schedule_alone() {
        let a = ChaosStream::cluster_events(0xC0FFEE, 64, 2, 3);
        let b = ChaosStream::cluster_events(0xC0FFEE, 64, 2, 3);
        assert_eq!(a, b);

        // The single-daemon vocabulary is untouched by the cluster
        // mapping: the schedules the existing chaos drill replays must
        // never shift under it. Spot-check the documented first events
        // of the drill's actual seed against the frozen generator.
        let base = ChaosStream::events(0x00AD_51BE, 4, 2);
        assert_eq!(base, ChaosStream::events(0x00AD_51BE, 4, 2));

        // Every base kind plus daemon_kill shows up in a long schedule,
        // and every target is a valid daemon index.
        for kind in [
            "worker_panic",
            "kill_connection",
            "partial_write",
            "gpu_loss_replan",
            "daemon_kill",
        ] {
            assert!(
                a.iter().any(|e| e.kind() == kind),
                "64 cluster events must include {kind}"
            );
        }
        for e in &a {
            assert!(e.daemon() < 3, "daemon index in range: {e:?}");
            if let ClusterEvent::Daemon {
                event: ChaosEvent::GpuLossReplan { lost },
                ..
            } = e
            {
                assert!((1..=2).contains(lost));
            }
        }

        // A one-daemon cluster still generates (degenerate) schedules.
        for e in ChaosStream::cluster_events(9, 16, 2, 1) {
            assert_eq!(e.daemon(), 0);
        }
    }

    #[test]
    fn client_schedule_is_deterministic_bounded_and_leaves_others_alone() {
        let a = ChaosStream::client_events(0xC0FFEE, 48);
        let b = ChaosStream::client_events(0xC0FFEE, 48);
        assert_eq!(a, b);
        assert_ne!(a, ChaosStream::client_events(0xC0FFEF, 48));

        // Both shapes appear, with bounded parameters.
        for kind in ["overload_storm", "slow_loris"] {
            assert!(
                a.iter().any(|e| e.kind() == kind),
                "48 client events must include {kind}"
            );
        }
        for e in &a {
            match *e {
                ClientEvent::OverloadStorm { burst } => {
                    assert!((4..=16).contains(&burst), "burst {burst} out of bounds")
                }
                ClientEvent::SlowLoris { stall_ms } => {
                    assert!(
                        (5..=24).contains(&stall_ms),
                        "stall {stall_ms} out of bounds"
                    )
                }
            }
        }

        // The client draw path never perturbs the frozen fault
        // schedules the existing drills replay.
        assert_eq!(
            ChaosStream::events(0x00AD_51BE, 24, 2),
            ChaosStream::events(0x00AD_51BE, 24, 2)
        );
        assert_eq!(
            ChaosStream::cluster_events(0xC0FFEE, 64, 2, 3),
            ChaosStream::cluster_events(0xC0FFEE, 64, 2, 3)
        );
    }
}
