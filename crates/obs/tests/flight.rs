//! Property tests for the flight-recorder ring: wraparound accounting
//! and torn-event freedom under concurrent writers.
//!
//! The ring's contract (see `obs::flight`) is that it sheds history,
//! never throughput, and never miscounts the loss:
//!
//! * `drained + dropped == recorded` once writers are quiescent;
//! * drained sequence numbers are distinct and strictly increasing;
//! * a drained event is never torn — every word belongs to the one
//!   `record` call that claimed its sequence number.

use madpipe_obs::flight::{FlightKind, FlightRing};
use proptest::prelude::*;

/// SplitMix64 finalizer — deterministic per-event fingerprint so a
/// drained event can prove all its words came from one writer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Assert `e` is exactly the event `write_fingerprinted` recorded for
/// its `trace` seed: any cross-writer word mix breaks a `mix` link.
fn assert_untorn(e: &madpipe_obs::flight::FlightEvent) {
    assert_eq!(e.kind, FlightKind::Span);
    assert_eq!(e.name, "flight.proptest");
    assert_eq!(e.span, mix(e.trace), "span word torn from trace word");
    assert_eq!(e.parent, mix(e.span), "parent word torn from span word");
    assert_eq!(
        e.ts_us,
        (e.trace % 1_000_000) as f64,
        "timestamp word torn from trace word"
    );
}

fn write_fingerprinted(ring: &FlightRing, seed: u64) {
    let trace = mix(seed) | 1; // nonzero
    ring.record_span(
        "flight.proptest",
        (trace % 1_000_000) as f64,
        1.0,
        trace,
        mix(trace),
        mix(mix(trace)),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-writer wraparound: the newest `capacity` events survive,
    /// everything older is counted dropped, and nothing is torn.
    #[test]
    fn wraparound_keeps_newest_and_counts_drops(
        cap_exp in 3u32..7,
        writes in 0usize..220,
        drain_mid in prop::bool::ANY,
    ) {
        let ring = FlightRing::with_capacity(1 << cap_exp);
        let cap = ring.capacity();
        let mut consumed = 0usize;
        for i in 0..writes {
            write_fingerprinted(&ring, i as u64);
            if drain_mid && i == writes / 2 {
                let events = ring.drain();
                for e in &events {
                    assert_untorn(e);
                }
                consumed += events.len();
            }
        }
        let events = ring.drain();
        prop_assert_eq!(ring.recorded(), writes as u64);
        // Exact loss accounting at rest.
        prop_assert_eq!(
            consumed as u64 + events.len() as u64 + ring.dropped(),
            writes as u64
        );
        prop_assert!(events.len() <= cap);
        if !drain_mid {
            prop_assert_eq!(events.len(), writes.min(cap));
            prop_assert_eq!(ring.dropped(), writes.saturating_sub(cap) as u64);
        }
        // Strictly increasing, distinct seqs; the final drain holds the
        // newest surviving window.
        for pair in events.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq);
        }
        if let Some(last) = events.last() {
            prop_assert_eq!(last.seq, writes as u64 - 1);
        }
        for e in &events {
            assert_untorn(e);
            prop_assert!(e.seq < writes as u64);
        }
        // Quiescent ring: nothing new appears.
        prop_assert!(ring.drain().is_empty());
    }

    /// Concurrent writers hammering a deliberately tiny ring (so
    /// same-slot claim races actually happen): no torn events, distinct
    /// monotone seqs, and exact `drained + dropped == recorded`.
    #[test]
    fn concurrent_writers_never_tear_events(
        cap_exp in 3u32..6,
        threads in 2usize..5,
        per_thread in 1usize..120,
    ) {
        let ring = FlightRing::with_capacity(1 << cap_exp);
        std::thread::scope(|s| {
            for t in 0..threads {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..per_thread {
                        write_fingerprinted(ring, (t * 1_000_003 + i) as u64);
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        prop_assert_eq!(ring.recorded(), total);
        let events = ring.drain();
        prop_assert!(events.len() <= ring.capacity());
        prop_assert_eq!(events.len() as u64 + ring.dropped(), total);
        let mut seen = std::collections::BTreeSet::new();
        for pair in events.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq, "drain must sort by seq");
        }
        for e in &events {
            assert_untorn(e);
            prop_assert!(e.seq < total);
            prop_assert!(seen.insert(e.seq), "duplicate seq {}", e.seq);
        }
    }

    /// Drains racing the writers stay sound: every event ever observed
    /// is untorn and no seq is yielded twice across drains.
    #[test]
    fn concurrent_drains_see_each_event_at_most_once(
        cap_exp in 3u32..6,
        per_thread in 32usize..160,
    ) {
        let ring = FlightRing::with_capacity(1 << cap_exp);
        let mut observed: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            for t in 0..2usize {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..per_thread {
                        write_fingerprinted(ring, (t * 7_777_777 + i) as u64);
                    }
                });
            }
            for _ in 0..8 {
                for e in ring.drain() {
                    assert_untorn(&e);
                    observed.push(e.seq);
                }
            }
        });
        for e in ring.drain() {
            assert_untorn(&e);
            observed.push(e.seq);
        }
        let distinct: std::collections::BTreeSet<u64> = observed.iter().copied().collect();
        prop_assert_eq!(distinct.len(), observed.len(), "a seq was drained twice");
        prop_assert!(observed.iter().all(|&s| s < 2 * per_thread as u64));
    }
}
