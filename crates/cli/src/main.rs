//! `madpipe` — command-line planner and experiment runner.
//!
//! ```text
//! madpipe networks
//! madpipe plan resnet50 --gpus 4 --memory-gb 8 --bandwidth-gb 12
//! madpipe gantt resnet50 --gpus 4 --memory-gb 8
//! madpipe simulate resnet50 --gpus 4 --memory-gb 8
//! madpipe profile resnet50 --out resnet50.json
//! madpipe experiments all --out results [--full] [--threads N]
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match commands::dispatch(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}
