//! A minimal time-ordered event queue over `f64` timestamps.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A queue entry: `(time, payload)`, popped in non-decreasing time order
/// (ties broken by insertion order via a sequence number, keeping the
/// simulation deterministic).
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        // `total_cmp` equality, not `==`: `Eq` must stay consistent with
        // `Ord` even for NaN times, or the heap invariants break.
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq). `total_cmp` keeps the
        // order total even if a NaN timestamp slips in (NaN sorts last,
        // it can never wedge or panic the queue).
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic min-heap event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: f64, payload: T) {
        debug_assert!(time.is_finite());
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, ());
        q.push(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
