//! Experiment harness regenerating the paper's evaluation (Figures 6–8).
//!
//! The [`grid`] module defines the paper's parameter grid (four networks
//! profiled at 1000×1000 / batch 8, `P ∈ 2..=8`, `M ∈ 3..=16` GB,
//! `β ∈ {12, 24}` GB/s) and evaluates one *cell* — both planners on one
//! `(network, P, M, β)` instance. [`parallel`] fans cells out over a
//! scoped worker pool. The `fig6`/`fig7`/`fig8` modules
//! aggregate cells into exactly the series the paper plots and render
//! them as text tables + CSV files.

pub mod baseline;
pub mod csv;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod grid;
pub mod loadgen;
pub mod parallel;
pub mod plan_speed;
pub mod summary;

pub use baseline::{compare_baselines, smoke_grid, BaselineRecord};
pub use grid::{chains_for, paper_chains, run_cell, Cell, CellResult, GridConfig};
pub use parallel::run_cells;
pub use plan_speed::{compare_plan_speed, plan_speed_grid, run_plan_speed, PlanSpeedRecord};
