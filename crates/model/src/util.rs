//! Floating-point comparison helpers.
//!
//! Periods, start times and durations are `f64` seconds; schedule
//! feasibility checks compare sums of such values and must tolerate
//! rounding noise. All crates in the workspace use the helpers below with
//! the shared [`EPS`] so that "fits within the period" means the same
//! thing everywhere.

/// Absolute tolerance used by all schedule feasibility comparisons.
///
/// Model times are O(1e-3 .. 1e1) seconds, so 1e-9 is ~6 orders of
/// magnitude below the smallest meaningful duration while well above
/// accumulated f64 rounding error for the chain lengths we handle.
pub const EPS: f64 = 1e-9;

/// `a ≤ b` up to [`EPS`].
#[inline]
pub fn fle(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a < b` by more than [`EPS`].
#[inline]
pub fn flt(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// `a ≥ b` up to [`EPS`].
#[inline]
pub fn fge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a == b` up to [`EPS`].
#[inline]
pub fn feq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Ceiling of `x / y` as an integer, robust to `x` being within [`EPS`]
/// of an exact multiple of `y` (in which case the exact ratio is used).
///
/// This is the `⌈·/T̂⌉` used throughout §4.2 of the paper; without the
/// tolerance, `ceil(3.0000000001/1.0)` would return 4 groups instead of 3
/// and inflate every memory estimate.
#[inline]
pub fn ceil_div(x: f64, y: f64) -> u64 {
    debug_assert!(y > 0.0, "ceil_div requires a positive divisor");
    if x <= EPS {
        return 0;
    }
    let q = x / y;
    let r = q.round();
    if (q - r).abs() <= EPS / y {
        r as u64
    } else {
        q.ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_tolerate_eps() {
        assert!(fle(1.0 + 1e-12, 1.0));
        assert!(!fle(1.0 + 1e-6, 1.0));
        assert!(flt(0.9, 1.0));
        assert!(!flt(1.0 - 1e-12, 1.0));
        assert!(fge(1.0 - 1e-12, 1.0));
        assert!(feq(2.0, 2.0 + 1e-10));
    }

    #[test]
    fn ceil_div_handles_near_multiples() {
        assert_eq!(ceil_div(3.0, 1.0), 3);
        assert_eq!(ceil_div(3.0 + 1e-12, 1.0), 3);
        assert_eq!(ceil_div(3.1, 1.0), 4);
        assert_eq!(ceil_div(0.0, 1.0), 0);
        assert_eq!(ceil_div(-1.0, 1.0), 0);
        assert_eq!(ceil_div(1e-12, 1.0), 0);
    }

    #[test]
    fn ceil_div_scales_with_divisor() {
        assert_eq!(ceil_div(10.0, 2.5), 4);
        assert_eq!(ceil_div(10.1, 2.5), 5);
    }
}
