//! Discretization grids for the continuous DP coordinates.
//!
//! MadPipe-DP's state carries three continuous quantities — the special
//! processor's accumulated load `t_P`, its accumulated memory `m_P`, and
//! the forward/backward delay bound `V`. §5.1 of the paper discretizes
//! them onto 101 / 11 / 51 equally spaced points respectively; values are
//! always rounded *up* onto the grid, which is conservative for both the
//! period (`t_P`) and the memory constraints (`m_P`, `V`).

/// Grid resolution for the three discretized coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Discretization {
    /// Points for `t_P` over `[0, U(1,L)]` (paper: 101).
    pub t_points: usize,
    /// Points for `m_P` over `[0, M]` (paper: 11).
    pub m_points: usize,
    /// Points for `V` over `[0, U(1,L) + Σ C(i)]` (paper: 51).
    pub v_points: usize,
}

impl Default for Discretization {
    fn default() -> Self {
        Self {
            t_points: 101,
            m_points: 11,
            v_points: 51,
        }
    }
}

impl Discretization {
    /// A coarse grid for fast tests and sweeps.
    pub fn coarse() -> Self {
        Self {
            t_points: 41,
            m_points: 9,
            v_points: 21,
        }
    }

    /// A fine grid for the highest-fidelity runs.
    pub fn fine() -> Self {
        Self {
            t_points: 201,
            m_points: 21,
            v_points: 101,
        }
    }
}

/// One axis of the grid: `n` points uniformly covering `[0, max]`.
#[derive(Debug, Clone)]
pub struct Axis {
    max: f64,
    n: usize,
}

impl Axis {
    /// Build an axis; `max = 0` collapses to the single point `0`.
    pub fn new(max: f64, n: usize) -> Self {
        debug_assert!(n >= 2, "an axis needs at least two points");
        debug_assert!(max >= 0.0 && max.is_finite());
        Self { max, n }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the axis is degenerate (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Smallest grid index whose value is ≥ `x` (round up, clamped to the
    /// last point).
    pub fn index_up(&self, x: f64) -> u16 {
        if self.max <= 0.0 || x <= 0.0 {
            return 0;
        }
        let step = self.max / (self.n - 1) as f64;
        let idx = (x / step - 1e-9).ceil() as isize;
        idx.clamp(0, (self.n - 1) as isize) as u16
    }

    /// Value of grid point `idx`.
    pub fn value(&self, idx: u16) -> f64 {
        if self.max <= 0.0 {
            return 0.0;
        }
        let step = self.max / (self.n - 1) as f64;
        step * idx as f64
    }

    /// Whether `x` exceeds the axis maximum (infeasible coordinate).
    pub fn overflows(&self, x: f64) -> bool {
        x > self.max + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_rounds_up() {
        let ax = Axis::new(10.0, 11); // step 1.0
        assert_eq!(ax.index_up(0.0), 0);
        assert_eq!(ax.index_up(0.1), 1);
        assert_eq!(ax.index_up(1.0), 1);
        assert_eq!(ax.index_up(1.000001), 2);
        assert_eq!(ax.value(3), 3.0);
        // rounding up: value(index_up(x)) ≥ x
        for &x in &[0.0, 0.3, 2.7, 9.99, 10.0] {
            assert!(ax.value(ax.index_up(x)) + 1e-6 >= x);
        }
    }

    #[test]
    fn clamps_to_last_point() {
        let ax = Axis::new(10.0, 11);
        assert_eq!(ax.index_up(25.0), 10);
        assert!(ax.overflows(10.1));
        assert!(!ax.overflows(10.0));
    }

    #[test]
    fn zero_max_collapses() {
        let ax = Axis::new(0.0, 11);
        assert_eq!(ax.index_up(0.0), 0);
        assert_eq!(ax.value(0), 0.0);
        assert!(ax.overflows(0.5));
    }

    #[test]
    fn defaults_match_the_paper() {
        let d = Discretization::default();
        assert_eq!((d.t_points, d.m_points, d.v_points), (101, 11, 51));
    }

    #[test]
    fn near_grid_values_do_not_bump_up() {
        let ax = Axis::new(10.0, 11);
        // 3.0 + noise below the 1e-9 guard stays at index 3
        assert_eq!(ax.index_up(3.0 + 1e-11), 3);
    }
}
