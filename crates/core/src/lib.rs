//! MadPipe: the paper's contribution (§4.2–§4.3).
//!
//! * [`oplus`] — the `⊕` delay-propagation algebra used to mimic 1F1B*
//!   group formation inside the dynamic program;
//! * [`discrete`] — the discretization grids for the continuous DP state
//!   (`t_P`, `m_P`, `V`), with the paper's 101/11/51 default resolution;
//! * [`dp`] — MadPipe-DP: the memoized recursion over
//!   `T(l, p, t_P, m_P, V)` building a non-contiguous allocation with one
//!   *special* processor;
//! * [`algorithm1`] — the modified binary search over the target period
//!   `T̂` (Algorithm 1, K = 10 iterations by default);
//! * [`planner`] — the end-to-end MadPipe pipeline (phase 1 allocation +
//!   phase 2 scheduling through `madpipe-solver`) and a side-by-side
//!   comparison against the PipeDream baseline.

pub mod algorithm1;
pub mod discrete;
pub mod hybrid;
pub mod dp;
pub mod fxhash;
pub mod oplus;
pub mod planner;

pub use algorithm1::{madpipe_allocation, Algorithm1Config, Algorithm1Outcome};
pub use discrete::Discretization;
pub use hybrid::{best_hybrid, HybridPlan};
pub use dp::{madpipe_dp, madpipe_dp_with, DpOutcome};
pub use oplus::oplus;
pub use planner::{compare, madpipe_plan, Comparison, MadPipePlan, PlannerConfig, PlanError};
