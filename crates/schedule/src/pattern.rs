//! The periodic pattern representation.

use madpipe_model::{Resource, UnitSequence};

/// Direction of an operation: the forward or the backward half of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    Forward,
    Backward,
}

/// One scheduled operation of the periodic pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Index of the unit (into the [`UnitSequence`]) this op belongs to.
    pub unit: usize,
    /// Forward or backward half.
    pub dir: Dir,
    /// Start time `t ∈ [0, T)` within the period.
    pub start: f64,
    /// Duration of the operation.
    pub duration: f64,
    /// Index shift `h`: in period `k` this op processes mini-batch `k-h`.
    pub shift: u64,
    /// Resource the op occupies (GPU or link).
    pub resource: Resource,
}

impl Op {
    /// Completion phase within the period: `(t + d) mod T`.
    pub fn completion_phase(&self, period: f64) -> f64 {
        let e = self.start + self.duration;
        if e >= period {
            e - period * (e / period).floor()
        } else {
            e
        }
    }

    /// Completion period offset `κ = h + ⌊(t + d)/T⌋`: mini-batch `b`
    /// completes at absolute time `(b + κ)·T + completion_phase`.
    pub fn completion_offset(&self, period: f64) -> u64 {
        self.shift + ((self.start + self.duration) / period).floor() as u64
    }

    /// Absolute "virtual" start of the op for mini-batch 0:
    /// `t + h·T`. Dependencies of a valid pattern are exactly
    /// `virtual_start(o2) ≥ virtual_start(o1) + d(o1)`.
    pub fn virtual_start(&self, period: f64) -> f64 {
        self.start + self.shift as f64 * period
    }
}

/// A periodic pattern: period `T` plus one op per (unit, direction).
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// The period `T`.
    pub period: f64,
    /// All operations; exactly one `(unit, dir)` pair per unit of the
    /// sequence the pattern was built for.
    pub ops: Vec<Op>,
}

impl Pattern {
    /// Look up the op of `unit` in direction `dir`.
    pub fn op(&self, unit: usize, dir: Dir) -> Option<&Op> {
        self.ops.iter().find(|o| o.unit == unit && o.dir == dir)
    }

    /// Throughput in mini-batches per second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }

    /// Busy time accumulated on `resource` within one period.
    pub fn resource_load(&self, resource: Resource) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.resource == resource)
            .map(|o| o.duration)
            .sum()
    }

    /// Largest shift in the pattern — the pipeline depth (how many
    /// mini-batches are in flight simultaneously).
    pub fn max_shift(&self) -> u64 {
        self.ops.iter().map(|o| o.shift).max().unwrap_or(0)
    }

    /// Number of ops expected for `seq` (two per unit).
    pub fn is_complete_for(&self, seq: &UnitSequence) -> bool {
        if self.ops.len() != 2 * seq.len() {
            return false;
        }
        (0..seq.len())
            .all(|u| self.op(u, Dir::Forward).is_some() && self.op(u, Dir::Backward).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(start: f64, duration: f64, shift: u64) -> Op {
        Op {
            unit: 0,
            dir: Dir::Forward,
            start,
            duration,
            shift,
            resource: Resource::Gpu(0),
        }
    }

    #[test]
    fn completion_wraps_across_the_period() {
        let o = op(8.0, 3.0, 1);
        assert!((o.completion_phase(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(o.completion_offset(10.0), 2);
        let o2 = op(2.0, 3.0, 1);
        assert_eq!(o2.completion_phase(10.0), 5.0);
        assert_eq!(o2.completion_offset(10.0), 1);
    }

    #[test]
    fn virtual_start_orders_dependencies() {
        let a = op(9.0, 2.0, 0);
        let b = op(1.0, 2.0, 1); // wrapped successor
        assert!(b.virtual_start(10.0) >= a.virtual_start(10.0) + a.duration);
    }

    #[test]
    fn pattern_summaries() {
        let p = Pattern {
            period: 10.0,
            ops: vec![
                Op {
                    unit: 0,
                    dir: Dir::Forward,
                    start: 0.0,
                    duration: 2.0,
                    shift: 0,
                    resource: Resource::Gpu(0),
                },
                Op {
                    unit: 0,
                    dir: Dir::Backward,
                    start: 5.0,
                    duration: 3.0,
                    shift: 1,
                    resource: Resource::Gpu(0),
                },
            ],
        };
        assert_eq!(p.resource_load(Resource::Gpu(0)), 5.0);
        assert_eq!(p.resource_load(Resource::Gpu(1)), 0.0);
        assert_eq!(p.max_shift(), 1);
        assert_eq!(p.throughput(), 0.1);
        assert!(p.op(0, Dir::Backward).is_some());
        assert!(p.op(1, Dir::Forward).is_none());
    }
}
