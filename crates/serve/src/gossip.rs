//! Cache-warming gossip between cluster peers.
//!
//! Every [`gossip_interval`](crate::ServeConfig::gossip_interval) the
//! sender thread snapshots this daemon's hottest cache entries
//! ([`PlanCache::hottest`](crate::PlanCache::hottest)) and ships them to
//! each peer as one `{"cmd":"gossip","entries":[…]}` line over a
//! persistent connection (re-dialed on failure). Receivers apply the
//! entries in the reactor with [`PlanCache::warm`](crate::PlanCache::warm)
//! — insert-if-absent, so gossip can never displace what a peer already
//! holds under the same key, and a re-shipped key never inflates its
//! recency.
//!
//! Plans gossip exactly as rendered, so a warmed cache hit is
//! f64-bit-identical to the origin daemon's response — the cluster-wide
//! bit-identity invariant (every served plan matches offline
//! `madpipe plan`) survives warming.
//!
//! Counters: `serve.gossip.rounds`, `.sent` (entries shipped),
//! `.errors` (failed peer exchanges) on the sender; `.received`,
//! `.applied` on the receiver.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::protocol::gossip_line;
use crate::server::{lock_unpoisoned, Ctx, POLL};

/// Dial + I/O budget per peer exchange. Gossip is advisory: a slow peer
/// loses a round, never stalls the sender past this.
const PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on a peer's one-line acknowledgment.
const MAX_ACK_BYTES: usize = 64 * 1024;

/// The sender loop. Runs for the daemon's lifetime; exits on drain.
/// With no peers configured it just idles on the drain flag.
pub(crate) fn gossip_loop(ctx: &Arc<Ctx>) {
    let mut conns: HashMap<String, TcpStream> = HashMap::new();
    loop {
        // Sleep out the interval in small steps so a drain is noticed
        // within POLL, not a full interval.
        let t0 = Instant::now();
        while t0.elapsed() < ctx.gossip_interval {
            if ctx.draining() {
                return;
            }
            std::thread::sleep(POLL.min(ctx.gossip_interval));
        }
        if ctx.draining() {
            return;
        }
        let peers = lock_unpoisoned(&ctx.peers).clone();
        if peers.is_empty() {
            continue;
        }
        let hot = ctx.cache.hottest(ctx.gossip_entries);
        if hot.is_empty() {
            continue;
        }
        let line = gossip_line(&hot);
        let mut sent = 0u64;
        for peer in &peers {
            match exchange(&mut conns, peer, &line) {
                Ok(()) => sent += hot.len() as u64,
                Err(_) => {
                    conns.remove(peer);
                    ctx.registry.inc("serve.gossip.errors");
                }
            }
        }
        ctx.registry.inc("serve.gossip.rounds");
        ctx.registry.add("serve.gossip.sent", sent);
    }
}

/// One request/ack round trip on the peer's persistent connection,
/// dialing it first if absent or previously failed.
fn exchange(
    conns: &mut HashMap<String, TcpStream>,
    peer: &str,
    line: &str,
) -> Result<(), std::io::Error> {
    if !conns.contains_key(peer) {
        conns.insert(peer.to_string(), dial(peer)?);
    }
    let stream = conns.get_mut(peer).expect("just inserted");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    read_ack(stream)
}

fn dial(peer: &str) -> Result<TcpStream, std::io::Error> {
    let addr = peer.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("peer `{peer}` resolves to nothing"),
        )
    })?;
    let stream = TcpStream::connect_timeout(&addr, PEER_TIMEOUT)?;
    stream.set_read_timeout(Some(PEER_TIMEOUT))?;
    stream.set_write_timeout(Some(PEER_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Read (and discard) the one-line ack; its content doesn't matter, but
/// leaving it buffered would desynchronize the next round.
fn read_ack(stream: &mut TcpStream) -> Result<(), std::io::Error> {
    let mut seen = 0usize;
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(());
                }
                seen += 1;
                if seen > MAX_ACK_BYTES {
                    return Err(ErrorKind::InvalidData.into());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
