//! Chain coarsening: cap the number of layers by greedily grouping
//! adjacent ones — the same greedy grouping the paper applies when
//! linearizing computational graphs, exposed as a utility so very deep
//! chains (e.g. DenseNet at single-layer granularity) stay tractable for
//! the dynamic programs.
//!
//! Grouping two layers `a → b` produces one layer with summed durations
//! and weights, `b`'s output activation, and `a`'s output recorded as
//! *internal stored bytes*: the tensor no longer crosses any cut, but one
//! copy per live mini-batch is still pinned until the grouped backward
//! runs, so the memory model stays exact.

use madpipe_model::{Chain, Layer};

/// Greedily merge adjacent layers (always the pair with the smallest
/// combined compute time) until the chain has at most `max_layers`.
///
/// Total compute time, total weights and total per-batch stored bytes
/// are preserved exactly; only cut granularity is lost.
pub fn coarsen(chain: &Chain, max_layers: usize) -> Chain {
    let max_layers = max_layers.max(1);
    let mut layers: Vec<Layer> = chain.layers().to_vec();
    while layers.len() > max_layers {
        // Find the adjacent pair with the smallest combined load.
        let (i, _) = layers
            .windows(2)
            .enumerate()
            .map(|(i, w)| (i, w[0].compute_time() + w[1].compute_time()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least two layers");
        let b = layers.remove(i + 1);
        let a = &mut layers[i];
        a.name = format!("{}+{}", a.name, b.name);
        a.forward_time += b.forward_time;
        a.backward_time += b.backward_time;
        a.weight_bytes += b.weight_bytes;
        // b's input (= a's old output) becomes internal.
        a.internal_stored_bytes += a.activation_bytes + b.internal_stored_bytes;
        a.activation_bytes = b.activation_bytes;
    }
    Chain::new(chain.name().to_string(), chain.input_bytes(), layers)
        .expect("merging well-formed layers yields a well-formed chain")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Chain {
        Chain::new(
            "t",
            100,
            vec![
                Layer::new("a", 1.0, 1.0, 10, 200),
                Layer::new("b", 0.1, 0.1, 20, 300),
                Layer::new("c", 0.2, 0.2, 30, 400),
                Layer::new("d", 5.0, 5.0, 40, 500),
            ],
        )
        .unwrap()
    }

    #[test]
    fn caps_the_layer_count() {
        let c = coarsen(&chain(), 2);
        assert_eq!(c.len(), 2);
        let same = coarsen(&chain(), 10);
        assert_eq!(same.len(), 4);
    }

    #[test]
    fn merges_the_cheapest_adjacent_pair_first() {
        let c = coarsen(&chain(), 3);
        // b (0.2) + c (0.4) is the cheapest pair.
        assert_eq!(c.layer(1).name, "b+c");
        assert_eq!(c.layer(1).weight_bytes, 50);
        assert_eq!(c.layer(1).activation_bytes, 400);
        // b's input (a's output, 200) … no wait: internal stored is the
        // tensor between b and c, i.e. b's output 300.
        assert_eq!(c.layer(1).internal_stored_bytes, 300);
    }

    #[test]
    fn conserves_compute_weights_and_stored_bytes() {
        let original = chain();
        for cap in [1usize, 2, 3] {
            let c = coarsen(&original, cap);
            assert!((c.total_compute_time() - original.total_compute_time()).abs() < 1e-12);
            assert_eq!(
                c.weight_bytes(0..c.len()),
                original.weight_bytes(0..original.len())
            );
            assert_eq!(
                c.stored_activation_bytes(0..c.len()),
                original.stored_activation_bytes(0..original.len()),
                "stored bytes must be conserved at cap {cap}"
            );
            assert_eq!(c.activation_out(c.len() - 1), 500);
            assert_eq!(c.input_bytes(), 100);
        }
    }

    #[test]
    fn single_layer_collapse() {
        let c = coarsen(&chain(), 1);
        assert_eq!(c.len(), 1);
        // Internal = a_out + b_out + c_out = 200 + 300 + 400.
        assert_eq!(c.layer(0).internal_stored_bytes, 900);
    }
}
