//! Sharded LRU cache of finished plans, keyed by the canonical instance
//! string.
//!
//! The 64-bit FNV-1a hash of the key only selects a shard; inside the
//! shard the *full* canonical string is the map key, so a hash collision
//! costs a shared lock at worst, never a wrong plan. Recency is a
//! monotone stamp from one shared counter; eviction scans the (small,
//! bounded) shard for the minimum stamp — O(capacity/shards), no
//! intrusive list to get wrong under contention.
//!
//! Besides the entry-count bound the cache can carry a *byte* budget
//! ([`PlanCache::with_byte_budget`]): each entry is charged its key
//! length plus an estimate of its plan's in-memory size, eviction frees
//! however many entries it takes to fit a newcomer, and a single plan
//! too large to ever fit its shard is refused outright — caching it
//! would evict an entire shard and still blow the budget, so the cache
//! stays unchanged and the plan is simply served uncached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use madpipe_json::Value;

const SHARDS: usize = 8;

struct Entry {
    stamp: u64,
    plan: Arc<Value>,
    /// Byte charge against the shard's budget (0 when unbudgeted).
    cost: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    /// Sum of the resident entries' costs.
    bytes: usize,
}

/// The plan cache. `capacity == 0` disables caching entirely (every
/// lookup misses, every insert is dropped).
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    clock: AtomicU64,
    per_shard: usize,
    /// Per-shard byte budget; 0 means unbudgeted (entry count only).
    per_shard_bytes: usize,
}

/// Estimate a plan's in-memory footprint: string payloads plus a flat
/// per-node charge for the enum/container overhead. Deliberately cheap
/// (no rendering) and deliberately an estimate — the budget bounds
/// memory to within a small constant factor, it is not an allocator.
pub fn approx_plan_bytes(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 8,
        Value::UInt(_) | Value::Int(_) | Value::Float(_) => 24,
        Value::Str(s) => 24 + s.len(),
        Value::Array(items) => 24 + items.iter().map(approx_plan_bytes).sum::<usize>(),
        Value::Object(fields) => {
            24 + fields
                .iter()
                .map(|(k, v)| k.len() + 24 + approx_plan_bytes(v))
                .sum::<usize>()
        }
    }
}

/// Shard locks ignore poisoning: a panicking worker may die while a
/// guard is live, but every guarded update here is a single-step map
/// mutation, so the shard is consistent at any unwind point — and the
/// cache must keep serving the surviving workers.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a, 64-bit — enough to spread keys over 8 shards.
fn shard_of(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (rounded up to a
    /// multiple of the shard count; 0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, 0)
    }

    /// A cache bounded by both entry count and an approximate byte
    /// budget (`budget_bytes == 0` leaves bytes unbounded). The budget
    /// is spread over the shards; an entry larger than one shard's
    /// slice — in particular any plan larger than the whole budget — is
    /// refused rather than admitted-and-thrashed.
    pub fn with_byte_budget(capacity: usize, budget_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            per_shard: capacity.div_ceil(SHARDS),
            per_shard_bytes: budget_bytes.div_ceil(SHARDS),
        }
    }

    /// Look up a plan, refreshing its recency stamp on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<Value>> {
        if self.per_shard == 0 {
            return None;
        }
        let mut shard = lock_shard(&self.shards[shard_of(key)]);
        let entry = shard.map.get_mut(key)?;
        entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.plan))
    }

    /// Insert (or refresh) a plan; returns how many entries were evicted
    /// to make room (0 or 1 under the entry bound; possibly more under a
    /// byte budget). An entry too large for its shard's byte slice is
    /// refused — the cache stays unchanged.
    pub fn insert(&self, key: String, plan: Arc<Value>) -> u64 {
        if self.per_shard == 0 {
            return 0;
        }
        let cost = self.cost_of(&key, &plan);
        if self.oversized(cost) {
            return 0;
        }
        let mut shard = lock_shard(&self.shards[shard_of(&key)]);
        // A replace frees its own slot and bytes before the room check,
        // so re-inserting a key never evicts a sibling spuriously.
        if let Some(prior) = shard.map.remove(&key) {
            shard.bytes -= prior.cost;
        }
        let evicted = self.make_room(&mut shard, cost);
        // The stamp must be drawn *inside* the shard lock (as `get` does).
        // Drawn outside, an insert could take stamp N, stall, and store N
        // only after concurrent hits refreshed sibling entries with
        // N+1… — the *newest* write in the shard would then carry the
        // shard's minimum stamp and be the next eviction victim. With
        // every draw under the lock, stamps within a shard are monotone
        // in write order, which is exactly what the min-stamp scan needs;
        // `Relaxed` is fine because the mutex already orders the
        // cross-thread accesses — the counter is only a tie-free source
        // of unique values.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        shard.bytes += cost;
        shard.map.insert(key, Entry { stamp, plan, cost });
        evicted
    }

    /// Insert a plan only if the key is absent — the gossip-warming and
    /// journal-replay path. Returns `(inserted, evicted)`. Unlike
    /// [`PlanCache::insert`] a repeat does *not* refresh the entry's
    /// recency stamp: a peer re-shipping a key this cache already holds
    /// says nothing about local demand, so it must not protect the entry
    /// from eviction.
    pub fn warm(&self, key: String, plan: Arc<Value>) -> (bool, u64) {
        if self.per_shard == 0 {
            return (false, 0);
        }
        let cost = self.cost_of(&key, &plan);
        if self.oversized(cost) {
            return (false, 0);
        }
        let mut shard = lock_shard(&self.shards[shard_of(&key)]);
        if shard.map.contains_key(&key) {
            return (false, 0);
        }
        let evicted = self.make_room(&mut shard, cost);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        shard.bytes += cost;
        shard.map.insert(key, Entry { stamp, plan, cost });
        (true, evicted)
    }

    /// Byte charge for an entry; 0 when the cache carries no budget (the
    /// estimate walk is skipped entirely on the unbudgeted path).
    fn cost_of(&self, key: &str, plan: &Value) -> usize {
        if self.per_shard_bytes == 0 {
            0
        } else {
            key.len() + approx_plan_bytes(plan)
        }
    }

    /// True when `cost` can never fit a shard, even emptied.
    fn oversized(&self, cost: usize) -> bool {
        self.per_shard_bytes > 0 && cost > self.per_shard_bytes
    }

    /// Evict minimum-stamp entries until a `cost`-sized newcomer fits
    /// both bounds; returns how many were evicted.
    fn make_room(&self, shard: &mut Shard, cost: usize) -> u64 {
        let mut evicted = 0;
        while !shard.map.is_empty()
            && (shard.map.len() >= self.per_shard
                || (self.per_shard_bytes > 0 && shard.bytes + cost > self.per_shard_bytes))
        {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                if let Some(e) = shard.map.remove(&oldest) {
                    shard.bytes -= e.cost;
                }
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }

    /// The `k` most recently touched plans across all shards, hottest
    /// first — the gossip sender's working set.
    pub fn hottest(&self, k: usize) -> Vec<(String, Arc<Value>)> {
        if self.per_shard == 0 || k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(u64, String, Arc<Value>)> = Vec::new();
        for shard in &self.shards {
            let shard = lock_shard(shard);
            for (key, e) in &shard.map {
                all.push((e.stamp, key.clone(), Arc::clone(&e.plan)));
            }
        }
        all.sort_by_key(|e| std::cmp::Reverse(e.0));
        all.truncate(k);
        all.into_iter().map(|(_, key, plan)| (key, plan)).collect()
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: u64) -> Arc<Value> {
        Arc::new(Value::UInt(n))
    }

    #[test]
    fn hit_miss_and_refresh() {
        let c = PlanCache::new(16);
        assert!(c.get("a").is_none());
        c.insert("a".into(), plan(1));
        assert_eq!(c.get("a").as_deref(), Some(&Value::UInt(1)));
        // Re-insert replaces without eviction.
        assert_eq!(c.insert("a".into(), plan(2)), 0);
        assert_eq!(c.get("a").as_deref(), Some(&Value::UInt(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // Capacity 8 → one slot per shard: any two same-shard keys fight
        // for it, and the older one must lose.
        let c = PlanCache::new(8);
        let mut keys: Vec<String> = Vec::new();
        let mut i = 0;
        while keys.len() < 2 {
            let k = format!("k{i}");
            if shard_of(&k) == shard_of("k0") {
                keys.push(k);
            }
            i += 1;
        }
        c.insert(keys[0].clone(), plan(0));
        assert_eq!(c.insert(keys[1].clone(), plan(1)), 1, "one eviction");
        assert!(c.get(&keys[0]).is_none(), "oldest evicted");
        assert!(c.get(&keys[1]).is_some());
    }

    #[test]
    fn get_refreshes_recency() {
        let c = PlanCache::new(8);
        let mut same: Vec<String> = Vec::new();
        let mut i = 0;
        while same.len() < 3 {
            let k = format!("r{i}");
            if shard_of(&k) == shard_of("r0") {
                same.push(k);
            }
            i += 1;
        }
        c.insert(same[0].clone(), plan(0));
        // Shard holds 1 entry; touching [0] then inserting [1] evicts [0]
        // anyway (capacity 1), so use capacity 16 → 2 per shard.
        let c = PlanCache::new(16);
        c.insert(same[0].clone(), plan(0));
        c.insert(same[1].clone(), plan(1));
        assert!(c.get(&same[0]).is_some()); // refresh [0]
        c.insert(same[2].clone(), plan(2)); // shard full → evicts [1]
        assert!(c.get(&same[0]).is_some(), "refreshed entry survives");
        assert!(c.get(&same[1]).is_none(), "stale entry evicted");
    }

    /// A plan string of roughly `n` payload bytes.
    fn sized_plan(n: usize) -> Arc<Value> {
        Arc::new(Value::Str("x".repeat(n)))
    }

    #[test]
    fn a_plan_larger_than_the_whole_budget_is_refused_and_disturbs_nothing() {
        // 8 KiB across 8 shards → 1 KiB per shard. A resident small
        // entry, then a plan bigger than the *entire* cache budget: the
        // insert must be a no-op — not admitted, not evicting the
        // resident — and the same plan must be refused via `warm` too.
        let c = PlanCache::with_byte_budget(64, 8 << 10);
        c.insert("small".into(), plan(1));
        assert_eq!(c.insert("huge".into(), sized_plan(16 << 10)), 0);
        assert!(c.get("huge").is_none(), "oversized plan must not be cached");
        assert_eq!(
            c.get("small").as_deref(),
            Some(&Value::UInt(1)),
            "refusal must not evict residents"
        );
        assert_eq!(c.len(), 1);
        let (inserted, evicted) = c.warm("huge2".into(), sized_plan(16 << 10));
        assert!(!inserted);
        assert_eq!(evicted, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn byte_budget_evicts_as_many_entries_as_it_takes() {
        // One shard's slice is 1 KiB; three ~300 B same-shard entries
        // fit, then a ~900 B newcomer must evict more than one of them.
        let c = PlanCache::with_byte_budget(64, 8 << 10);
        let mut same: Vec<String> = Vec::new();
        let mut i = 0;
        while same.len() < 4 {
            let k = format!("b{i}");
            if shard_of(&k) == shard_of("b0") {
                same.push(k);
            }
            i += 1;
        }
        for k in &same[..3] {
            assert_eq!(c.insert(k.clone(), sized_plan(300)), 0);
        }
        assert_eq!(c.len(), 3);
        let evicted = c.insert(same[3].clone(), sized_plan(900));
        assert!(evicted >= 2, "expected a multi-eviction, got {evicted}");
        assert!(c.get(&same[3]).is_some());
    }

    #[test]
    fn replacing_a_key_under_budget_reaccounts_its_bytes() {
        let c = PlanCache::with_byte_budget(64, 8 << 10);
        c.insert("k".into(), sized_plan(800));
        // Shrink it, then grow it back: neither replace may evict the
        // entry itself or misaccount the shard's byte sum (which a
        // follow-up same-shard insert would expose as a bogus eviction).
        assert_eq!(c.insert("k".into(), sized_plan(100)), 0);
        assert_eq!(c.insert("k".into(), sized_plan(800)), 0);
        assert!(c.get("k").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = PlanCache::new(0);
        assert_eq!(c.insert("a".into(), plan(1)), 0);
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_eviction_never_exceeds_capacity_and_hits_stay_coherent() {
        // 8 threads hammer a 16-slot cache with 64 distinct keys: far
        // more candidates than capacity, so eviction runs constantly
        // under real contention. Invariants: the size bound holds at
        // every observation point, and a hit always returns the value
        // that was inserted under that key (never another key's plan).
        let c = Arc::new(PlanCache::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        let n = (t * 7 + round * 13) % 64;
                        let key = format!("k{n}");
                        c.insert(key.clone(), plan(n));
                        if let Some(v) = c.get(&key) {
                            assert_eq!(*v, Value::UInt(n), "hit for {key} served a foreign plan");
                        }
                        assert!(c.len() <= 16, "capacity exceeded: {}", c.len());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(!c.is_empty());
        assert!(c.len() <= 16);
    }

    #[test]
    fn a_just_refreshed_entry_is_never_the_eviction_victim() {
        // Regression test for the stale-stamp race: `insert` used to draw
        // its recency stamp *outside* the shard lock, so an entry
        // refreshed by concurrent hits could still lose an eviction scan
        // to an insert holding an older pre-drawn stamp. Lockstep rounds:
        // several hitter threads refresh `protected` concurrently, then
        // (ordered by a barrier) the main thread inserts a fresh
        // same-shard key into a full shard. The eviction must always pick
        // the cold filler, never the entry that was just refreshed.
        use std::sync::Barrier;

        // Capacity 16 → 2 slots per shard; collect same-shard keys.
        let mut same: Vec<String> = Vec::new();
        let mut i = 0;
        while same.len() < 18 {
            let k = format!("v{i}");
            if shard_of(&k) == shard_of("v0") {
                same.push(k);
            }
            i += 1;
        }
        let protected = same.remove(0);
        let rounds = same.len() - 1;

        let c = Arc::new(PlanCache::new(16));
        c.insert(protected.clone(), plan(0));
        c.insert(same[0].clone(), plan(1));

        const HITTERS: usize = 4;
        let barrier = Arc::new(Barrier::new(HITTERS + 1));
        let hitters: Vec<_> = (0..HITTERS)
            .map(|_| {
                let c = Arc::clone(&c);
                let b = Arc::clone(&barrier);
                let p = protected.clone();
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        b.wait(); // round open
                                  // This hit both *checks* the entry survived the
                                  // previous round's eviction and refreshes it
                                  // ahead of this round's insert.
                        assert!(c.get(&p).is_some(), "refreshed entry was evicted");
                        b.wait(); // hits complete
                        b.wait(); // insert complete
                    }
                })
            })
            .collect();

        for filler in same.iter().skip(1) {
            barrier.wait(); // round open
            barrier.wait(); // hits complete
                            // Shard is full (protected + previous filler): this insert
                            // must evict, and the victim must be the cold filler.
            assert_eq!(
                c.insert(filler.clone(), plan(9)),
                1,
                "expected one eviction"
            );
            barrier.wait(); // insert complete
        }
        for t in hitters {
            t.join().unwrap();
        }
        assert!(
            c.get(&protected).is_some(),
            "refreshed entry survived every eviction round"
        );
    }

    #[test]
    fn survives_a_panic_while_a_guard_is_live() {
        // A thread that panics between cache calls must not poison the
        // shards for everyone else (worker panics are real: the serve
        // daemon catches and resumes them with cache handles in scope).
        let c = Arc::new(PlanCache::new(16));
        c.insert("stays".into(), plan(7));
        let c2 = Arc::clone(&c);
        let result = std::thread::spawn(move || {
            c2.insert("doomed".into(), plan(1));
            panic!("chaos");
        })
        .join();
        assert!(result.is_err());
        assert_eq!(c.get("stays").as_deref(), Some(&Value::UInt(7)));
        c.insert("after".into(), plan(2));
        assert_eq!(c.get("after").as_deref(), Some(&Value::UInt(2)));
    }
}
