//! Chrome-trace export: dump a periodic pattern's execution as a
//! `chrome://tracing` / Perfetto JSON file for visual inspection.
//!
//! Each GPU and link becomes a trace "thread"; each executed operation
//! becomes a complete event (`ph: "X"`) labelled with its unit, direction
//! and mini-batch index. Times are exported in microseconds as Perfetto
//! expects.

use std::fmt::Write as _;

use madpipe_model::{Resource, UnitKind, UnitSequence};
use madpipe_schedule::{Dir, Pattern};

/// Render `periods` periods of `pattern` as Chrome-trace JSON.
///
/// Batches still in the fill phase (negative indices) are skipped, like
/// in [`crate::replay`].
pub fn chrome_trace(seq: &UnitSequence, pattern: &Pattern, periods: usize) -> String {
    let t_period = pattern.period;
    let warmup = pattern.max_shift() as usize;
    let total = warmup + periods.max(1);

    // Stable thread ids: GPUs first, then links, ordered.
    let mut resources: Vec<Resource> = pattern.ops.iter().map(|o| o.resource).collect();
    resources.sort();
    resources.dedup();
    let tid = |r: Resource| -> usize {
        resources
            .iter()
            .position(|&x| x == r)
            .expect("known resource")
            + 1
    };

    let mut out = String::from("{\"traceEvents\":[\n");
    // Thread name metadata.
    for &r in &resources {
        let name = match r {
            Resource::Gpu(g) => format!("GPU {g}"),
            Resource::Link(a, b) => format!("link {a}-{b}"),
        };
        let _ = writeln!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}},",
            tid(r),
            name
        );
    }

    let mut first = true;
    for k in 0..total {
        for op in &pattern.ops {
            let batch = k as i64 - op.shift as i64;
            if batch < 0 {
                continue;
            }
            let unit = &seq.units()[op.unit];
            let kind = match (&unit.kind, op.dir) {
                (UnitKind::Stage { stage, .. }, Dir::Forward) => format!("F s{stage}"),
                (UnitKind::Stage { stage, .. }, Dir::Backward) => format!("B s{stage}"),
                (UnitKind::Comm { .. }, Dir::Forward) => format!("send u{}", op.unit),
                (UnitKind::Comm { .. }, Dir::Backward) => format!("recv u{}", op.unit),
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let start_us = (k as f64 * t_period + op.start) * 1e6;
            let dur_us = op.duration * 1e6;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{} b{}\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"batch\":{},\"shift\":{}}}}}",
                tid(op.resource),
                kind,
                batch,
                start_us,
                dur_us,
                batch,
                op.shift
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Allocation, Chain, Layer, Partition, Platform};
    use madpipe_schedule::one_f1b_star;

    fn setup() -> (UnitSequence, Pattern) {
        let chain = Chain::new(
            "t",
            10,
            vec![
                Layer::new("a", 1.0, 1.0, 0, 10),
                Layer::new("b", 1.0, 1.0, 0, 10),
            ],
        )
        .unwrap();
        let platform = Platform::new(2, 1 << 30, 10.0).unwrap();
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let t = seq.total_load();
        let pattern = one_f1b_star(&seq, t);
        (seq, pattern)
    }

    #[test]
    fn emits_valid_json_with_all_threads() {
        let (seq, pattern) = setup();
        let json = chrome_trace(&seq, &pattern, 3);
        let parsed = madpipe_json::Value::parse(&json).expect("valid JSON");
        let events = parsed
            .field("traceEvents")
            .unwrap()
            .as_array()
            .expect("array");
        // 3 metadata (2 GPUs + 1 link) + 6 ops × 3 periods (no shifts here)
        assert_eq!(events.len(), 3 + 18);
        assert!(json.contains("GPU 0"));
        assert!(json.contains("link 0-1"));
        assert!(json.contains("F s0 b0"));
    }

    #[test]
    fn fill_phase_batches_are_skipped() {
        let (seq, mut pattern) = setup();
        // Make the backward of unit 0 carry shift 2: its first two firings
        // process negative batches and must not appear.
        for op in &mut pattern.ops {
            if op.unit == 0 && op.dir == Dir::Backward {
                op.shift = 2;
            }
        }
        let json = chrome_trace(&seq, &pattern, 1);
        assert!(!json.contains("b-1"));
        assert!(!json.contains("b-2"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let (seq, pattern) = setup();
        let json = chrome_trace(&seq, &pattern, 1);
        let parsed = madpipe_json::Value::parse(&json).unwrap();
        let durs: Vec<f64> = parsed
            .field("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str().ok()) == Some("X"))
            .map(|e| e.field("dur").unwrap().as_f64().unwrap())
            .collect();
        // 1-second ops → 1e6 µs.
        assert!(durs.iter().any(|&d| (d - 1e6).abs() < 1.0));
    }
}
