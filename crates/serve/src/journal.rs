//! Durable plan journal: crash recovery for the plan cache.
//!
//! A daemon started with `--journal FILE` appends every freshly
//! computed `(canonical key, rendered plan)` pair to an append-only
//! JSONL file and replays it on startup, warming the cache so a
//! `SIGKILL`ed daemon comes back serving the same plans — byte-identical,
//! because the journal stores the plan exactly as rendered and
//! [`Value`] rendering is deterministic.
//!
//! ## Frame format
//!
//! One record per line:
//!
//! ```text
//! <len> <fnv64-hex> <payload>\n
//! ```
//!
//! where `payload` is the compact JSON `{"key":…,"plan":…}`, `len` its
//! byte length and the checksum FNV-1a over the payload bytes. The
//! header makes replay robust against the one corruption an append-only
//! log actually suffers: a torn tail. A `SIGKILL` (or disk-full) can cut
//! the last record anywhere — short payload, missing newline, garbage
//! bytes — and replay simply stops at the first frame that fails its
//! length or checksum, keeping every intact record before it. Torn
//! frames are counted, never propagated.
//!
//! ## Compaction
//!
//! The journal grows by one record per cache miss forever, including
//! keys long since evicted. On drain the server rewrites the journal
//! from the live cache (newest-first), via a temp file + atomic rename,
//! so the next start replays only what the cache would hold anyway.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::{Arc, Mutex};

use madpipe_json::Value;

use crate::server::lock_unpoisoned;

/// FNV-1a, the same cheap stable hash the cache shards and router ring
/// use. Not cryptographic — it detects torn frames, not adversaries
/// (anyone who can forge a checksummed record can also replace the
/// whole file).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`Journal::replay`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Intact records decoded (pre-dedup; the cache's insert-if-absent
    /// warming dedups repeated keys, keeping the *oldest* record —
    /// which for a given key is the one the daemon served first).
    pub recovered: usize,
    /// Frames discarded at the tail (0 on a clean file, 1 after a torn
    /// write; counts every undecodable trailing line).
    pub torn: usize,
}

/// An append-only, checksummed plan journal. All methods take `&self`;
/// the file handle lives behind a mutex so workers can append
/// concurrently.
pub struct Journal {
    path: String,
    file: Mutex<Option<File>>,
}

impl Journal {
    /// Open (creating if absent) the journal at `path` for appending.
    /// Existing records are untouched — call [`Journal::replay`] to read
    /// them.
    pub fn open(path: &str) -> std::io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_string(),
            file: Mutex::new(Some(file)),
        })
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Decode every intact record. Stops at the first frame that fails
    /// its length or checksum check — everything after a torn write is
    /// unreachable by construction (appends are sequential), so nothing
    /// valid is lost.
    pub fn replay(&self) -> (Vec<(String, Arc<Value>)>, ReplayStats) {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(_) => return (Vec::new(), ReplayStats::default()),
        };
        let mut entries = Vec::new();
        let mut stats = ReplayStats::default();
        let mut rest: &[u8] = &bytes;
        while !rest.is_empty() {
            match decode_frame(rest) {
                Some((key, plan, consumed)) => {
                    entries.push((key, Arc::new(plan)));
                    stats.recovered += 1;
                    rest = &rest[consumed..];
                }
                None => {
                    // Torn tail: count the undecodable remainder as one
                    // discarded frame per newline-delimited fragment and
                    // stop — later frames could only have been written
                    // after this one, so they cannot be intact.
                    stats.torn += rest
                        .split(|&b| b == b'\n')
                        .filter(|f| !f.is_empty())
                        .count();
                    break;
                }
            }
        }
        (entries, stats)
    }

    /// Append one record. Errors are returned, not retried — the caller
    /// counts them; a journal that stops persisting degrades recovery,
    /// never serving.
    pub fn append(&self, key: &str, plan: &Value) -> std::io::Result<()> {
        let frame = encode_frame(key, plan);
        let mut guard = lock_unpoisoned(&self.file);
        match guard.as_mut() {
            Some(f) => f.write_all(frame.as_bytes()),
            None => Err(std::io::Error::other("journal closed")),
        }
    }

    /// Rewrite the journal to hold exactly `entries` (temp file + atomic
    /// rename, so a crash mid-compaction leaves either the old or the
    /// new journal, never a mix). The append handle is re-pointed at the
    /// new file.
    pub fn compact(&self, entries: &[(String, Arc<Value>)]) -> std::io::Result<()> {
        let tmp_path = format!("{}.tmp", self.path);
        let mut guard = lock_unpoisoned(&self.file);
        {
            let mut tmp = File::create(&tmp_path)?;
            for (key, plan) in entries {
                tmp.write_all(encode_frame(key, plan).as_bytes())?;
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        *guard = Some(OpenOptions::new().append(true).open(&self.path)?);
        Ok(())
    }
}

fn encode_frame(key: &str, plan: &Value) -> String {
    let payload = Value::Object(vec![
        ("key".into(), Value::Str(key.to_string())),
        ("plan".into(), plan.clone()),
    ])
    .to_string_compact();
    let sum = fnv1a(payload.as_bytes());
    format!("{} {sum:016x} {payload}\n", payload.len())
}

/// Decode the frame at the head of `bytes`. Returns the record and how
/// many bytes it consumed (including the trailing newline), or `None`
/// if the head is not an intact frame.
fn decode_frame(bytes: &[u8]) -> Option<(String, Value, usize)> {
    let sp1 = bytes.iter().position(|&b| b == b' ')?;
    let len: usize = std::str::from_utf8(&bytes[..sp1]).ok()?.parse().ok()?;
    let after_len = &bytes[sp1 + 1..];
    let sp2 = after_len.iter().position(|&b| b == b' ')?;
    let sum = u64::from_str_radix(std::str::from_utf8(&after_len[..sp2]).ok()?, 16).ok()?;
    let payload_start = sp1 + 1 + sp2 + 1;
    let payload_end = payload_start.checked_add(len)?;
    // The payload must be fully present and followed by its newline.
    if payload_end >= bytes.len() || bytes[payload_end] != b'\n' {
        return None;
    }
    let payload = &bytes[payload_start..payload_end];
    if fnv1a(payload) != sum {
        return None;
    }
    let v = Value::parse(std::str::from_utf8(payload).ok()?).ok()?;
    let key = v.field("key").ok()?.as_str().ok()?.to_string();
    let plan = v.field("plan").ok()?.clone();
    Some((key, plan, payload_end + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!(
                "madpipe-journal-{}-{name}.jsonl",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned()
    }

    fn plan(i: u64) -> Value {
        Value::Object(vec![
            ("period".into(), Value::Float(0.125 * i as f64)),
            ("stages".into(), Value::Array(vec![Value::UInt(i)])),
        ])
    }

    #[test]
    fn round_trip_preserves_records_and_rendering() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        for i in 0..5 {
            j.append(&format!("key-{i}"), &plan(i)).unwrap();
        }
        let (entries, stats) = j.replay();
        assert_eq!(
            stats,
            ReplayStats {
                recovered: 5,
                torn: 0
            }
        );
        assert_eq!(entries.len(), 5);
        for (i, (key, p)) in entries.iter().enumerate() {
            assert_eq!(key, &format!("key-{i}"));
            // Byte-identity: the replayed plan renders exactly as the
            // original did — the property cache warming relies on.
            assert_eq!(p.to_string_compact(), plan(i as u64).to_string_compact());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_intact_prefix_at_every_cut_point() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        for i in 0..3 {
            j.append(&format!("k{i}"), &plan(i)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every byte offset inside the last record: the
        // first two records must always survive, the third never half-
        // decodes.
        let second_end = {
            let mut seen = 0;
            full.iter()
                .position(|&b| {
                    if b == b'\n' {
                        seen += 1;
                    }
                    seen == 2
                })
                .unwrap()
                + 1
        };
        for cut in second_end..full.len() - 1 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (entries, stats) = Journal::open(&path).unwrap().replay();
            assert_eq!(entries.len(), 2, "cut at {cut}");
            assert_eq!(stats.recovered, 2);
            if cut == second_end {
                // Cut exactly on the record boundary: indistinguishable
                // from a clean two-record file, nothing is torn.
                assert_eq!(stats.torn, 0);
            } else {
                assert!(stats.torn >= 1, "cut at {cut} must report a torn frame");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_and_checksum_corruption_stop_replay_cleanly() {
        let path = tmp("garbage");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.append("good", &plan(1)).unwrap();
        // Arbitrary trailing garbage, including invalid UTF-8.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"12 deadbeef \xff\xfe not json\n");
        std::fs::write(&path, &bytes).unwrap();
        let (entries, stats) = Journal::open(&path).unwrap().replay();
        assert_eq!(entries.len(), 1);
        assert_eq!(stats.torn, 1);

        // Flip one payload byte of an otherwise well-framed record: the
        // checksum catches it.
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.append("good", &plan(1)).unwrap();
        j.append("flipped", &plan(2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (entries, stats) = Journal::open(&path).unwrap().replay();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "good");
        assert_eq!(stats.torn, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_and_appends_keep_working() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        for i in 0..10 {
            j.append(&format!("k{i}"), &plan(i)).unwrap();
        }
        let keep: Vec<(String, Arc<Value>)> = vec![
            ("k3".into(), Arc::new(plan(3))),
            ("k7".into(), Arc::new(plan(7))),
        ];
        j.compact(&keep).unwrap();
        let (entries, stats) = j.replay();
        assert_eq!(
            stats,
            ReplayStats {
                recovered: 2,
                torn: 0
            }
        );
        assert_eq!(entries[0].0, "k3");
        assert_eq!(entries[1].0, "k7");
        // The append handle survived the rename swap.
        j.append("post", &plan(11)).unwrap();
        let (entries, _) = j.replay();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[2].0, "post");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_missing_files_replay_to_nothing() {
        let path = tmp("empty");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        let (entries, stats) = j.replay();
        assert!(entries.is_empty());
        assert_eq!(stats, ReplayStats::default());
        let _ = std::fs::remove_file(&path);
    }
}
