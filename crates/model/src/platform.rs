//! The execution platform: `P` GPUs, memory capacity `M`, link bandwidth `β`.

use crate::chain::Chain;
use crate::error::ModelError;

/// Number of bytes in one gibibyte — experiment grids are specified in GB.
pub const GIB: u64 = 1 << 30;

/// The homogeneous platform of §3: `P` identical GPUs with memory `M`,
/// every pair connected by a dedicated full-duplex-free link of capacity
/// `β` (as in PipeDream, a single exclusive channel per GPU pair).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Number of GPUs `P`.
    pub n_gpus: usize,
    /// Memory capacity `M` of each GPU, in bytes.
    pub memory_bytes: u64,
    /// Link bandwidth `β`, in bytes per second.
    pub bandwidth: f64,
}

impl Platform {
    /// Build and validate a platform.
    pub fn new(n_gpus: usize, memory_bytes: u64, bandwidth: f64) -> Result<Self, ModelError> {
        if n_gpus == 0 {
            return Err(ModelError::BadPlatform {
                detail: "n_gpus must be at least 1".into(),
            });
        }
        if memory_bytes == 0 {
            return Err(ModelError::BadPlatform {
                detail: "memory_bytes must be positive".into(),
            });
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(ModelError::BadPlatform {
                detail: format!("bandwidth must be positive and finite, got {bandwidth}"),
            });
        }
        Ok(Self {
            n_gpus,
            memory_bytes,
            bandwidth,
        })
    }

    /// Convenience constructor with memory in GB (GiB), matching the
    /// paper's experiment grid (`M` = 3..16 GB, `β` = 12 or 24 GB/s).
    pub fn gb(n_gpus: usize, memory_gb: u64, bandwidth_gb_per_s: f64) -> Result<Self, ModelError> {
        Self::new(n_gpus, memory_gb * GIB, bandwidth_gb_per_s * GIB as f64)
    }

    /// Time to transfer `bytes` over one link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// The paper's `C(k)` for a cut *before* layer `k` (0-based): the total
    /// per-batch link occupancy `2·a_{k-1}/β` — the forward activation
    /// `a^{(k-1)}` plus the backward gradient `b^{(k-1)}` of equal size.
    ///
    /// `cut_time(chain, 0)` is 0 by convention (no cut before the first
    /// layer), as is `cut_time(chain, L)`.
    pub fn cut_time(&self, chain: &Chain, k: usize) -> f64 {
        if k == 0 || k > chain.len() {
            return 0.0;
        }
        if k == chain.len() {
            return 0.0;
        }
        self.transfer_time(2 * chain.activation_in(k))
    }

    /// One-way transfer time of the tensor crossing the cut before layer
    /// `k` (half of [`Platform::cut_time`]): used when scheduling the
    /// forward and backward communications as separate operations.
    pub fn one_way_cut_time(&self, chain: &Chain, k: usize) -> f64 {
        self.cut_time(chain, k) / 2.0
    }

    /// Sum of all cut times `Σ_{k=1}^{L-1} C(k)` — used as the upper bound
    /// initialization of Algorithm 1.
    pub fn total_cut_time(&self, chain: &Chain) -> f64 {
        (1..chain.len()).map(|k| self.cut_time(chain, k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn chain() -> Chain {
        Chain::new(
            "t",
            100,
            vec![
                Layer::new("l0", 1.0, 1.0, 0, 200),
                Layer::new("l1", 1.0, 1.0, 0, 300),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_degenerate_platforms() {
        assert!(Platform::new(0, 1, 1.0).is_err());
        assert!(Platform::new(1, 0, 1.0).is_err());
        assert!(Platform::new(1, 1, 0.0).is_err());
        assert!(Platform::new(1, 1, f64::NAN).is_err());
        assert!(Platform::new(2, 1, 1.0).is_ok());
    }

    #[test]
    fn gb_constructor_scales() {
        let p = Platform::gb(4, 3, 12.0).unwrap();
        assert_eq!(p.memory_bytes, 3 * GIB);
        assert_eq!(p.bandwidth, 12.0 * GIB as f64);
    }

    #[test]
    fn cut_time_uses_boundary_tensor() {
        let p = Platform::new(2, 1 << 30, 100.0).unwrap();
        let c = chain();
        // cut before layer 1 carries a^{(0 based: out of layer 0)} = 200 bytes
        assert_eq!(p.cut_time(&c, 1), 2.0 * 200.0 / 100.0);
        assert_eq!(p.cut_time(&c, 0), 0.0);
        assert_eq!(p.cut_time(&c, 2), 0.0); // after the last layer: no cut
        assert_eq!(p.one_way_cut_time(&c, 1), 200.0 / 100.0);
    }

    #[test]
    fn total_cut_time_sums_interior_cuts() {
        let p = Platform::new(2, 1 << 30, 100.0).unwrap();
        let c = chain();
        assert_eq!(p.total_cut_time(&c), p.cut_time(&c, 1));
    }
}
