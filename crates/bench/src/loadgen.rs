//! Load generator for `madpipe serve` — single daemon or cluster,
//! closed-loop or open-loop.
//!
//! N connections each fire M requests over a deterministic pool of
//! mixed instances, and the report aggregates p50/p95/p99 latency, a
//! per-outcome breakdown (`ok`/`cache_hit`/`shed`/`timeout`/`error`)
//! and the cache hit rate observed in the responses.
//!
//! Closed loop (the default): each connection sends its next batch as
//! soon as the previous one is answered — the classic service-time
//! measurement. Open loop ([`LoadgenConfig::rate`] > 0): requests are
//! fired on a fixed schedule (`rate` req/s split across connections)
//! *regardless* of how fast the server answers, which is what real
//! overload looks like; each request's latency is measured from its
//! **scheduled** send time, so a server that falls behind accrues the
//! queueing delay in the recorded quantiles instead of silently
//! suppressing it (the coordinated-omission correction).
//!
//! Pipelining: with [`LoadgenConfig::pipeline_depth`] > 1 each
//! connection writes a whole batch of newline-delimited requests before
//! reading the batch of responses — the wire pattern the reactor's
//! in-order pipelining exists for. Recorded per-request latency is then
//! the batch round trip divided by its size (amortized, exactly what a
//! pipelining client experiences per request).
//!
//! Multi-target: [`LoadgenConfig::addrs`] may name several daemons;
//! connection `i` targets `addrs[i % addrs.len()]`, so one run can
//! drive a whole cluster in aggregate.
//!
//! Transient transport failures — a refused/reset connect, a connection
//! the server closed mid-exchange — are retried on a fresh connection
//! with capped, deterministically jittered backoff ([`LoadgenConfig::
//! max_retries`]); a failed batch is replayed whole (plans are cached
//! server-side, so replays are cheap hits). Structured protocol errors
//! (`ok:false`) are *not* retried: the server answered, and a closed
//! loop that resends rejected work measures nothing.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use madpipe_json::{ToJson, Value};
use madpipe_model::Platform;

const GIB: u64 = 1 << 30;

/// Load profile.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server addresses, e.g. `["127.0.0.1:4835"]`; connection `i`
    /// targets `addrs[i % addrs.len()]`.
    pub addrs: Vec<String>,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_conn: usize,
    /// Requests in flight per connection: 1 is the classic
    /// send-one-await-one loop, larger batches pipeline.
    pub pipeline_depth: usize,
    /// Distinct instances in the request mix.
    pub instances: usize,
    /// Seed of the instance pool.
    pub seed: u64,
    /// Per-response read timeout.
    pub timeout: Duration,
    /// Reconnect attempts per batch on transient transport failures
    /// (connect refused, server closed the connection). 0 fails fast.
    pub max_retries: usize,
    /// Open-loop arrival rate in requests/second across all
    /// connections; 0 keeps the classic closed loop. Open-loop requests
    /// are timestamped by schedule, not by actual send, so latency
    /// includes any backlog the server built up.
    pub rate: f64,
    /// Inject a distributed trace context (`"trace"` field, unique id
    /// per request) into every request line, and count the responses
    /// that echo one back. This is how `madpipe loadgen --trace` seeds
    /// cluster-wide traces: router and daemons hang their spans off the
    /// injected id.
    pub trace: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addrs: vec!["127.0.0.1:4835".into()],
            connections: 4,
            requests_per_conn: 16,
            pipeline_depth: 1,
            instances: 4,
            seed: 42,
            timeout: Duration::from_secs(60),
            max_retries: 3,
            rate: 0.0,
            trace: false,
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    pub total: usize,
    pub ok: usize,
    /// Structured errors that were neither shed nor timed out
    /// (`malformed`, `internal`, `plan`, …).
    pub errors: usize,
    /// Requests the server shed under overload (`overloaded` errors —
    /// a full queue or the admission gate).
    pub shed: usize,
    /// Requests whose deadline elapsed server-side (`timeout` errors).
    pub timeouts: usize,
    pub cached: usize,
    /// Responses that echoed a `trace`/`span` context back (0 unless
    /// [`LoadgenConfig::trace`] was set and the server speaks tracing).
    pub traced: usize,
    /// Reconnect-and-resend attempts taken across all connections.
    pub retries: usize,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Wall clock of the whole run, backoff sleeps included.
    pub elapsed_seconds: f64,
    /// Time spent *sleeping* in retry backoff, summed over connections.
    /// Reported separately so transient faults show up as backoff, not
    /// as deflated throughput.
    pub backoff_seconds: f64,
    /// Request-loop wall clock: the busiest connection's loop time minus
    /// its own backoff sleeps — the denominator of [`throughput`].
    ///
    /// [`throughput`]: LoadgenReport::throughput
    pub request_seconds: f64,
}

impl LoadgenReport {
    /// Fraction of successful responses served from the plan cache.
    pub fn hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cached as f64 / self.ok as f64
        }
    }

    /// Completed requests per second of request-loop time. Backoff
    /// sleeps are excluded — they measure the fault injector (or the
    /// network), not the server; the run's total wall clock (sleeps
    /// included) stays visible in `elapsed_seconds`.
    pub fn throughput(&self) -> f64 {
        if self.request_seconds > 0.0 {
            self.total as f64 / self.request_seconds
        } else {
            0.0
        }
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests  : {} total | ok {} | cache_hit {} | shed {} | timeout {} | error {} | retries {}",
            self.total, self.ok, self.cached, self.shed, self.timeouts, self.errors, self.retries
        )?;
        writeln!(
            f,
            "latency   : p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
            self.p50_ms, self.p95_ms, self.p99_ms
        )?;
        writeln!(
            f,
            "cache     : {} cached responses ({:.0}% hit rate)",
            self.cached,
            100.0 * self.hit_rate()
        )?;
        if self.traced > 0 {
            writeln!(f, "tracing   : {} responses echoed a span", self.traced)?;
        }
        write!(
            f,
            "throughput: {:.1} req/s over {:.2} s of request time \
             ({:.2} s wall, {:.2} s retry backoff)",
            self.throughput(),
            self.request_seconds,
            self.elapsed_seconds,
            self.backoff_seconds
        )
    }
}

/// Deterministic pool of `n` request lines: small random chains (same
/// generator as the experiment harness) on a fixed 4-GPU platform,
/// sized so one plan takes milliseconds, not seconds.
pub fn request_lines(n: usize, seed: u64) -> Vec<String> {
    let platform = Platform::new(4, 2 * GIB, 12.0 * GIB as f64).expect("static platform");
    (0..n.max(1) as u64)
        .map(|i| {
            let cfg = madpipe_dnn::RandomChainConfig {
                layers: 8,
                forward_range: (0.5e-3, 5e-3),
                weight_range: (1 << 16, 1 << 20),
                activation_range: (1 << 20, 8 << 20),
                cnn_profile: false,
            };
            let chain = madpipe_dnn::random_chain(&cfg, seed.wrapping_add(i));
            Value::Object(vec![
                ("cmd".into(), Value::Str("plan".into())),
                ("chain".into(), chain.to_json()),
                (
                    "platform".into(),
                    Value::Object(vec![
                        ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                        ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                        ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
                    ]),
                ),
            ])
            .to_string_compact()
        })
        .collect()
}

/// One request/response exchange on an open connection.
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<Value, String> {
    exchange_batch(stream, reader, &[line]).map(|mut vs| vs.pop().expect("one response"))
}

/// A pipelined exchange: write every line of the batch, then read one
/// response per line. The serve reactor answers pipelined requests in
/// order, so response `i` belongs to line `i`.
fn exchange_batch(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    batch: &[&str],
) -> Result<Vec<Value>, String> {
    let mut payload = String::with_capacity(batch.iter().map(|l| l.len() + 1).sum());
    for line in batch {
        payload.push_str(line);
        payload.push('\n');
    }
    stream
        .write_all(payload.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut responses = Vec::with_capacity(batch.len());
    for _ in batch {
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".into());
        }
        responses
            .push(Value::parse(response.trim()).map_err(|e| format!("bad response JSON: {e}"))?);
    }
    Ok(responses)
}

/// SplitMix64 finalizer — the jitter source. Deterministic in its seed,
/// so two runs with the same config back off identically.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Backoff before retry `attempt` (1-based): exponential from 10 ms,
/// capped at 200 ms, jittered to 50–150% so retrying connections
/// don't reconnect in lockstep after a mass disconnect.
fn backoff(attempt: usize, jitter_seed: u64) -> Duration {
    let base_ms = (10u64 << (attempt - 1).min(8)).min(200);
    let jitter = 50 + mix(jitter_seed.wrapping_add(attempt as u64)) % 101; // percent
    Duration::from_millis(base_ms * jitter / 100)
}

/// A connected stream plus its buffered read half.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(cfg: &LoadgenConfig, addr: &str) -> Result<Conn, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    // A closed loop of one-line exchanges would spend its time in
    // Nagle/delayed-ACK stalls otherwise.
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(cfg.timeout))
        .map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    Ok(Conn { stream, reader })
}

/// One batch exchange with transient-failure retries. Both the connect
/// and the exchange may fail transiently (the server killed the
/// connection, a worker died mid-drain); each failure burns one retry,
/// backs off and reconnects, and the *whole batch* is replayed — with a
/// mid-batch failure there is no telling which responses were in flight,
/// and replays land on the server's plan cache anyway. Returns the
/// responses, how many retries it took, and the total backoff slept —
/// callers subtract the sleeps from their request-loop clock so
/// throughput measures the server, not the backoff schedule.
fn batch_with_retry(
    cfg: &LoadgenConfig,
    addr: &str,
    conn: &mut Option<Conn>,
    batch: &[&str],
    jitter_seed: u64,
) -> Result<(Vec<Value>, usize, Duration), String> {
    let mut retries = 0usize;
    let mut slept = Duration::ZERO;
    loop {
        let attempt: Result<Vec<Value>, String> = match conn {
            Some(c) => exchange_batch(&mut c.stream, &mut c.reader, batch),
            None => match connect(cfg, addr) {
                Ok(c) => {
                    let c = conn.insert(c);
                    exchange_batch(&mut c.stream, &mut c.reader, batch)
                }
                Err(e) => Err(e),
            },
        };
        match attempt {
            Ok(vs) => return Ok((vs, retries, slept)),
            Err(e) => {
                // The connection is in an unknown state; never reuse it.
                *conn = None;
                if retries >= cfg.max_retries {
                    return Err(format!("{e} (after {retries} retries)"));
                }
                retries += 1;
                let pause = backoff(retries, jitter_seed);
                slept += pause;
                std::thread::sleep(pause);
            }
        }
    }
}

/// Splice a root trace context into a request line: the request becomes
/// the root of a distributed trace, and every hop that serves it links
/// its spans to this id. Kept local (16-hex splice before the closing
/// brace) so the bench crate needs no serve dependency.
fn inject_trace(line: &str, id: u64) -> String {
    match line.strip_suffix('}') {
        Some(body) => format!("{body},\"trace\":\"{id:016x}\"}}"),
        None => line.to_string(),
    }
}

/// What one response was, for the report's outcome columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok { cached: bool },
    Shed,
    Timeout,
    Error,
}

/// Classify a structured response. Shed (`overloaded`, `unavailable`)
/// and `timeout` are the server's overload-control verdicts; everything
/// else that is not `ok` is a plain error.
fn classify(v: &Value) -> Outcome {
    if v.get("ok") == Some(&Value::Bool(true)) {
        return Outcome::Ok {
            cached: v.get("cached") == Some(&Value::Bool(true)),
        };
    }
    match v
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str().ok())
    {
        Some("overloaded") | Some("unavailable") => Outcome::Shed,
        Some("timeout") => Outcome::Timeout,
        _ => Outcome::Error,
    }
}

/// Per-connection tallies.
#[derive(Debug, Default)]
struct ConnStats {
    latencies: Vec<f64>,
    ok: usize,
    cached: usize,
    shed: usize,
    timeouts: usize,
    errors: usize,
    traced: usize,
    retries: usize,
    backoff_seconds: f64,
    loop_seconds: f64,
}

/// Run the load loop (closed or open) and aggregate the report.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.addrs.is_empty() {
        return Err("loadgen needs at least one address".into());
    }
    let lines = request_lines(cfg.instances, cfg.seed);
    let depth = cfg.pipeline_depth.max(1);
    // Open loop: this connection's share of the arrival schedule, in
    // seconds between consecutive requests.
    let interval = if cfg.rate > 0.0 {
        Some(cfg.connections.max(1) as f64 / cfg.rate)
    } else {
        None
    };
    let started = Instant::now();
    let per_conn: Vec<Result<ConnStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|conn| {
                let lines = &lines;
                scope.spawn(move || -> Result<ConnStats, String> {
                    let addr = &cfg.addrs[conn % cfg.addrs.len()];
                    let loop_started = Instant::now();
                    let mut open: Option<Conn> = Some(connect(cfg, addr)?);
                    let mut stats = ConnStats::default();
                    let mut retries = 0usize;
                    let mut slept = Duration::ZERO;
                    // With tracing on, every request instance gets its
                    // own root trace id — unique across connections —
                    // so merged traces never alias two requests.
                    let owned: Vec<String> = (0..cfg.requests_per_conn)
                        .map(|i| {
                            let line = &lines[(conn + i) % lines.len()];
                            if cfg.trace {
                                let id = mix(cfg.seed ^ ((conn as u64) << 40) ^ i as u64) | 1;
                                inject_trace(line, id)
                            } else {
                                line.clone()
                            }
                        })
                        .collect();
                    let sequence: Vec<&str> = owned.iter().map(String::as_str).collect();
                    for (b, batch) in sequence.chunks(depth).enumerate() {
                        let jitter_seed = mix(cfg.seed ^ ((conn as u64) << 32) ^ b as u64);
                        // Open loop: wait for the batch's scheduled slot
                        // (never hurry a late one), and measure each
                        // request from its *schedule* — a backlogged
                        // server pays the wait in recorded latency.
                        let scheduled: Option<Vec<Instant>> = interval.map(|dt| {
                            (0..batch.len())
                                .map(|i| {
                                    loop_started
                                        + Duration::from_secs_f64((b * depth + i) as f64 * dt)
                                })
                                .collect()
                        });
                        if let Some(first) = scheduled.as_ref().and_then(|s| s.first()) {
                            let now = Instant::now();
                            if *first > now {
                                std::thread::sleep(*first - now);
                            }
                        }
                        let t0 = Instant::now();
                        let (vs, r, s) =
                            batch_with_retry(cfg, addr, &mut open, batch, jitter_seed)?;
                        let done = Instant::now();
                        // Closed loop: amortized per-request latency (the
                        // batch round trip shared evenly across it).
                        let per_request = (done - t0).as_secs_f64() * 1e3 / batch.len() as f64;
                        retries += r;
                        slept += s;
                        for (i, v) in vs.iter().enumerate() {
                            let ms = match &scheduled {
                                Some(s) => (done - s[i].min(done)).as_secs_f64() * 1e3,
                                None => per_request,
                            };
                            stats.latencies.push(ms);
                            match classify(v) {
                                Outcome::Ok { cached } => {
                                    stats.ok += 1;
                                    stats.cached += usize::from(cached);
                                }
                                Outcome::Shed => stats.shed += 1,
                                Outcome::Timeout => stats.timeouts += 1,
                                Outcome::Error => stats.errors += 1,
                            }
                            if v.get("span").and_then(|s| s.as_str().ok()).is_some() {
                                stats.traced += 1;
                            }
                        }
                    }
                    stats.retries = retries;
                    stats.backoff_seconds = slept.as_secs_f64();
                    stats.loop_seconds = loop_started.elapsed().as_secs_f64();
                    Ok(stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut report = LoadgenReport {
        elapsed_seconds,
        ..LoadgenReport::default()
    };
    for outcome in per_conn {
        let stats = outcome?;
        report.total += stats.latencies.len();
        latencies.extend(stats.latencies);
        report.ok += stats.ok;
        report.cached += stats.cached;
        report.shed += stats.shed;
        report.timeouts += stats.timeouts;
        report.errors += stats.errors;
        report.traced += stats.traced;
        report.retries += stats.retries;
        report.backoff_seconds += stats.backoff_seconds;
        // The run is as long as its busiest connection's sleep-free loop.
        report.request_seconds = report
            .request_seconds
            .max(stats.loop_seconds - stats.backoff_seconds);
    }
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    report.p50_ms = pct(0.50);
    report.p95_ms = pct(0.95);
    report.p99_ms = pct(0.99);
    Ok(report)
}

/// Committed serve-throughput baseline — the `BENCH_serve_speed.json`
/// file CI gates on. The floor a run must clear is
/// `max(abs_grace_rps, rps * rel_factor)`: relative to the committed
/// measurement so real regressions trip it, with an absolute grace so a
/// slow shared CI runner doesn't.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpeedBaseline {
    /// Committed throughput of the reference run, requests per second.
    pub rps: f64,
    /// Fraction of `rps` a run must reach (e.g. 0.05 = 5%).
    pub rel_factor: f64,
    /// Absolute floor that always applies, requests per second.
    pub abs_grace_rps: f64,
}

impl ServeSpeedBaseline {
    /// Parse the committed JSON, e.g.
    /// `{"rps": 9000.0, "rel_factor": 0.05, "abs_grace_rps": 150.0}`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text.trim()).map_err(|e| format!("baseline JSON: {e}"))?;
        let field = |name: &str| -> Result<f64, String> {
            let x = v
                .field(name)
                .and_then(Value::as_f64)
                .map_err(|e| format!("baseline field {name}: {e}"))?;
            if x.is_finite() && x >= 0.0 {
                Ok(x)
            } else {
                Err(format!(
                    "baseline field {name}: not a finite non-negative number"
                ))
            }
        };
        Ok(Self {
            rps: field("rps")?,
            rel_factor: field("rel_factor")?,
            abs_grace_rps: field("abs_grace_rps")?,
        })
    }

    /// Load and parse the committed baseline file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Self::parse(&text)
    }

    /// The throughput a run must reach, requests per second.
    pub fn floor(&self) -> f64 {
        (self.rps * self.rel_factor).max(self.abs_grace_rps)
    }

    /// Gate a report against the floor. `Ok` carries a human-readable
    /// verdict line; `Err` the failure message. Both record the run's
    /// outcome breakdown, so a floor pass that leaned on shed or
    /// timed-out responses is visible in the gate's own output.
    pub fn check(&self, report: &LoadgenReport) -> Result<String, String> {
        let got = report.throughput();
        let floor = self.floor();
        let split = format!(
            "[ok {} | cache_hit {} | shed {} | timeout {} | error {}]",
            report.ok, report.cached, report.shed, report.timeouts, report.errors
        );
        if got >= floor {
            Ok(format!(
                "throughput floor ok: {got:.1} req/s >= {floor:.1} req/s \
                 (baseline {:.1} x {:.2}, grace {:.1}) {split}",
                self.rps, self.rel_factor, self.abs_grace_rps
            ))
        } else {
            Err(format!(
                "throughput {got:.1} req/s below the floor {floor:.1} req/s \
                 (baseline {:.1} x {:.2}, grace {:.1}) {split}",
                self.rps, self.rel_factor, self.abs_grace_rps
            ))
        }
    }
}

/// Fetch the server's Prometheus dump via the `metrics` command.
pub fn fetch_metrics(addr: &str, timeout: Duration) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let v = exchange(&mut stream, &mut reader, r#"{"cmd":"metrics"}"#)?;
    v.field("metrics")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .map_err(|e| format!("metrics response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_pool_is_deterministic_and_parseable() {
        let a = request_lines(3, 7);
        let b = request_lines(3, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1], "instances differ");
        for line in &a {
            let v = Value::parse(line).unwrap();
            assert_eq!(v.field("cmd").unwrap().as_str(), Ok("plan"));
            assert!(v.get("chain").is_some() && v.get("platform").is_some());
        }
    }

    #[test]
    fn report_rates() {
        // 10 requests over 2.5 s wall, of which 0.5 s was backoff sleep:
        // throughput uses the 2 s request-loop denominator, not the wall.
        let r = LoadgenReport {
            total: 10,
            ok: 6,
            errors: 1,
            shed: 2,
            timeouts: 1,
            cached: 3,
            traced: 10,
            retries: 3,
            p50_ms: 1.0,
            p95_ms: 1.5,
            p99_ms: 2.0,
            elapsed_seconds: 2.5,
            backoff_seconds: 0.5,
            request_seconds: 2.0,
        };
        assert_eq!(r.hit_rate(), 0.5);
        assert_eq!(r.throughput(), 5.0);
        let text = r.to_string();
        assert!(text.contains("p50 1.00 ms"), "{text}");
        assert!(text.contains("p95 1.50 ms"), "{text}");
        assert!(text.contains("50% hit rate"), "{text}");
        assert!(text.contains("shed 2"), "{text}");
        assert!(text.contains("timeout 1"), "{text}");
        assert!(text.contains("error 1"), "{text}");
        assert!(text.contains("retries 3"), "{text}");
        assert!(text.contains("0.50 s retry backoff"), "{text}");
        assert!(text.contains("2.50 s wall"), "{text}");
        assert!(text.contains("10 responses echoed a span"), "{text}");
        let untraced = LoadgenReport::default().to_string();
        assert!(
            !untraced.contains("tracing"),
            "no tracing line without traced responses: {untraced}"
        );
    }

    #[test]
    fn responses_classify_into_outcome_columns() {
        let case = |text: &str| classify(&Value::parse(text).unwrap());
        assert_eq!(
            case(r#"{"ok":true,"cached":true}"#),
            Outcome::Ok { cached: true }
        );
        assert_eq!(
            case(r#"{"ok":true,"cached":false}"#),
            Outcome::Ok { cached: false }
        );
        assert_eq!(
            case(r#"{"ok":false,"error":{"kind":"overloaded","message":"m"}}"#),
            Outcome::Shed
        );
        assert_eq!(
            case(r#"{"ok":false,"error":{"kind":"unavailable","message":"m"}}"#),
            Outcome::Shed
        );
        assert_eq!(
            case(r#"{"ok":false,"error":{"kind":"timeout","message":"m"}}"#),
            Outcome::Timeout
        );
        assert_eq!(
            case(r#"{"ok":false,"error":{"kind":"internal","message":"m"}}"#),
            Outcome::Error
        );
        assert_eq!(case(r#"{"ok":false}"#), Outcome::Error);
    }

    #[test]
    fn trace_injection_splices_a_valid_hex_root() {
        let line = r#"{"cmd":"ping"}"#;
        let traced = inject_trace(line, 0xabcd);
        let v = Value::parse(&traced).unwrap();
        assert_eq!(v.field("cmd").unwrap().as_str(), Ok("ping"));
        assert_eq!(v.field("trace").unwrap().as_str(), Ok("000000000000abcd"));
        // Every request line in the pool is injectable.
        for line in request_lines(2, 9) {
            assert!(Value::parse(&inject_trace(&line, 7)).is_ok());
        }
    }

    #[test]
    fn throughput_excludes_backoff_sleeps() {
        // Same work, one run with a second of backoff: identical
        // throughput, different wall clock.
        let clean = LoadgenReport {
            total: 100,
            request_seconds: 10.0,
            elapsed_seconds: 10.0,
            ..LoadgenReport::default()
        };
        let faulted = LoadgenReport {
            total: 100,
            retries: 5,
            request_seconds: 10.0,
            elapsed_seconds: 11.0,
            backoff_seconds: 1.0,
            ..LoadgenReport::default()
        };
        assert_eq!(clean.throughput(), faulted.throughput());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        for attempt in 1..=12usize {
            let a = backoff(attempt, 7);
            assert_eq!(a, backoff(attempt, 7), "same seed, same delay");
            // 50–150% of a 10 ms..200 ms exponential window.
            assert!(a >= Duration::from_millis(5), "attempt {attempt}: {a:?}");
            assert!(a <= Duration::from_millis(300), "attempt {attempt}: {a:?}");
        }
        assert_ne!(
            backoff(1, 1),
            backoff(1, 2),
            "different seeds should (here) jitter apart"
        );
    }

    #[test]
    fn transient_eof_is_retried_and_counted() {
        use std::io::BufRead;
        use std::net::TcpListener;

        // A server that kills the first connection mid-request and
        // answers on the second: the loadgen must retry and succeed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first); // EOF before any response
            let (mut second, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(second.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            second
                .write_all(b"{\"ok\":true,\"cached\":false}\n")
                .unwrap();
        });

        let cfg = LoadgenConfig {
            addrs: vec![addr.to_string()],
            max_retries: 2,
            timeout: Duration::from_secs(5),
            ..LoadgenConfig::default()
        };
        let target = cfg.addrs[0].clone();
        let mut conn = Some(connect(&cfg, &target).unwrap());
        let (vs, retries, slept) =
            batch_with_retry(&cfg, &target, &mut conn, &[r#"{"cmd":"ping"}"#], 3).unwrap();
        assert_eq!(vs[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(retries, 1, "one EOF, one retry");
        assert_eq!(slept, backoff(1, 3), "the one retry's backoff is reported");
        server.join().unwrap();
    }

    #[test]
    fn retries_exhaust_into_an_error() {
        // Nothing listens on this address (bind, learn the port, drop).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = LoadgenConfig {
            addrs: vec![addr.clone()],
            max_retries: 1,
            timeout: Duration::from_secs(1),
            ..LoadgenConfig::default()
        };
        let mut conn = None;
        let err = batch_with_retry(&cfg, &addr, &mut conn, &[r#"{"cmd":"ping"}"#], 3).unwrap_err();
        assert!(err.contains("after 1 retries"), "{err}");
    }

    #[test]
    fn pipelined_batch_keeps_responses_in_order() {
        use std::io::Read;
        use std::net::TcpListener;

        // A server that reads the whole 3-line batch before answering —
        // only a client that really pipelines (writes all lines up
        // front) gets responses at all — then replies tagged by index.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            while buf.iter().filter(|&&b| b == b'\n').count() < 3 {
                let mut chunk = [0u8; 256];
                let n = s.read(&mut chunk).unwrap();
                assert!(n > 0, "client must have pipelined all 3 lines");
                buf.extend_from_slice(&chunk[..n]);
            }
            assert_eq!(std::str::from_utf8(&buf).unwrap().lines().count(), 3);
            for i in 0..3 {
                s.write_all(format!("{{\"ok\":true,\"seq\":{i}}}\n").as_bytes())
                    .unwrap();
            }
        });

        let cfg = LoadgenConfig {
            addrs: vec![addr.to_string()],
            timeout: Duration::from_secs(5),
            ..LoadgenConfig::default()
        };
        let target = cfg.addrs[0].clone();
        let mut conn = Some(connect(&cfg, &target).unwrap());
        let batch = [r#"{"cmd":"a"}"#, r#"{"cmd":"b"}"#, r#"{"cmd":"c"}"#];
        let (vs, retries, _) = batch_with_retry(&cfg, &target, &mut conn, &batch, 3).unwrap();
        assert_eq!(retries, 0);
        let seqs: Vec<_> = vs.iter().map(|v| v.field("seq").unwrap().clone()).collect();
        assert_eq!(
            seqs,
            vec![Value::UInt(0), Value::UInt(1), Value::UInt(2)],
            "responses must come back in request order"
        );
        server.join().unwrap();
    }

    #[test]
    fn open_loop_paces_arrivals_and_charges_backlog_to_latency() {
        use std::io::BufRead;
        use std::net::TcpListener;

        // A server that takes 25 ms per response: a closed loop would
        // record ~25 ms for every request, silently omitting the queue
        // that builds when arrivals outpace service. The open loop fires
        // on schedule (4x faster than the server drains) and measures
        // from the schedule, so the backlog must show up as growing
        // recorded latency.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            for _ in 0..8 {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap() == 0 {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
                s.write_all(b"{\"ok\":true,\"cached\":false}\n").unwrap();
            }
        });

        let cfg = LoadgenConfig {
            addrs: vec![addr.to_string()],
            connections: 1,
            requests_per_conn: 8,
            rate: 160.0, // schedule: one request every 6.25 ms
            timeout: Duration::from_secs(5),
            ..LoadgenConfig::default()
        };
        let report = run(&cfg).unwrap();
        server.join().unwrap();
        assert_eq!(report.total, 8);
        assert_eq!(report.ok, 8);
        // The last arrival was scheduled at ~44 ms but answered at
        // ~200 ms: far beyond the 25 ms service time. With coordinated
        // omission the p99 would sit at ~25 ms; corrected it must not.
        assert!(
            report.p99_ms > 60.0,
            "open-loop p99 must include queueing delay, got {:.2} ms",
            report.p99_ms
        );
        assert!(
            report.p50_ms > report.p99_ms / 10.0,
            "latencies should grow with the backlog: p50 {:.2} p99 {:.2}",
            report.p50_ms,
            report.p99_ms
        );
    }

    #[test]
    fn speed_baseline_parses_and_gates() {
        let base =
            ServeSpeedBaseline::parse(r#"{"rps": 1000.0, "rel_factor": 0.1, "abs_grace_rps": 50}"#)
                .unwrap();
        assert_eq!(base.floor(), 100.0, "relative term dominates");
        let grace = ServeSpeedBaseline {
            rps: 100.0,
            ..base.clone()
        };
        assert_eq!(
            grace.floor(),
            50.0,
            "absolute grace dominates a tiny baseline"
        );

        let fast = LoadgenReport {
            total: 1000,
            request_seconds: 5.0,
            ..LoadgenReport::default()
        };
        assert!(base.check(&fast).unwrap().contains("floor ok"));
        let slow = LoadgenReport {
            total: 100,
            request_seconds: 5.0,
            ..LoadgenReport::default()
        };
        let err = base.check(&slow).unwrap_err();
        assert!(err.contains("below the floor"), "{err}");

        assert!(ServeSpeedBaseline::parse("{}").is_err(), "missing fields");
        assert!(
            ServeSpeedBaseline::parse(r#"{"rps": -1, "rel_factor": 0.1, "abs_grace_rps": 0}"#)
                .is_err(),
            "negative rps rejected"
        );
    }
}
