//! Analytic DNN profiling: the substitute for the paper's PyTorch
//! profiling step.
//!
//! The MadPipe algorithms consume only per-layer vectors
//! `(u_F, u_B, W, a)`. The paper measures them on a real GPU; this crate
//! *computes* them instead:
//!
//! * [`tensor`]/[`ops`] — exact tensor shapes, parameter counts and FLOP
//!   counts of the standard building blocks (convolutions, batch norm,
//!   pooling, linear);
//! * [`cost`] — a roofline-style GPU cost model converting FLOPs and
//!   bytes touched into forward/backward durations;
//! * [`block`] — branchy blocks (residual sums, inception/dense
//!   concatenations) collapsed into single chain nodes: the greedy
//!   linearization PipeDream and the paper both apply;
//! * [`networks`] — ResNet-50/101, Inception-v3 and DenseNet-121 at any
//!   image size and batch size (the paper uses 1000×1000, batch 8);
//! * [`synthetic`] — seeded random chains for tests and benchmarks;
//! * [`profile`] — JSON persistence of profiled chains, so externally
//!   measured profiles can be dropped in.

pub mod block;
pub mod coarsen;
pub mod cost;
pub mod networks;
pub mod ops;
pub mod profile;
pub mod synthetic;
pub mod tensor;

pub use block::{Block, BranchPath, Merge};
pub use coarsen::coarsen;
pub use cost::GpuModel;
pub use networks::{densenet121, inception_v3, resnet101, resnet152, resnet50, vgg16, NetworkSpec};
pub use ops::Op;
pub use synthetic::{random_chain, RandomChainConfig};
pub use tensor::TensorShape;
