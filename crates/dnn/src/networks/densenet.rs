//! DenseNet-121 (Huang et al.), torchvision layout: growth rate 32,
//! bottleneck size 4, dense blocks of 6/12/24/16 layers.
//!
//! Each dense layer concatenates its 32-channel output onto the running
//! feature map; one dense layer = one chain node (identity path +
//! bottleneck path merged by concatenation), which is exactly the greedy
//! block linearization.

use crate::block::Block;
use crate::ops::Op;

use super::NetworkSpec;

const GROWTH: u64 = 32;
const BN_SIZE: u64 = 4;

/// One dense layer: `BN → ReLU → 1×1(4k) → BN → ReLU → 3×3(k)`,
/// concatenated with its input.
fn dense_layer(name: String) -> Block {
    Block::concat(
        name,
        vec![
            vec![], // identity: the running feature map passes through
            vec![
                Op::BatchNorm,
                Op::Relu,
                Op::conv1x1(BN_SIZE * GROWTH),
                Op::BatchNorm,
                Op::Relu,
                Op::conv3x3(GROWTH, 1),
            ],
        ],
    )
}

/// Transition: halve channels with a `1×1` conv, halve spatial with
/// `2×2` average pooling.
fn transition(name: String, out_ch: u64) -> Block {
    Block::seq(
        name,
        vec![
            Op::BatchNorm,
            Op::Relu,
            Op::conv1x1(out_ch),
            Op::AvgPool {
                kernel: 2,
                stride: 2,
                padding: 0,
            },
        ],
    )
}

/// DenseNet-121.
pub fn densenet121() -> NetworkSpec {
    let mut blocks = Vec::new();
    blocks.push(Block::seq(
        "conv0",
        vec![Op::conv(64, 7, 2, 3), Op::BatchNorm, Op::Relu],
    ));
    blocks.push(Block::seq(
        "pool0",
        vec![Op::MaxPool {
            kernel: 3,
            stride: 2,
            padding: 1,
        }],
    ));
    let mut channels = 64u64;
    for (bi, &n_layers) in [6usize, 12, 24, 16].iter().enumerate() {
        for li in 0..n_layers {
            blocks.push(dense_layer(format!("dense{}_{}", bi + 1, li + 1)));
            channels += GROWTH;
        }
        if bi < 3 {
            channels /= 2;
            blocks.push(transition(format!("transition{}", bi + 1), channels));
        }
    }
    blocks.push(Block::seq(
        "head",
        vec![
            Op::BatchNorm,
            Op::Relu,
            Op::GlobalAvgPool,
            Op::Linear { out_features: 1000 },
        ],
    ));
    NetworkSpec {
        name: "densenet121".to_string(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorShape;

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision densenet121: ≈ 7.98 M parameters.
        let net = densenet121();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut params = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            params += p.params;
            shape = p.output;
        }
        let millions = params as f64 / 1e6;
        assert!(
            (millions - 7.98).abs() < 0.3,
            "densenet121 params {millions:.2} M, expected ≈ 7.98 M"
        );
        assert_eq!(shape, TensorShape::new(1, 1000, 1, 1));
    }

    #[test]
    fn channel_bookkeeping_follows_the_dense_pattern() {
        let net = densenet121();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut channels = Vec::new();
        for b in &net.blocks {
            shape = b.evaluate(shape).output;
            channels.push(shape.c);
        }
        // After block1 (6 layers): 64 + 192 = 256 → transition → 128;
        // block2: 128 + 384 = 512 → 256; block3: 256+768=1024 → 512;
        // block4: 512+512 = 1024.
        assert_eq!(channels[1 + 6], 256); // before transition1
        assert_eq!(channels[2 + 6], 128);
        assert_eq!(channels[2 + 6 + 12], 512);
        assert_eq!(channels[3 + 6 + 12], 256);
        assert_eq!(channels[3 + 6 + 12 + 24], 1024);
        assert_eq!(channels[4 + 6 + 12 + 24], 512);
        assert_eq!(channels[4 + 6 + 12 + 24 + 16], 1024);
    }

    #[test]
    fn chain_length_is_sixty_four() {
        // 2 stem + 58 dense + 3 transitions + 1 head.
        assert_eq!(densenet121().len(), 64);
    }
}
