//! Contiguous partitionings of the chain into stages.

use std::ops::Range;

use crate::chain::Chain;
use crate::error::ModelError;
use crate::platform::Platform;

/// A *partitioning* of the chain: an ordered collection of stages, each a
/// contiguous, non-empty set of layers, jointly covering `0..L`.
///
/// A partition says nothing about placement; see
/// [`crate::Allocation`] for stage→GPU assignments. A partition with at
/// most `P` stages is *contiguous* in the paper's sense (one stage per
/// GPU, in order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    stages: Vec<Range<usize>>,
}

impl Partition {
    /// Build a partition and verify it covers `0..n_layers`.
    pub fn new(stages: Vec<Range<usize>>, n_layers: usize) -> Result<Self, ModelError> {
        if stages.is_empty() {
            return Err(ModelError::BadCover {
                detail: "no stages".into(),
            });
        }
        let mut cursor = 0usize;
        for (i, s) in stages.iter().enumerate() {
            if s.start != cursor {
                return Err(ModelError::BadCover {
                    detail: format!(
                        "stage {i} starts at {} but previous ended at {cursor}",
                        s.start
                    ),
                });
            }
            if s.end <= s.start {
                return Err(ModelError::BadCover {
                    detail: format!("stage {i} is empty ({}..{})", s.start, s.end),
                });
            }
            cursor = s.end;
        }
        if cursor != n_layers {
            return Err(ModelError::BadCover {
                detail: format!("stages end at {cursor}, chain has {n_layers} layers"),
            });
        }
        Ok(Self { stages })
    }

    /// Partition from cut points: `cuts` are the layer indices where a new
    /// stage begins (excluding 0). E.g. `from_cuts(&[2, 5], 7)` yields
    /// stages `[0,2) [2,5) [5,7)`.
    pub fn from_cuts(cuts: &[usize], n_layers: usize) -> Result<Self, ModelError> {
        let mut stages = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &c in cuts {
            stages.push(start..c);
            start = c;
        }
        stages.push(start..n_layers);
        Self::new(stages, n_layers)
    }

    /// The whole chain as a single stage.
    pub fn single(n_layers: usize) -> Self {
        Self {
            stages: std::iter::once(0..n_layers).collect(),
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True iff there are no stages (never true for a validated partition).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages, in chain order.
    pub fn stages(&self) -> &[Range<usize>] {
        &self.stages
    }

    /// Stage at index `i`.
    pub fn stage(&self, i: usize) -> Range<usize> {
        self.stages[i].clone()
    }

    /// Cut points (start of every stage except the first).
    pub fn cuts(&self) -> Vec<usize> {
        self.stages.iter().skip(1).map(|s| s.start).collect()
    }

    /// Maximum stage compute load `max_s U(s)` — with a cut-free schedule
    /// this lower-bounds the period of any schedule of this partition.
    pub fn max_stage_compute(&self, chain: &Chain) -> f64 {
        self.stages
            .iter()
            .map(|s| chain.compute_time(s.clone()))
            .fold(0.0, f64::max)
    }

    /// Maximum per-resource load when each stage sits on its own GPU:
    /// the max over stage compute times and inter-stage cut times. This
    /// is the *period of the allocation* in the paper's sense (the period
    /// achievable if memory constraints were ignored).
    pub fn load_bound(&self, chain: &Chain, platform: &Platform) -> f64 {
        let compute = self.max_stage_compute(chain);
        let comm = self
            .stages
            .iter()
            .skip(1)
            .map(|s| platform.cut_time(chain, s.start))
            .fold(0.0, f64::max);
        compute.max(comm)
    }

    /// Enumerate all partitions of `n_layers` layers into exactly
    /// `n_stages` stages (for brute-force testing on small chains).
    pub fn enumerate(n_layers: usize, n_stages: usize) -> Vec<Partition> {
        let mut out = Vec::new();
        if n_stages == 0 || n_stages > n_layers {
            return out;
        }
        let mut cuts = Vec::with_capacity(n_stages - 1);
        fn rec(
            next: usize,
            remaining: usize,
            n_layers: usize,
            cuts: &mut Vec<usize>,
            out: &mut Vec<Partition>,
        ) {
            if remaining == 0 {
                out.push(Partition::from_cuts(cuts, n_layers).expect("valid by construction"));
                return;
            }
            // need `remaining` more cuts strictly increasing, each < n_layers
            for c in next..=(n_layers - remaining) {
                cuts.push(c);
                rec(c + 1, remaining - 1, n_layers, cuts, out);
                cuts.pop();
            }
        }
        rec(1, n_stages - 1, n_layers, &mut cuts, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn chain4() -> Chain {
        Chain::new(
            "t",
            10,
            vec![
                Layer::new("a", 1.0, 1.0, 0, 10),
                Layer::new("b", 2.0, 2.0, 0, 20),
                Layer::new("c", 3.0, 3.0, 0, 30),
                Layer::new("d", 4.0, 4.0, 0, 40),
            ],
        )
        .unwrap()
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // a one-stage cover is the point
    fn validation_catches_gaps_overlaps_and_short_cover() {
        assert!(Partition::new(vec![0..2, 2..4], 4).is_ok());
        assert!(Partition::new(vec![0..2, 3..4], 4).is_err()); // gap
        assert!(Partition::new(vec![0..3, 2..4], 4).is_err()); // overlap
        assert!(Partition::new(vec![0..2], 4).is_err()); // short
        assert!(Partition::new(vec![0..0, 0..4], 4).is_err()); // empty stage
        assert!(Partition::new(vec![], 4).is_err());
    }

    #[test]
    fn from_cuts_builds_expected_stages() {
        let p = Partition::from_cuts(&[2, 3], 4).unwrap();
        assert_eq!(p.stages(), &[0..2, 2..3, 3..4]);
        assert_eq!(p.cuts(), vec![2, 3]);
    }

    #[test]
    fn load_bound_takes_comm_into_account() {
        let c = chain4();
        let slow_net = Platform::new(2, 1 << 30, 1.0).unwrap();
        let p = Partition::from_cuts(&[2], 4).unwrap();
        // compute loads: 6 and 14; cut before layer 2 carries a_1=20 → 40s
        assert_eq!(p.max_stage_compute(&c), 14.0);
        assert_eq!(p.load_bound(&c, &slow_net), 40.0);
    }

    #[test]
    fn enumerate_counts_binomials() {
        // C(3,1) = 3 ways to split 4 layers into 2 stages
        assert_eq!(Partition::enumerate(4, 2).len(), 3);
        // C(3,2) = 3 ways into 3 stages
        assert_eq!(Partition::enumerate(4, 3).len(), 3);
        assert_eq!(Partition::enumerate(4, 4).len(), 1);
        assert_eq!(Partition::enumerate(4, 5).len(), 0);
        assert_eq!(Partition::enumerate(4, 0).len(), 0);
        for p in Partition::enumerate(5, 3) {
            assert_eq!(p.len(), 3);
        }
    }
}
