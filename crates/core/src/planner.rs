//! End-to-end planning: MadPipe (phase 1 + phase 2) and the side-by-side
//! comparison against the PipeDream baseline used by the experiments.

use madpipe_model::{Chain, Platform};
use madpipe_schedule::ScheduleError;
use madpipe_solver::{best_period, PlaceConfig, SolvedSchedule};

use crate::algorithm1::{madpipe_allocation, Algorithm1Config, Algorithm1Outcome};

/// Tuning for the whole MadPipe pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Phase-1 (Algorithm 1 + DP discretization) parameters.
    pub algorithm1: Algorithm1Config,
    /// Phase-2 (branch-and-bound scheduler) parameters.
    pub place: PlaceConfig,
    /// Extra refinement probes: after the bisection, this many targets on
    /// a geometric grid between the load lower bound and the best
    /// achieved period are probed and scheduled. Algorithm 1's bisection
    /// steers by phase-1 *estimates*; because the special processor is
    /// deliberately under-estimated (§4.2.1), the estimate-optimal corner
    /// is not always the achieved-optimal one, and a coarse grid over
    /// achieved periods recovers it. `0` disables refinement (pure
    /// Algorithm 1 probe selection).
    pub refine_probes: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            algorithm1: Algorithm1Config::default(),
            place: PlaceConfig::default(),
            refine_probes: 8,
        }
    }
}

/// Why MadPipe failed to produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Phase 1 found no memory-feasible allocation at any target period.
    Phase1Infeasible,
    /// Phase 2 could not schedule the phase-1 allocation at any period.
    Phase2(ScheduleError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Phase1Infeasible => {
                write!(f, "no memory-feasible allocation at any target period")
            }
            PlanError::Phase2(e) => write!(f, "phase-1 allocation unschedulable: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A complete MadPipe plan.
#[derive(Debug, Clone)]
pub struct MadPipePlan {
    /// Phase-1 outcome: the best-estimate allocation and its optimistic
    /// period (the dashed MadPipe line of Figure 6).
    pub phase1: Algorithm1Outcome,
    /// The allocation actually scheduled — the probe whose phase-2
    /// schedule achieved the smallest valid period.
    pub allocation: madpipe_model::Allocation,
    /// The valid schedule found by phase 2 (the solid line).
    pub schedule: SolvedSchedule,
}

impl MadPipePlan {
    /// Achieved (valid) period.
    pub fn period(&self) -> f64 {
        self.schedule.period
    }

    /// Throughput in mini-batches per second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.schedule.period
    }

    /// Achieved period over the phase-1 estimate (≥ 1 means phase 1 was
    /// optimistic; the paper reports MadPipe's dashed and solid lines
    /// nearly coincide).
    pub fn optimism_ratio(&self) -> f64 {
        self.schedule.period / self.phase1.period
    }
}

/// Run the full MadPipe pipeline.
///
/// Phase 2 schedules every distinct allocation Algorithm 1 probed (best
/// estimate first) and keeps the smallest *achieved* period: the special
/// processor's deliberate `g−1` memory under-estimate makes individual
/// probes optimistic, and the probe that schedules closest to its
/// estimate is the right one to ship.
pub fn madpipe_plan(
    chain: &Chain,
    platform: &Platform,
    cfg: &PlannerConfig,
) -> Result<MadPipePlan, PlanError> {
    let phase1 =
        madpipe_allocation(chain, platform, &cfg.algorithm1).ok_or(PlanError::Phase1Infeasible)?;
    let mut best: Option<(madpipe_model::Allocation, SolvedSchedule)> = None;
    let mut last_err: Option<ScheduleError> = None;
    let consider = |alloc: &madpipe_model::Allocation,
                        best: &mut Option<(madpipe_model::Allocation, SolvedSchedule)>,
                        last_err: &mut Option<ScheduleError>| {
        if let Some((a, _)) = best {
            if a == alloc {
                return;
            }
        }
        // Contiguous allocations schedule exactly via 1F1B*; everything
        // else goes through the branch-and-bound solver.
        let solved: Result<SolvedSchedule, ScheduleError> = if alloc.is_contiguous() {
            madpipe_schedule::best_contiguous_period(chain, platform, alloc).map(|b| {
                SolvedSchedule {
                    period: b.period,
                    pattern: b.pattern,
                    report: b.report,
                }
            })
        } else {
            best_period(chain, platform, alloc, &cfg.place)
        };
        match solved {
            Ok(s) => {
                if best.as_ref().is_none_or(|(_, b)| s.period < b.period) {
                    *best = Some((alloc.clone(), s));
                }
            }
            Err(e) => *last_err = Some(e),
        }
    };
    for alloc in phase1.candidate_allocations() {
        consider(alloc, &mut best, &mut last_err);
    }

    // Memory-aware contiguous fallback: the same DP without the special
    // processor. Its allocations schedule exactly at their 1F1B* optimum,
    // so it rescues instances where every special-processor probe is
    // over-optimistic; it is also the ablation baseline.
    if cfg.algorithm1.use_special {
        let contiguous_cfg = Algorithm1Config {
            use_special: false,
            ..cfg.algorithm1
        };
        if let Some(c) = madpipe_allocation(chain, platform, &contiguous_cfg) {
            for alloc in c.candidate_allocations() {
                consider(alloc, &mut best, &mut last_err);
            }
        }
    }

    // Refinement: probe extra targets between the load lower bound and
    // the best achieved period, selecting by achieved period.
    if let Some((_, s)) = &best {
        let lb = chain.total_compute_time() / platform.n_gpus as f64;
        let hi = s.period * 1.02;
        if cfg.refine_probes > 0 && hi > lb {
            let ratio = (hi / lb).powf(1.0 / cfg.refine_probes as f64);
            let mut seen: Vec<f64> = phase1.probes.iter().map(|p| p.t_hat).collect();
            for i in 0..=cfg.refine_probes {
                let t_hat = lb * ratio.powi(i as i32);
                if seen
                    .iter()
                    .any(|&t| (t - t_hat).abs() < 1e-6 * t_hat.max(1e-12))
                {
                    continue;
                }
                seen.push(t_hat);
                let out = crate::dp::madpipe_dp(chain, platform, t_hat, &cfg.algorithm1.discretization);
                if let Some(alloc) = out.allocation {
                    consider(&alloc, &mut best, &mut last_err);
                }
            }
        }
    }

    match best {
        Some((allocation, schedule)) => Ok(MadPipePlan {
            phase1,
            allocation,
            schedule,
        }),
        None => Err(PlanError::Phase2(last_err.expect(
            "candidate_allocations is non-empty when phase 1 succeeds",
        ))),
    }
}

/// Both planners on one instance (one cell of the paper's figures).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// MadPipe plan (or failure).
    pub madpipe: Result<MadPipePlan, PlanError>,
    /// PipeDream baseline plan (or failure).
    pub pipedream: Result<madpipe_pipedream::PipeDreamPlan, madpipe_pipedream::PlanError>,
}

impl Comparison {
    /// PipeDream period / MadPipe period (> 1 means MadPipe wins), when
    /// both produced plans.
    pub fn ratio(&self) -> Option<f64> {
        match (&self.madpipe, &self.pipedream) {
            (Ok(m), Ok(p)) => Some(p.period() / m.period()),
            _ => None,
        }
    }
}

/// Run MadPipe and PipeDream side by side.
pub fn compare(chain: &Chain, platform: &Platform, cfg: &PlannerConfig) -> Comparison {
    Comparison {
        madpipe: madpipe_plan(chain, platform, cfg),
        pipedream: madpipe_pipedream::pipedream_plan(chain, platform),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn plan_produces_a_valid_schedule() {
        let c = chain(&[(1.0, 2.0), (2.0, 1.0), (3.0, 2.0), (1.0, 1.0)], 1 << 10, 1 << 8);
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let plan = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap();
        assert!(plan.period() > 0.0);
        assert!(plan.throughput() > 0.0);
        // The valid schedule can be slower but never faster than the
        // load bound of its own allocation.
        let lb = plan.phase1.allocation.load_bound(&c, &platform);
        assert!(plan.period() + 1e-9 >= lb);
    }

    #[test]
    fn madpipe_not_worse_than_pipedream_on_imbalanced_chain() {
        // The {0,2} vs {1} balance needs the special processor.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 16, 0);
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let cmp = compare(&c, &platform, &PlannerConfig::default());
        let ratio = cmp.ratio().expect("both must plan");
        assert!(
            ratio >= 1.0 - 1e-6,
            "PipeDream/MadPipe ratio {ratio} < 1 on a special-friendly instance"
        );
        assert!(ratio > 1.2, "expected a clear MadPipe win, ratio {ratio}");
    }

    #[test]
    fn infeasible_instances_error_cleanly() {
        let c = chain(&[(1.0, 1.0)], 1 << 30, 1 << 28);
        let platform = Platform::new(2, 1 << 12, 1e6).unwrap();
        let err = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap_err();
        assert_eq!(err, PlanError::Phase1Infeasible);
    }
}
