//! Memory-wall study: sweep the per-GPU memory limit and watch the two
//! planners diverge (the paper's Figure 6, single network).
//!
//! ```sh
//! cargo run --release --example memory_wall [network] [P] [beta_gb]
//! ```

use madpipe::core::{compare, PlannerConfig};
use madpipe::dnn::{networks, GpuModel};
use madpipe::model::Platform;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let beta: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12.0);

    let net = networks::by_name(net_name).expect("unknown network");
    let chain = net.profile(8, 1000, &GpuModel::default()).unwrap();
    println!(
        "{} | P = {p}, beta = {beta} GB/s | U(1,L) = {:.1} ms",
        chain.name(),
        chain.total_compute_time() * 1e3
    );
    println!(
        "{:>5} | {:>12} {:>12} | {:>12} {:>12} | {:>6}",
        "M(GB)", "mp-est(ms)", "mp(ms)", "pd-est(ms)", "pd(ms)", "ratio"
    );

    for m in [3u64, 4, 5, 6, 7, 8, 10, 12, 14, 16] {
        let platform = Platform::gb(p, m, beta).unwrap();
        let cmp = compare(&chain, &platform, &PlannerConfig::default());
        let (mp_est, mp) = match &cmp.madpipe {
            Ok(plan) => (
                format!("{:.1}", plan.phase1.period * 1e3),
                format!("{:.1}", plan.period() * 1e3),
            ),
            Err(_) => ("-".into(), "inf".into()),
        };
        let (pd_est, pd) = match &cmp.pipedream {
            Ok(plan) => (
                format!("{:.1}", plan.outcome.predicted_period * 1e3),
                format!("{:.1}", plan.period() * 1e3),
            ),
            Err(_) => ("-".into(), "inf".into()),
        };
        let ratio = cmp.ratio().map(|r| format!("{r:.3}")).unwrap_or("-".into());
        println!("{m:>5} | {mp_est:>12} {mp:>12} | {pd_est:>12} {pd:>12} | {ratio:>6}");
    }
}
