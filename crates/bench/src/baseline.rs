//! Bench baselines: a small fixed grid subset serialized to JSON and
//! compared against a committed reference, the data path behind CI's
//! `bench-baseline` gate.
//!
//! The smoke grid is deliberately tiny (two networks × two GPU counts ×
//! two memory limits at β = 12 GB/s) so the job stays a couple of
//! minutes; it still crosses the memory-tight/roomy boundary where the
//! planners differ most. Periods are bit-deterministic, so they gate at
//! a strict relative tolerance; planning *times* are hostage to the CI
//! runner, so they gate only at a loose multiple of the baseline (drift
//! is still reported).

use std::io;
use std::path::Path;

use madpipe_json::{FromJson, JsonError, ToJson, Value};
use madpipe_model::PolicySpec;

use crate::grid::{Cell, CellResult, GridConfig};

/// Format version of `BENCH_*.json` files.
pub const BASELINE_VERSION: u64 = 1;

/// One grid cell's baseline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRecord {
    pub network: String,
    pub p: usize,
    pub m_gb: u64,
    pub beta_gb: f64,
    /// Stage-policy axis the cell planned under. Defaults to the paper's
    /// model; serialized only when non-default, so default-policy
    /// records keep the original JSON shape.
    pub policy: PolicySpec,
    /// MadPipe achieved period (seconds; `None` = infeasible).
    pub madpipe: Option<f64>,
    /// PipeDream achieved period.
    pub pipedream: Option<f64>,
    /// Wall-clock planning seconds (both planners).
    pub planning_seconds: f64,
    /// Differential certification verdict of the MadPipe plan.
    pub certified: Option<bool>,
    /// Jitter robustness margin of the certified plan.
    pub jitter_margin: Option<f64>,
    /// Full planner stats payload (`PlannerStats::to_json`). Optional so
    /// version-1 baselines written before this field existed still parse;
    /// informational only — [`compare_baselines`] never gates on it.
    pub stats: Option<Value>,
}

impl BaselineRecord {
    /// Identity of the cell this record measures.
    pub fn key(&self) -> (String, usize, u64, u64, PolicySpec) {
        (
            self.network.clone(),
            self.p,
            self.m_gb,
            self.beta_gb.to_bits(),
            self.policy,
        )
    }

    fn opt_f64(v: Option<f64>) -> Value {
        match v {
            Some(x) => Value::Float(x),
            None => Value::Null,
        }
    }

    fn read_opt_f64(v: &Value, key: &str) -> Result<Option<f64>, JsonError> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x.as_f64().map(Some),
        }
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("network".into(), Value::Str(self.network.clone())),
            ("p".into(), Value::UInt(self.p as u64)),
            ("m_gb".into(), Value::UInt(self.m_gb)),
            ("beta_gb".into(), Value::Float(self.beta_gb)),
            ("madpipe".into(), Self::opt_f64(self.madpipe)),
            ("pipedream".into(), Self::opt_f64(self.pipedream)),
            (
                "planning_seconds".into(),
                Value::Float(self.planning_seconds),
            ),
            (
                "certified".into(),
                match self.certified {
                    Some(c) => Value::Bool(c),
                    None => Value::Null,
                },
            ),
            ("jitter_margin".into(), Self::opt_f64(self.jitter_margin)),
        ];
        if !self.policy.is_default() {
            fields.push(("policy".into(), self.policy.to_json()));
        }
        if let Some(stats) = &self.stats {
            fields.push(("stats".into(), stats.clone()));
        }
        Value::Object(fields)
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            network: v.field("network")?.as_str()?.to_string(),
            p: v.field("p")?.as_u64()? as usize,
            m_gb: v.field("m_gb")?.as_u64()?,
            beta_gb: v.field("beta_gb")?.as_f64()?,
            madpipe: Self::read_opt_f64(v, "madpipe")?,
            pipedream: Self::read_opt_f64(v, "pipedream")?,
            planning_seconds: v.field("planning_seconds")?.as_f64()?,
            certified: match v.get("certified") {
                None | Some(Value::Null) => None,
                Some(Value::Bool(b)) => Some(*b),
                Some(other) => {
                    return Err(JsonError::new(format!(
                        "field `certified` must be a bool or null, got {other:?}"
                    )))
                }
            },
            jitter_margin: Self::read_opt_f64(v, "jitter_margin")?,
            policy: match v.get("policy") {
                None | Some(Value::Null) => PolicySpec::default(),
                Some(p) => PolicySpec::from_json(p)?,
            },
            stats: match v.get("stats") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.clone()),
            },
        })
    }
}

impl From<&CellResult> for BaselineRecord {
    fn from(r: &CellResult) -> Self {
        Self {
            network: r.cell.network.clone(),
            p: r.cell.p,
            m_gb: r.cell.m_gb,
            beta_gb: r.cell.beta_gb,
            policy: r.cell.policy,
            madpipe: r.madpipe,
            pipedream: r.pipedream,
            planning_seconds: r.planning_seconds,
            certified: r.certified,
            jitter_margin: r.jitter_margin,
            stats: Some(r.stats.to_json()),
        }
    }
}

/// The fixed smoke subset CI measures: ResNet-50 and Inception-v3 on
/// `P ∈ {2, 4}`, `M ∈ {6, 10}` GB, `β = 12` GB/s — 8 cells.
pub fn smoke_grid() -> GridConfig {
    GridConfig {
        networks: vec!["resnet50".into(), "inception_v3".into()],
        p_values: vec![2, 4],
        m_values: vec![6, 10],
        beta_values: vec![12.0],
        batch: 8,
        image_size: 1000,
    }
}

/// The tight-memory policy-flip pair appended to the smoke grid: the
/// weight-dominated [`madpipe_dnn::networks::mlp12`] stack on 4 × 2 GB
/// GPUs. Under the paper's `3·W` model no partition fits (three weight
/// versions of three 268 MB blocks alone exceed 2 GB), so the default
/// cell gates as `Infeasible`; under `--recompute auto --weights 2bw`
/// the same platform point plans and certifies.
pub fn tight_cells() -> Vec<Cell> {
    let base = Cell {
        network: "mlp12".into(),
        p: 4,
        m_gb: 2,
        beta_gb: 12.0,
        policy: PolicySpec::default(),
    };
    let mut flipped = base.clone();
    flipped.policy = PolicySpec {
        recompute: madpipe_model::RecomputeMode::Auto,
        weights: madpipe_model::WeightPolicy::TwoBw,
    };
    vec![base, flipped]
}

/// Every cell `bench-baseline` runs: the smoke grid plus the
/// tight-memory policy-flip pair.
pub fn smoke_cells() -> Vec<Cell> {
    let mut cells = smoke_grid().cells();
    cells.extend(tight_cells());
    cells
}

/// Check the tight-memory policy flip on a finished run: the default
/// cell must be infeasible and its policy twin must plan *and* certify.
/// Returns human-readable violations (empty = the flip holds).
pub fn tight_cell_flip_violations(records: &[BaselineRecord]) -> Vec<String> {
    let mut violations = Vec::new();
    for cell in tight_cells() {
        let Some(r) = records.iter().find(|r| {
            r.network == cell.network
                && r.p == cell.p
                && r.m_gb == cell.m_gb
                && r.beta_gb.to_bits() == cell.beta_gb.to_bits()
                && r.policy == cell.policy
        }) else {
            violations.push(format!(
                "{}: tight cell missing from the run",
                cell.describe()
            ));
            continue;
        };
        if cell.policy.is_default() {
            if r.madpipe.is_some() {
                violations.push(format!(
                    "{}: expected Infeasible under the default policy, got a plan",
                    cell.describe()
                ));
            }
        } else {
            if r.madpipe.is_none() {
                violations.push(format!(
                    "{}: expected a feasible plan under the policy axis",
                    cell.describe()
                ));
            }
            if r.madpipe.is_some() && r.certified != Some(true) {
                violations.push(format!(
                    "{}: the flipped plan must certify (got {:?})",
                    cell.describe(),
                    r.certified
                ));
            }
        }
    }
    violations
}

/// Serialize `records` as a `BENCH_*.json` document.
pub fn render(records: &[BaselineRecord]) -> String {
    let doc = Value::Object(vec![
        ("version".into(), Value::UInt(BASELINE_VERSION)),
        (
            "records".into(),
            Value::Array(records.iter().map(|r| r.to_json()).collect()),
        ),
    ]);
    doc.to_string_pretty()
}

/// Write `records` to `path`.
pub fn save(records: &[BaselineRecord], path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, render(records))
}

/// Load a `BENCH_*.json` document.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<BaselineRecord>, String> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    parse(&text).map_err(|e| format!("parsing {}: {e}", path.as_ref().display()))
}

/// Parse a `BENCH_*.json` document from text.
pub fn parse(text: &str) -> Result<Vec<BaselineRecord>, JsonError> {
    let doc = Value::parse(text)?;
    let version = doc.field("version")?.as_u64()?;
    if version != BASELINE_VERSION {
        return Err(JsonError::new(format!(
            "baseline version {version} (this build reads {BASELINE_VERSION})"
        )));
    }
    doc.field("records")?
        .as_array()?
        .iter()
        .map(BaselineRecord::from_json)
        .collect()
}

/// Compare `current` against `baseline`.
///
/// Violations (returned as human-readable lines, empty = pass):
/// * a cell present in one set but not the other;
/// * feasibility flips (a planner that planned in the baseline fails
///   now, or vice versa);
/// * a period drifting more than `period_tol` (relative) from baseline;
/// * a certification regression (baseline certified, current not);
/// * planning time exceeding `time_factor ×` the baseline (timing noise
///   below that threshold is tolerated — CI runners vary).
pub fn compare_baselines(
    current: &[BaselineRecord],
    baseline: &[BaselineRecord],
    period_tol: f64,
    time_factor: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let describe = |r: &BaselineRecord| {
        let mut s = format!(
            "{} P={} M={}GB beta={}GB/s",
            r.network, r.p, r.m_gb, r.beta_gb
        );
        if !r.policy.is_default() {
            s.push_str(&format!(
                " policy={}/{}",
                r.policy.recompute.as_str(),
                r.policy.weights.as_str()
            ));
        }
        s
    };
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            violations.push(format!("{}: missing from the current run", describe(base)));
            continue;
        };
        for (label, b, c) in [
            ("madpipe", base.madpipe, cur.madpipe),
            ("pipedream", base.pipedream, cur.pipedream),
        ] {
            match (b, c) {
                (Some(bp), Some(cp)) => {
                    let drift = (cp - bp).abs() / bp;
                    if drift > period_tol {
                        violations.push(format!(
                            "{}: {label} period {:.3} ms drifted {:.1}% from baseline {:.3} ms \
                             (tolerance {:.0}%)",
                            describe(base),
                            cp * 1e3,
                            drift * 100.0,
                            bp * 1e3,
                            period_tol * 100.0
                        ));
                    }
                }
                (Some(_), None) => violations.push(format!(
                    "{}: {label} planned in the baseline but is now infeasible",
                    describe(base)
                )),
                (None, Some(_)) => violations.push(format!(
                    "{}: {label} was infeasible in the baseline but now plans \
                     (refresh the baseline)",
                    describe(base)
                )),
                (None, None) => {}
            }
        }
        if base.certified == Some(true) && cur.certified != Some(true) {
            violations.push(format!(
                "{}: certification regressed ({:?} from certified baseline)",
                describe(base),
                cur.certified
            ));
        }
        if base.planning_seconds > 0.0 && cur.planning_seconds > base.planning_seconds * time_factor
        {
            violations.push(format!(
                "{}: planning took {:.2} s vs baseline {:.2} s (> {time_factor}x)",
                describe(base),
                cur.planning_seconds,
                base.planning_seconds
            ));
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.key() == cur.key()) {
            violations.push(format!(
                "{}: not in the baseline (refresh it)",
                describe(cur)
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(network: &str, m: u64, madpipe: Option<f64>) -> BaselineRecord {
        BaselineRecord {
            network: network.into(),
            p: 4,
            m_gb: m,
            beta_gb: 12.0,
            policy: PolicySpec::default(),
            madpipe,
            pipedream: madpipe.map(|x| x * 1.2),
            planning_seconds: 0.5,
            certified: madpipe.map(|_| true),
            jitter_margin: madpipe.map(|_| 0.11),
            stats: None,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let records = vec![
            record("resnet50", 6, Some(0.1037)),
            record("resnet50", 3, None),
        ];
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn stats_payload_round_trips_and_stays_optional() {
        let mut with = record("resnet50", 6, Some(0.1));
        with.stats = Some(madpipe_core::PlannerStats::default().to_json());
        let records = vec![with, record("resnet50", 3, None)];
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(parsed, records);
        // The stats payload never gates.
        assert!(compare_baselines(&parsed, &records, 0.10, 5.0).is_empty());
        let stripped: Vec<BaselineRecord> = records
            .iter()
            .cloned()
            .map(|mut r| {
                r.stats = None;
                r
            })
            .collect();
        assert!(compare_baselines(&stripped, &records, 0.10, 5.0).is_empty());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = "{\"version\": 99, \"records\": []}";
        assert!(parse(text).is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let records = vec![record("resnet50", 6, Some(0.1))];
        assert!(compare_baselines(&records, &records, 0.10, 5.0).is_empty());
    }

    #[test]
    fn period_drift_beyond_tolerance_is_flagged() {
        let base = vec![record("resnet50", 6, Some(0.100))];
        let mut cur = base.clone();
        cur[0].madpipe = Some(0.108); // +8% < 10%: fine
        assert!(compare_baselines(&cur, &base, 0.10, 5.0).is_empty());
        cur[0].madpipe = Some(0.115); // +15% > 10%: violation
        let v = compare_baselines(&cur, &base, 0.10, 5.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("madpipe period"));
    }

    #[test]
    fn feasibility_flips_and_missing_cells_are_flagged() {
        let base = vec![
            record("resnet50", 6, Some(0.1)),
            record("resnet50", 3, None),
        ];
        let mut cur = vec![record("resnet50", 6, None)];
        cur[0].certified = None;
        let v = compare_baselines(&cur, &base, 0.10, 5.0);
        assert!(v.iter().any(|x| x.contains("now infeasible")));
        assert!(v.iter().any(|x| x.contains("missing from the current run")));
        assert!(v.iter().any(|x| x.contains("certification regressed")));
    }

    #[test]
    fn slow_planning_is_flagged_only_beyond_the_factor() {
        let base = vec![record("resnet50", 6, Some(0.1))];
        let mut cur = base.clone();
        cur[0].planning_seconds = 2.0; // 4x baseline < 5x: fine
        assert!(compare_baselines(&cur, &base, 0.10, 5.0).is_empty());
        cur[0].planning_seconds = 3.0; // 6x: violation
        let v = compare_baselines(&cur, &base, 0.10, 5.0);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("planning took"));
    }

    #[test]
    fn smoke_grid_is_small_and_fixed() {
        let g = smoke_grid();
        assert_eq!(g.cells().len(), 8);
        assert!(g.networks.contains(&"resnet50".to_string()));
        // Plus the tight-memory policy-flip pair.
        let cells = smoke_cells();
        assert_eq!(cells.len(), 10);
        let tight = tight_cells();
        assert!(tight[0].policy.is_default());
        assert!(!tight[1].policy.is_default());
        assert_eq!(tight[0].network, tight[1].network);
    }

    #[test]
    fn policy_records_round_trip_and_key_separately() {
        let mut flipped = record("mlp12", 2, Some(0.004));
        flipped.policy = PolicySpec {
            recompute: madpipe_model::RecomputeMode::Auto,
            weights: madpipe_model::WeightPolicy::TwoBw,
        };
        let records = vec![record("mlp12", 2, None), flipped.clone()];
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(parsed, records);
        // Same platform point, different policy: distinct cells.
        assert_ne!(parsed[0].key(), parsed[1].key());
        // Default-policy records keep the original JSON shape.
        assert!(!record("resnet50", 6, Some(0.1))
            .to_json()
            .to_string_compact()
            .contains("policy"));
        assert!(flipped.to_json().to_string_compact().contains("policy"));
    }

    #[test]
    fn tight_cell_flip_gate_checks_both_sides() {
        let tight = tight_cells();
        let as_record = |cell: &Cell, madpipe: Option<f64>| {
            let mut r = record(&cell.network, cell.m_gb, madpipe);
            r.p = cell.p;
            r.policy = cell.policy;
            r
        };
        // The expected outcome: default infeasible, policy certified.
        let good = vec![
            as_record(&tight[0], None),
            as_record(&tight[1], Some(0.0037)),
        ];
        assert!(tight_cell_flip_violations(&good).is_empty());
        // Default side regresses to feasible: flagged.
        let bad = vec![
            as_record(&tight[0], Some(0.004)),
            as_record(&tight[1], Some(0.0037)),
        ];
        assert!(!tight_cell_flip_violations(&bad).is_empty());
        // Policy side fails to plan or certify: flagged.
        let bad = vec![as_record(&tight[0], None), as_record(&tight[1], None)];
        assert!(!tight_cell_flip_violations(&bad).is_empty());
        let mut uncert = as_record(&tight[1], Some(0.0037));
        uncert.certified = Some(false);
        let bad = vec![as_record(&tight[0], None), uncert];
        assert!(!tight_cell_flip_violations(&bad).is_empty());
        // Missing cells are flagged.
        assert_eq!(tight_cell_flip_violations(&[]).len(), 2);
    }
}
