//! VGG-16 (Simonyan & Zisserman), torchvision layout with batch norm.
//!
//! Not part of the paper's evaluation, but a classic stress case for
//! pipelined model parallelism: enormous early activations (no stride
//! until the first pool) and a head holding ~90% of the weights — the
//! opposite weight/activation profile of the ResNets.

use crate::block::Block;
use crate::ops::Op;

use super::NetworkSpec;

fn conv_block(name: String, convs: &[u64]) -> Block {
    let mut ops = Vec::with_capacity(convs.len() * 3 + 1);
    for &c in convs {
        ops.push(Op::conv3x3(c, 1));
        ops.push(Op::BatchNorm);
        ops.push(Op::Relu);
    }
    ops.push(Op::MaxPool {
        kernel: 2,
        stride: 2,
        padding: 0,
    });
    Block::seq(name, ops)
}

/// VGG-16 with batch norm (`vgg16_bn`): 13 convolutions in 5 pooled
/// groups, then the 3-layer fully connected classifier.
pub fn vgg16() -> NetworkSpec {
    let blocks = vec![
        conv_block("conv1".into(), &[64, 64]),
        conv_block("conv2".into(), &[128, 128]),
        conv_block("conv3".into(), &[256, 256, 256]),
        conv_block("conv4".into(), &[512, 512, 512]),
        conv_block("conv5".into(), &[512, 512, 512]),
        // torchvision adapts to 7×7 before the classifier.
        Block::seq("avgpool", vec![Op::GlobalAvgPool]),
        Block::seq("fc1", vec![Op::Linear { out_features: 4096 }, Op::Relu]),
        Block::seq("fc2", vec![Op::Linear { out_features: 4096 }, Op::Relu]),
        Block::seq("fc3", vec![Op::Linear { out_features: 1000 }]),
    ];
    NetworkSpec {
        name: "vgg16".to_string(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorShape;

    #[test]
    fn convolutional_parameters_match_torchvision() {
        // torchvision vgg16_bn features: ≈ 14.72 M conv parameters.
        // (The classifier differs: torchvision flattens 7×7×512 into a
        // 102.8 M-parameter fc1; our global-pool variant — the common
        // fully-convolutional adaptation for large inputs — keeps fc1 at
        // 512×4096.)
        let net = vgg16();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut conv_params = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            if b.name.starts_with("conv") {
                conv_params += p.params;
            }
            shape = p.output;
        }
        let millions = conv_params as f64 / 1e6;
        assert!(
            (millions - 14.72).abs() < 0.3,
            "vgg16 conv params {millions:.2} M, expected ≈ 14.72 M"
        );
        assert_eq!(shape, TensorShape::new(1, 1000, 1, 1));
    }

    #[test]
    fn activations_dwarf_weights_early() {
        let net = vgg16();
        let chain = net
            .profile(8, 1000, &crate::cost::GpuModel::default())
            .unwrap();
        // conv1 output: 8 × 64 × 500 × 500 (after pool) … its input
        // activations during the block are 1000², the biggest anywhere.
        let first = chain.layer(0);
        assert!(first.activation_bytes > 100 * first.weight_bytes);
        // classifier: weights dominate activations.
        let fc1 = chain.layer(6);
        assert!(fc1.weight_bytes > 10 * fc1.activation_bytes);
    }

    #[test]
    fn flops_are_in_the_published_ballpark() {
        // vgg16: ≈ 15.5 GMAC ≈ 31 GFLOP at 224² (convs dominate).
        let net = vgg16();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut flops = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            flops += p.flops;
            shape = p.output;
        }
        let gflops = flops as f64 / 1e9;
        assert!(
            (26.0..36.0).contains(&gflops),
            "vgg16 {gflops:.1} GFLOP, expected ≈ 31"
        );
    }
}
