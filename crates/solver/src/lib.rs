//! Phase-2 scheduling of (possibly non-contiguous) allocations.
//!
//! The paper schedules the allocation produced by MadPipe-DP with an
//! Integer Linear Program (from reference [1]) over the *quotient chain*
//! of stages. This crate substitutes a specialized branch-and-bound
//! periodic scheduler exploring the same decision space — index shifts
//! and intra-resource orderings — with the exact checker of
//! `madpipe-schedule` as the feasibility oracle:
//!
//! * every operation of one generic mini-batch receives an *absolute*
//!   time `z`; folding into the period gives the start `t = z mod T` and
//!   shift `h = ⌊z/T⌋`;
//! * operations are placed in topological order (forwards along the
//!   chain, then backwards in reverse); each op goes to the earliest
//!   modular slot on its resource at or after its dependency-ready time
//!   (which simultaneously minimizes shifts, and therefore memory);
//! * when the earliest-slot choice fails (fragmentation on the special
//!   GPU, or a memory peak from unfortunate interleaving), a bounded DFS
//!   backtracks over later slots.
//!
//! On contiguous allocations every unit owns its resource, the greedy
//! placement coincides with 1F1B*'s memory-optimal pattern, and the
//! period search provably matches `best_contiguous_period` — which the
//! property tests assert.

pub mod exact;
pub mod place;
pub mod search;
pub mod timeline;

pub use exact::{exact_optimum, ExactOptimum};
pub use place::{schedule_at_period, PlaceConfig};
pub use search::{best_period, best_period_with, SolvedSchedule};
pub use timeline::Timeline;
