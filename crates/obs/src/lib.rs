//! Observability layer for the MadPipe workspace: span tracing, a
//! metrics registry, and exporters sharing one trace-event model.
//!
//! Three pieces, deliberately small and dependency-free:
//!
//! * [`span`]/[`span!`] — RAII span guards feeding a global, thread-safe
//!   collector. Tracing is off by default; a disabled span is a single
//!   relaxed atomic load (no clock read, no allocation), so permanently
//!   instrumented hot paths cost nothing in production runs.
//!   [`timed`] always measures wall time (the planner's phase clocks are
//!   built on it) but still only *records* when tracing is enabled.
//! * [`Registry`]/[`MetricsSnapshot`] — monotone counters, gauges and
//!   log₂-bucketed histograms with deterministic (sorted) iteration,
//!   rendered as a Prometheus-style text dump or a JSON tree.
//! * [`Trace`]/[`TraceEvent`] — the shared event model behind every
//!   exporter: Chrome/Perfetto JSON (`ph:"X"` spans, `ph:"C"` counter
//!   tracks, `ph:"M"` metadata), a JSON-lines event log, and — for the
//!   registry — the Prometheus dump. `sim::schedule_trace` and the CLI's
//!   `--trace-out` both emit through this one model.
//!
//! Two distributed-tracing pieces extend the same model across
//! processes:
//!
//! * [`context`] — 64-bit trace/span ids (16-hex on the wire) plus
//!   wall-clock UNIX-epoch timestamps, so spans emitted by the router,
//!   each daemon and the load generator can be stitched together
//!   without clock coordination.
//! * [`flight`] — an always-on flight recorder: a fixed-size lock-free
//!   ring of recent span/instant/counter events, drained to a JSONL
//!   artifact on panic, SIGTERM, or a chaos kill. [`merge::merge_traces`]
//!   (`madpipe trace-merge`) stitches those per-process dumps into one
//!   cluster-wide Chrome trace with cross-process parent/child edges.
//!
//! [`validate`] closes the loop: it re-parses an emitted Chrome trace
//! with the vendored JSON crate and checks the structural invariants the
//! round-trip tests and `madpipe validate-trace` rely on — including,
//! for merged cluster traces, that every span's parent exists and the
//! parent graph is acyclic.
//!
//! Counter namespaces in use across the workspace: `plan.*` and `dp.*`
//! (planner), `certify.*` (differential certification), `serve.*` (the
//! daemon — including `serve.panics` and `serve.workers.respawned`, the
//! supervision counters incremented when a worker panic is isolated and
//! the worker replaced), and `replan.*` (degraded-mode replanning:
//! `replan.fault.<kind>` counters, the `replan.throughput_delta` gauge,
//! the `replan.total` span).

pub mod context;
mod event;
pub mod flight;
pub mod merge;
mod metrics;
mod span;
pub mod validate;

pub use context::{fresh_id, hex_id, now_unix_us, parse_hex_id};
pub use event::{Phase, Trace, TraceEvent, PLANNER_PID, SCHEDULE_PID};
pub use merge::merge_traces;
pub use metrics::{
    quantile_from_buckets, HistogramSnapshot, MetricsSnapshot, Registry, EXPORTED_QUANTILES,
};
pub use span::{drain_spans, set_enabled, span, timed, tracing_enabled, SpanGuard, SpanRecord};
