//! The PipeDream baseline: a contiguous partitioning dynamic program with
//! PipeDream's rough memory estimate, scheduled with 1F1B*.
//!
//! PipeDream's partitioner [11] balances a contiguous split of the chain
//! over the GPUs, minimizing the bottleneck resource (the largest stage
//! compute time or inter-stage communication time). Its memory accounting
//! assumes the 1F1B steady state of a `S`-stage pipeline *without*
//! communication stages: the `j`-th stage from the end keeps `j` versions
//! of its activations (so never more than `P`). As §5 of the paper notes,
//! the first layers may actually need up to `2P−1` versions once
//! communications are taken into account, so this estimate is optimistic;
//! the resulting partitioning is then repaired into a valid schedule with
//! 1F1B* (`DP+1F1B*` in the figures), often at a much larger period than
//! the DP predicted.

pub mod dp;
pub mod gpipe;
pub mod plan;

pub use dp::{pipedream_partition, PartitionOutcome};
pub use gpipe::{gpipe_plan, GPipeConfig, GPipePlan};
pub use plan::{pipedream_plan, PipeDreamPlan, PlanError};
