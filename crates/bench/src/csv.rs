//! Minimal CSV writing for the figure data files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular CSV table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV text (fields quoted only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if field.contains([',', '"', '\n', '\r']) {
                    let _ = write!(out, "\"{}\"", field.replace('"', "\"\""));
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Write the CSV to `path`, creating parent directories.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Format an optional seconds value as milliseconds (empty when absent).
pub fn ms(v: Option<f64>) -> String {
    v.map(|x| format!("{:.3}", x * 1e3)).unwrap_or_default()
}

/// Format an optional ratio with 4 decimals (empty when absent).
pub fn ratio(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4}")).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn quotes_fields_with_commas() {
        let mut t = Table::new(&["x"]);
        t.push(vec!["hello, world".into()]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    fn quotes_fields_with_carriage_returns() {
        // A raw CR inside an unquoted field splits the row on CRLF-aware
        // readers; it must be quoted like LF.
        let mut t = Table::new(&["x", "y"]);
        t.push(vec!["a\rb".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a\rb\""), "CR field must be quoted: {csv:?}");
        assert!(csv.ends_with("\"a\rb\",plain\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(Some(0.1234)), "123.400");
        assert_eq!(ms(None), "");
        assert_eq!(ratio(Some(1.25)), "1.2500");
    }
}
