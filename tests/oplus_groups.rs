//! The `⊕` delay propagation (§4.2.2) against real 1F1B* group counts.
//!
//! MadPipe-DP estimates the live-batch count of a stage as
//! `g = ⌈(V + U)/T̂⌉`, with `V` built by folding the stage and
//! communication loads behind it through `⊕`. On a contiguous
//! partitioning scheduled at exactly `T = T̂`, that estimate must equal
//! the group index that 1F1B*'s greedy packing actually assigns — which
//! in turn (Proposition 1 / the schedule crate's proptests) equals the
//! stage's true stored-activation count.

use proptest::prelude::*;

use madpipe::core::oplus;
use madpipe::model::util::ceil_div;
use madpipe::model::{Allocation, Chain, Layer, Partition, Platform, UnitKind, UnitSequence};
use madpipe::schedule::group_assignment;

fn arb_chain() -> impl Strategy<Value = Chain> {
    prop::collection::vec((0.1f64..5.0, 0.1f64..5.0, 1u64..50_000), 2..=9).prop_map(|specs| {
        let layers = specs
            .iter()
            .enumerate()
            .map(|(i, &(f, b, a))| Layer::new(format!("l{i}"), f, b, 0, a))
            .collect();
        Chain::new("rand", 10_000, layers).unwrap()
    })
}

fn arb_cuts(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(prop::bool::ANY, n - 1).prop_map(|mask| {
        mask.iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i + 1)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn oplus_chain_reproduces_group_assignment(
        (chain, cuts, slack) in arb_chain().prop_flat_map(|c| {
            let n = c.len();
            (Just(c), arb_cuts(n), 1.0f64..3.0)
        })
    ) {
        let part = Partition::from_cuts(&cuts, chain.len()).unwrap();
        let n_gpus = part.len();
        let platform = Platform::new(n_gpus, u64::MAX / 4, 100.0).unwrap();
        let alloc = Allocation::contiguous(&part, n_gpus).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let t_hat = seq.max_unit_load() * slack;
        let groups = group_assignment(&seq, t_hat);

        // Fold the chain from the back exactly as MadPipe-DP does:
        // V' = (V ⊕ U(stage)) ⊕ C(cut-before-stage).
        let mut v = 0.0f64;
        for (idx, unit) in seq.units().iter().enumerate().rev() {
            match &unit.kind {
                UnitKind::Stage { .. } => {
                    let u = unit.total_time();
                    let g = ceil_div(v + u, t_hat).max(1);
                    prop_assert_eq!(
                        g,
                        groups[idx] as u64,
                        "stage unit {} (v = {}, u = {}, T̂ = {}): DP estimate {} vs 1F1B* group {}",
                        idx, v, u, t_hat, g, groups[idx]
                    );
                    v = oplus(v, u, t_hat);
                }
                UnitKind::Comm { .. } => {
                    v = oplus(v, unit.total_time(), t_hat);
                }
            }
        }
    }
}
