//! PipeDream's contiguous partitioning dynamic program.

use madpipe_model::{Chain, Partition, Platform};

/// Result of the partitioning DP.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// The chosen contiguous partition (at most `P` stages).
    pub partition: Partition,
    /// The bottleneck period the DP *predicts* (the dashed PipeDream line
    /// of Figure 6): max over stage compute times and cut times.
    pub predicted_period: f64,
    /// Whether the rough memory estimate was satisfiable; when `false`,
    /// the returned partition ignores memory entirely (PipeDream's DP
    /// found no estimate-feasible split and fell back to pure load
    /// balancing).
    pub estimate_feasible: bool,
}

/// Run the PipeDream partitioner: minimize the bottleneck of a contiguous
/// split of `chain` into at most `platform.n_gpus` stages, subject to the
/// rough memory estimate (the `j`-th stage from the end keeps `j`
/// in-flight activations, plus `3W` weights and `2a` comm buffers).
///
/// Returns `None` only for degenerate inputs (empty chain).
pub fn pipedream_partition(chain: &Chain, platform: &Platform) -> Option<PartitionOutcome> {
    if chain.is_empty() {
        return None;
    }
    if let Some((partition, predicted_period)) = solve(chain, platform, true) {
        return Some(PartitionOutcome {
            partition,
            predicted_period,
            estimate_feasible: true,
        });
    }
    // Estimate-infeasible: PipeDream still emits its best load-balanced
    // split; 1F1B* repair downstream decides whether anything fits.
    let (partition, predicted_period) = solve(chain, platform, false)?;
    Some(PartitionOutcome {
        partition,
        predicted_period,
        estimate_feasible: false,
    })
}

/// The DP proper. `d[k][p]` = best achievable bottleneck for layers
/// `[k, L)` split into exactly `p` stages, the first of which is the
/// `p`-th stage from the end of the pipeline (and thus keeps `p`
/// activation versions under PipeDream's estimate).
fn solve(chain: &Chain, platform: &Platform, use_memory: bool) -> Option<(Partition, f64)> {
    let l_total = chain.len();
    let max_stages = platform.n_gpus.min(l_total);
    let inf = f64::INFINITY;

    // d[p][k], choice[p][k] = end layer of the first stage.
    let mut d = vec![vec![inf; l_total + 1]; max_stages + 1];
    let mut choice = vec![vec![usize::MAX; l_total + 1]; max_stages + 1];

    let fits = |k: usize, l: usize, versions: u64| -> bool {
        !use_memory || chain.stage_memory(k..l, versions) <= platform.memory_bytes
    };

    // Base: one stage covering [k, L).
    for k in 0..l_total {
        if fits(k, l_total, 1) {
            d[1][k] = chain.compute_time(k..l_total);
            choice[1][k] = l_total;
        }
    }
    for p in 2..=max_stages {
        for k in 0..l_total {
            // First stage [k, l), then p-1 stages over [l, L).
            // Need at least p-1 layers after l.
            for l in (k + 1)..=(l_total - (p - 1)) {
                if !fits(k, l, p as u64) {
                    continue;
                }
                let rest = d[p - 1][l];
                if rest.is_infinite() {
                    continue;
                }
                let bottleneck = chain
                    .compute_time(k..l)
                    .max(platform.cut_time(chain, l))
                    .max(rest);
                if bottleneck < d[p][k] {
                    d[p][k] = bottleneck;
                    choice[p][k] = l;
                }
            }
        }
    }

    // Best over the number of stages actually used.
    let mut best: Option<(usize, f64)> = None;
    for (p, row) in d.iter().enumerate().skip(1) {
        let v = row[0];
        if v.is_finite() && best.map(|(_, b)| v < b).unwrap_or(true) {
            best = Some((p, v));
        }
    }
    let (p_best, period) = best?;

    // Reconstruct.
    let mut cuts = Vec::new();
    let mut k = 0;
    let mut p = p_best;
    while p > 0 {
        let l = choice[p][k];
        debug_assert_ne!(l, usize::MAX);
        if l < l_total {
            cuts.push(l);
        }
        k = l;
        p -= 1;
    }
    let partition = Partition::from_cuts(&cuts, l_total).expect("DP reconstruction is a cover");
    Some((partition, period))
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn uniform_chain(n: usize, act: u64) -> Chain {
        let layers = (0..n)
            .map(|i| Layer::new(format!("l{i}"), 1.0, 1.0, 0, act))
            .collect();
        Chain::new("u", act, layers).unwrap()
    }

    #[test]
    fn balances_uniform_chain_evenly() {
        let chain = uniform_chain(8, 1);
        let platform = Platform::new(4, 1 << 40, 1e12).unwrap();
        let out = pipedream_partition(&chain, &platform).unwrap();
        assert!(out.estimate_feasible);
        assert_eq!(out.partition.len(), 4);
        assert!((out.predicted_period - 4.0).abs() < 1e-9);
        for s in out.partition.stages() {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn avoids_expensive_cuts_on_slow_links() {
        // Layer 1 outputs a huge activation: cutting after it costs 200s.
        let chain = Chain::new(
            "t",
            1,
            vec![
                Layer::new("a", 1.0, 1.0, 0, 10_000),
                Layer::new("b", 1.0, 1.0, 0, 1),
                Layer::new("c", 1.0, 1.0, 0, 1),
                Layer::new("d", 1.0, 1.0, 0, 1),
            ],
        )
        .unwrap();
        let platform = Platform::new(2, 1 << 40, 100.0).unwrap();
        let out = pipedream_partition(&chain, &platform).unwrap();
        // Cutting at 1 costs 2·10000/100 = 200 > any compute imbalance.
        assert_ne!(out.partition.cuts(), vec![1]);
        assert!(out.predicted_period < 200.0);
    }

    #[test]
    fn uses_fewer_stages_when_comm_dominates() {
        // With absurdly slow links, the single-stage split wins.
        let chain = uniform_chain(4, 1_000_000);
        let platform = Platform::new(4, 1 << 40, 1.0).unwrap();
        let out = pipedream_partition(&chain, &platform).unwrap();
        assert_eq!(out.partition.len(), 1);
        assert!((out.predicted_period - 8.0).abs() < 1e-9);
    }

    #[test]
    fn memory_estimate_limits_stage_count() {
        // Each layer stores 100 B of activations (inputs), weights 0.
        // With 450 B of memory every split is estimate-infeasible (any
        // first stage needs ≥ 2·100 activations + 2·100 output buffer,
        // any last stage ≥ its ā + 200 input buffer), so the DP keeps the
        // whole chain on one GPU even though splitting balances better.
        let chain = uniform_chain(4, 100);
        let tight = Platform::new(4, 450, 1e12).unwrap();
        let out = pipedream_partition(&chain, &tight).unwrap();
        assert!(out.estimate_feasible);
        assert_eq!(out.partition.len(), 1);
        assert!((out.predicted_period - 8.0).abs() < 1e-9);

        // With 1000 B the 4-way split fits the estimate and halves ×4.
        let roomy = Platform::new(4, 1000, 1e12).unwrap();
        let out = pipedream_partition(&chain, &roomy).unwrap();
        assert!(out.estimate_feasible);
        assert_eq!(out.partition.len(), 4);
        assert!((out.predicted_period - 2.0).abs() < 1e-9);
        let s_count = out.partition.len();
        for (i, s) in out.partition.stages().iter().enumerate() {
            let versions = (s_count - i) as u64;
            assert!(chain.stage_memory(s.clone(), versions) <= 1000);
        }
    }

    #[test]
    fn falls_back_when_estimate_is_infeasible() {
        let chain = uniform_chain(4, 1_000_000);
        let platform = Platform::new(2, 100, 1e12).unwrap();
        let out = pipedream_partition(&chain, &platform).unwrap();
        assert!(!out.estimate_feasible);
        assert!(!out.partition.is_empty());
    }

    #[test]
    fn brute_force_agreement_on_small_chains() {
        // The DP must match exhaustive search of all contiguous splits
        // under the same rough estimate.
        let chain = Chain::new(
            "t",
            50,
            vec![
                Layer::new("a", 3.0, 4.0, 10, 120),
                Layer::new("b", 1.0, 2.0, 5, 80),
                Layer::new("c", 2.0, 2.0, 20, 60),
                Layer::new("d", 5.0, 1.0, 8, 90),
                Layer::new("e", 1.0, 1.0, 12, 30),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, 2_000, 50.0).unwrap();
        let out = pipedream_partition(&chain, &platform).unwrap();

        let mut best = f64::INFINITY;
        for p in 1..=3 {
            for cand in Partition::enumerate(5, p) {
                let s_count = cand.len();
                let mem_ok = cand.stages().iter().enumerate().all(|(i, s)| {
                    chain.stage_memory(s.clone(), (s_count - i) as u64) <= platform.memory_bytes
                });
                if !mem_ok {
                    continue;
                }
                best = best.min(cand.load_bound(&chain, &platform));
            }
        }
        assert!((out.predicted_period - best).abs() < 1e-9);
    }
}
