//! Bench baselines: a small fixed grid subset serialized to JSON and
//! compared against a committed reference, the data path behind CI's
//! `bench-baseline` gate.
//!
//! The smoke grid is deliberately tiny (two networks × two GPU counts ×
//! two memory limits at β = 12 GB/s) so the job stays a couple of
//! minutes; it still crosses the memory-tight/roomy boundary where the
//! planners differ most. Periods are bit-deterministic, so they gate at
//! a strict relative tolerance; planning *times* are hostage to the CI
//! runner, so they gate only at a loose multiple of the baseline (drift
//! is still reported).

use std::io;
use std::path::Path;

use madpipe_json::{JsonError, Value};

use crate::grid::{CellResult, GridConfig};

/// Format version of `BENCH_*.json` files.
pub const BASELINE_VERSION: u64 = 1;

/// One grid cell's baseline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRecord {
    pub network: String,
    pub p: usize,
    pub m_gb: u64,
    pub beta_gb: f64,
    /// MadPipe achieved period (seconds; `None` = infeasible).
    pub madpipe: Option<f64>,
    /// PipeDream achieved period.
    pub pipedream: Option<f64>,
    /// Wall-clock planning seconds (both planners).
    pub planning_seconds: f64,
    /// Differential certification verdict of the MadPipe plan.
    pub certified: Option<bool>,
    /// Jitter robustness margin of the certified plan.
    pub jitter_margin: Option<f64>,
    /// Full planner stats payload (`PlannerStats::to_json`). Optional so
    /// version-1 baselines written before this field existed still parse;
    /// informational only — [`compare_baselines`] never gates on it.
    pub stats: Option<Value>,
}

impl BaselineRecord {
    /// Identity of the cell this record measures.
    pub fn key(&self) -> (String, usize, u64, u64) {
        (
            self.network.clone(),
            self.p,
            self.m_gb,
            self.beta_gb.to_bits(),
        )
    }

    fn opt_f64(v: Option<f64>) -> Value {
        match v {
            Some(x) => Value::Float(x),
            None => Value::Null,
        }
    }

    fn read_opt_f64(v: &Value, key: &str) -> Result<Option<f64>, JsonError> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x.as_f64().map(Some),
        }
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("network".into(), Value::Str(self.network.clone())),
            ("p".into(), Value::UInt(self.p as u64)),
            ("m_gb".into(), Value::UInt(self.m_gb)),
            ("beta_gb".into(), Value::Float(self.beta_gb)),
            ("madpipe".into(), Self::opt_f64(self.madpipe)),
            ("pipedream".into(), Self::opt_f64(self.pipedream)),
            (
                "planning_seconds".into(),
                Value::Float(self.planning_seconds),
            ),
            (
                "certified".into(),
                match self.certified {
                    Some(c) => Value::Bool(c),
                    None => Value::Null,
                },
            ),
            ("jitter_margin".into(), Self::opt_f64(self.jitter_margin)),
        ];
        if let Some(stats) = &self.stats {
            fields.push(("stats".into(), stats.clone()));
        }
        Value::Object(fields)
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            network: v.field("network")?.as_str()?.to_string(),
            p: v.field("p")?.as_u64()? as usize,
            m_gb: v.field("m_gb")?.as_u64()?,
            beta_gb: v.field("beta_gb")?.as_f64()?,
            madpipe: Self::read_opt_f64(v, "madpipe")?,
            pipedream: Self::read_opt_f64(v, "pipedream")?,
            planning_seconds: v.field("planning_seconds")?.as_f64()?,
            certified: match v.get("certified") {
                None | Some(Value::Null) => None,
                Some(Value::Bool(b)) => Some(*b),
                Some(other) => {
                    return Err(JsonError::new(format!(
                        "field `certified` must be a bool or null, got {other:?}"
                    )))
                }
            },
            jitter_margin: Self::read_opt_f64(v, "jitter_margin")?,
            stats: match v.get("stats") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.clone()),
            },
        })
    }
}

impl From<&CellResult> for BaselineRecord {
    fn from(r: &CellResult) -> Self {
        Self {
            network: r.cell.network.clone(),
            p: r.cell.p,
            m_gb: r.cell.m_gb,
            beta_gb: r.cell.beta_gb,
            madpipe: r.madpipe,
            pipedream: r.pipedream,
            planning_seconds: r.planning_seconds,
            certified: r.certified,
            jitter_margin: r.jitter_margin,
            stats: Some(r.stats.to_json()),
        }
    }
}

/// The fixed smoke subset CI measures: ResNet-50 and Inception-v3 on
/// `P ∈ {2, 4}`, `M ∈ {6, 10}` GB, `β = 12` GB/s — 8 cells.
pub fn smoke_grid() -> GridConfig {
    GridConfig {
        networks: vec!["resnet50".into(), "inception_v3".into()],
        p_values: vec![2, 4],
        m_values: vec![6, 10],
        beta_values: vec![12.0],
        batch: 8,
        image_size: 1000,
    }
}

/// Serialize `records` as a `BENCH_*.json` document.
pub fn render(records: &[BaselineRecord]) -> String {
    let doc = Value::Object(vec![
        ("version".into(), Value::UInt(BASELINE_VERSION)),
        (
            "records".into(),
            Value::Array(records.iter().map(|r| r.to_json()).collect()),
        ),
    ]);
    doc.to_string_pretty()
}

/// Write `records` to `path`.
pub fn save(records: &[BaselineRecord], path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, render(records))
}

/// Load a `BENCH_*.json` document.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<BaselineRecord>, String> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    parse(&text).map_err(|e| format!("parsing {}: {e}", path.as_ref().display()))
}

/// Parse a `BENCH_*.json` document from text.
pub fn parse(text: &str) -> Result<Vec<BaselineRecord>, JsonError> {
    let doc = Value::parse(text)?;
    let version = doc.field("version")?.as_u64()?;
    if version != BASELINE_VERSION {
        return Err(JsonError::new(format!(
            "baseline version {version} (this build reads {BASELINE_VERSION})"
        )));
    }
    doc.field("records")?
        .as_array()?
        .iter()
        .map(BaselineRecord::from_json)
        .collect()
}

/// Compare `current` against `baseline`.
///
/// Violations (returned as human-readable lines, empty = pass):
/// * a cell present in one set but not the other;
/// * feasibility flips (a planner that planned in the baseline fails
///   now, or vice versa);
/// * a period drifting more than `period_tol` (relative) from baseline;
/// * a certification regression (baseline certified, current not);
/// * planning time exceeding `time_factor ×` the baseline (timing noise
///   below that threshold is tolerated — CI runners vary).
pub fn compare_baselines(
    current: &[BaselineRecord],
    baseline: &[BaselineRecord],
    period_tol: f64,
    time_factor: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let describe = |r: &BaselineRecord| {
        format!(
            "{} P={} M={}GB beta={}GB/s",
            r.network, r.p, r.m_gb, r.beta_gb
        )
    };
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            violations.push(format!("{}: missing from the current run", describe(base)));
            continue;
        };
        for (label, b, c) in [
            ("madpipe", base.madpipe, cur.madpipe),
            ("pipedream", base.pipedream, cur.pipedream),
        ] {
            match (b, c) {
                (Some(bp), Some(cp)) => {
                    let drift = (cp - bp).abs() / bp;
                    if drift > period_tol {
                        violations.push(format!(
                            "{}: {label} period {:.3} ms drifted {:.1}% from baseline {:.3} ms \
                             (tolerance {:.0}%)",
                            describe(base),
                            cp * 1e3,
                            drift * 100.0,
                            bp * 1e3,
                            period_tol * 100.0
                        ));
                    }
                }
                (Some(_), None) => violations.push(format!(
                    "{}: {label} planned in the baseline but is now infeasible",
                    describe(base)
                )),
                (None, Some(_)) => violations.push(format!(
                    "{}: {label} was infeasible in the baseline but now plans \
                     (refresh the baseline)",
                    describe(base)
                )),
                (None, None) => {}
            }
        }
        if base.certified == Some(true) && cur.certified != Some(true) {
            violations.push(format!(
                "{}: certification regressed ({:?} from certified baseline)",
                describe(base),
                cur.certified
            ));
        }
        if base.planning_seconds > 0.0 && cur.planning_seconds > base.planning_seconds * time_factor
        {
            violations.push(format!(
                "{}: planning took {:.2} s vs baseline {:.2} s (> {time_factor}x)",
                describe(base),
                cur.planning_seconds,
                base.planning_seconds
            ));
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.key() == cur.key()) {
            violations.push(format!(
                "{}: not in the baseline (refresh it)",
                describe(cur)
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(network: &str, m: u64, madpipe: Option<f64>) -> BaselineRecord {
        BaselineRecord {
            network: network.into(),
            p: 4,
            m_gb: m,
            beta_gb: 12.0,
            madpipe,
            pipedream: madpipe.map(|x| x * 1.2),
            planning_seconds: 0.5,
            certified: madpipe.map(|_| true),
            jitter_margin: madpipe.map(|_| 0.11),
            stats: None,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let records = vec![
            record("resnet50", 6, Some(0.1037)),
            record("resnet50", 3, None),
        ];
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn stats_payload_round_trips_and_stays_optional() {
        let mut with = record("resnet50", 6, Some(0.1));
        with.stats = Some(madpipe_core::PlannerStats::default().to_json());
        let records = vec![with, record("resnet50", 3, None)];
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(parsed, records);
        // The stats payload never gates.
        assert!(compare_baselines(&parsed, &records, 0.10, 5.0).is_empty());
        let stripped: Vec<BaselineRecord> = records
            .iter()
            .cloned()
            .map(|mut r| {
                r.stats = None;
                r
            })
            .collect();
        assert!(compare_baselines(&stripped, &records, 0.10, 5.0).is_empty());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = "{\"version\": 99, \"records\": []}";
        assert!(parse(text).is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let records = vec![record("resnet50", 6, Some(0.1))];
        assert!(compare_baselines(&records, &records, 0.10, 5.0).is_empty());
    }

    #[test]
    fn period_drift_beyond_tolerance_is_flagged() {
        let base = vec![record("resnet50", 6, Some(0.100))];
        let mut cur = base.clone();
        cur[0].madpipe = Some(0.108); // +8% < 10%: fine
        assert!(compare_baselines(&cur, &base, 0.10, 5.0).is_empty());
        cur[0].madpipe = Some(0.115); // +15% > 10%: violation
        let v = compare_baselines(&cur, &base, 0.10, 5.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("madpipe period"));
    }

    #[test]
    fn feasibility_flips_and_missing_cells_are_flagged() {
        let base = vec![
            record("resnet50", 6, Some(0.1)),
            record("resnet50", 3, None),
        ];
        let mut cur = vec![record("resnet50", 6, None)];
        cur[0].certified = None;
        let v = compare_baselines(&cur, &base, 0.10, 5.0);
        assert!(v.iter().any(|x| x.contains("now infeasible")));
        assert!(v.iter().any(|x| x.contains("missing from the current run")));
        assert!(v.iter().any(|x| x.contains("certification regressed")));
    }

    #[test]
    fn slow_planning_is_flagged_only_beyond_the_factor() {
        let base = vec![record("resnet50", 6, Some(0.1))];
        let mut cur = base.clone();
        cur[0].planning_seconds = 2.0; // 4x baseline < 5x: fine
        assert!(compare_baselines(&cur, &base, 0.10, 5.0).is_empty());
        cur[0].planning_seconds = 3.0; // 6x: violation
        let v = compare_baselines(&cur, &base, 0.10, 5.0);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("planning took"));
    }

    #[test]
    fn smoke_grid_is_small_and_fixed() {
        let g = smoke_grid();
        assert_eq!(g.cells().len(), 8);
        assert!(g.networks.contains(&"resnet50".to_string()));
    }
}
