//! MadPipe-DP (§4.2.2): the dynamic program that builds a non-contiguous
//! allocation with one special processor.
//!
//! `T(l, p, t_P, m_P, V)` is the smallest period of an allocation of the
//! first `l` layers on `p` *normal* processors (one stage each) and the
//! single *special* processor (any number of stages), where
//!
//! * `V` lower-bounds the delay between the end of `F_l` and the start of
//!   the matching `B_l` (propagated with the `⊕` operator as stages and
//!   communications are peeled off the back of the chain),
//! * the special processor has already been assigned stages amounting to
//!   compute load `t_P` and (under-estimated) memory `m_P`,
//! * a stage `[k, l)` placed on a *normal* processor must satisfy the
//!   exact 1F1B* memory bound `M(k, l, g)` with
//!   `g = ⌈(V + U(k,l)) / T̂⌉` live activations,
//! * the same stage placed on the *special* processor contributes
//!   `M(k, l, g−1)` (at least `g−1` copies are pinned at all times,
//!   Figure 5) — an intentional under-estimate corrected in phase 2.
//!
//! The three continuous coordinates are discretized (rounded up) on the
//! grids of [`crate::discrete`]; the recursion is memoized on grid
//! indices and the chosen split points are kept for reconstruction.
//!
//! # Dense memo
//!
//! The state space is a small rectangular grid, so the memo is a **dense
//! array indexed arithmetically** from `(l, p, t_idx, m_idx, v_idx)` —
//! no hashing on the hot path. The layout is cache-blocked along the
//! innermost recurrence axis: one contiguous `v`-row per reachable
//! `(l, p, t_idx, m_idx)` coordinate, allocated lazily on first touch
//! (the reachable set is sparse — a fully dense box would be hundreds of
//! megabytes per solve, while the rows actually touched are a few).
//! A *normal*-processor transition keeps `(t_idx, m_idx)` fixed, so the
//! whole `k` scan of a state reads rows of the same `(t, m)` column —
//! the blocking order that makes the scan cache-friendly. After a solve
//! the memo is compacted into a [`Slab`] (packed key + value + choice
//! per reachable state, ~20 B/state like the old hash shards) which the
//! session retains for replan seeding.
//!
//! # Branch-and-bound pruning
//!
//! Before recursing on a candidate stage, the solver computes an
//! optimistic period for the whole subtree from the 1F1B* load lower
//! bound — `max(remaining compute / remaining processors, largest
//! remaining layer, accumulated special load)`, see [`Dp::subtree_bound`]
//! — and skips the recursion when even that optimum cannot beat the best
//! candidate already found at this state. The bound is a true lower
//! bound on the subproblem value and the incumbent update uses a strict
//! `<`, so pruning never changes the chosen value or allocation: results
//! stay f64-bit-identical to the unpruned solver (only `memo`/state
//! counts of *untouched* subtrees differ — and those states are simply
//! never created).
//!
//! # Cross-probe reuse
//!
//! Algorithm 1 and the planner probe the DP at many target periods `T̂`
//! over the *same* chain and platform. [`ProbeSession`] owns everything
//! those probes can share:
//!
//! * the `t_P`/`m_P` axes, the per-cut communication times and the
//!   per-`(k, l)` stage cost/memory tables ([`StageTables`]), which do
//!   not depend on `T̂` at all;
//! * an **outcome cache** keyed by `(T̂, use_special)` — the bisection,
//!   the refinement grid and the contiguous fallback regularly revisit
//!   the same target, and a revisit costs one hash lookup instead of a
//!   full solve;
//! * per-probe **dense slabs** — each solve's compacted memo is retained
//!   whole, which keeps every per-`T̂` state addressable for replan
//!   seeding and makes the outcome (incl. the reconstructed allocation)
//!   of a revisited probe free;
//! * the **monotone infeasibility bound**: `MadPipe-DP(T̂)` is
//!   non-increasing in `T̂` (the same fact Algorithm 1's bisection relies
//!   on — see `crate::algorithm1`), so a target proven infeasible makes
//!   every smaller target infeasible without solving. The bound is kept
//!   per `use_special` flag because the two DP variants explore
//!   different feasible sets.
//!
//! # Incremental replans
//!
//! [`ProbeSession::derive`] builds a session for the *same chain* on a
//! platform that survives a fault. When the fault only shrinks the
//! platform (fewer GPUs, same memory and bandwidth), every DP state of
//! the healthy platform with `p` below the survivor's processor count is
//! *also* a state of the degraded DP with the identical value — the
//! recursion never reads the root processor count, only the per-state
//! `p` — so the parent's slabs seed the derived session's solves: a
//! degraded probe at a revisited `T̂` starts with the surviving prefix of
//! the `p` axis already filled in. Faults that change memory or
//! bandwidth reshape the axes/cut times and get a fresh session.
//!
//! [`ProbeSession::probe_many`] evaluates independent targets on a
//! scoped thread pool; results are merged in submission order, so the
//! session state (and therefore every downstream decision) is identical
//! whatever the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use madpipe_model::util::ceil_div;
use madpipe_model::{
    ActivationPolicy, Allocation, Chain, Layer, Platform, PolicySpec, RecomputeMode, Stage,
    StagePolicy,
};
use madpipe_obs::Registry;

use crate::discrete::{Axis, Discretization};
use crate::fxhash::FxHashMap;
use crate::oplus::oplus;
use crate::stats::{counters, DpStats, ProbeRecord, ProbeSource};

/// Result of one MadPipe-DP run at a fixed target period `T̂`.
#[derive(Debug, Clone)]
pub struct DpOutcome {
    /// The period of the produced allocation (`∞` when the memory
    /// constraints cannot be met at this `T̂`).
    pub period: f64,
    /// The reconstructed allocation: the special processor is GPU 0,
    /// normal stages occupy GPUs `1..P`. `None` iff `period` is infinite.
    pub allocation: Option<Allocation>,
    /// Per-stage execution policies chosen for `allocation` (same order
    /// as its stages). Empty iff `allocation` is `None`. Under the
    /// default [`PolicySpec`] every entry is the default policy.
    pub policies: Vec<StagePolicy>,
    /// Number of distinct memoized states (including states seeded from
    /// a parent session's slab on derived sessions).
    pub states: usize,
}

impl DpOutcome {
    fn infeasible() -> Self {
        Self {
            period: f64::INFINITY,
            allocation: None,
            policies: Vec::new(),
            states: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// No feasible decomposition from this state.
    Infeasible,
    /// `l == 0`: nothing left to place.
    Done,
    /// Stage `[k, l)` on a normal processor.
    Normal { k: u16, recompute: bool },
    /// Stage `[k, l)` on the special processor.
    Special { k: u16, recompute: bool },
}

/// [`Choice`] packed into 32 bits: tag in bits 16–17, the recompute flag
/// in bit 18, split point `k` in the low 16 (the memo stores value and
/// choice side by side per state). A clear recompute bit reproduces the
/// pre-policy encoding verbatim.
#[inline]
fn encode_choice(c: Choice) -> u32 {
    let pack = |tag: u32, k: u16, rec: bool| tag << 16 | (rec as u32) << 18 | k as u32;
    match c {
        Choice::Infeasible => 0,
        Choice::Done => 1 << 16,
        Choice::Normal { k, recompute } => pack(2, k, recompute),
        Choice::Special { k, recompute } => pack(3, k, recompute),
    }
}

#[inline]
fn decode_choice(bits: u32) -> Choice {
    let k = (bits & 0xffff) as u16;
    let recompute = bits & (1 << 18) != 0;
    match (bits >> 16) & 0x3 {
        0 => Choice::Infeasible,
        1 => Choice::Done,
        2 => Choice::Normal { k, recompute },
        _ => Choice::Special { k, recompute },
    }
}

/// Packed state key: `l` (16b) | `p` (8b) | `it` (16b) | `im` (8b) | `iv` (16b).
///
/// The planner's `validate` keeps every coordinate inside these widths,
/// which is also the proof that the coordinates fit dense indexing.
/// Keys only appear in compacted [`Slab`]s now — the live memo indexes
/// arithmetically — but they keep slab entries self-describing.
type Key = u64;

#[inline]
fn pack(l: usize, p: usize, it: u16, im: u16, iv: u16) -> Key {
    debug_assert!(l < 1 << 16, "chain length overflows the 16-bit key field");
    debug_assert!(p < 256, "processor count overflows the 8-bit key field");
    debug_assert!(im < 256, "memory index overflows the 8-bit key field");
    (l as u64) << 48 | (p as u64) << 40 | (it as u64) << 24 | (im as u64) << 16 | iv as u64
}

#[inline]
fn unpack(key: Key) -> (usize, usize, u16, u16, u16) {
    (
        (key >> 48) as usize,
        ((key >> 40) & 0xff) as usize,
        ((key >> 24) & 0xffff) as u16,
        ((key >> 16) & 0xff) as u16,
        (key & 0xffff) as u16,
    )
}

/// One memo slot: the state's value plus its encoded [`Choice`]. `value`
/// is `NaN` while unset — real DP values are finite or `+∞`, never `NaN`
/// (the planner rejects NaN inputs up front), so the sentinel is
/// unambiguous and presence needs no separate bitmap.
#[derive(Clone, Copy)]
struct MemoEntry {
    value: f64,
    choice: u32,
}

const UNSET: MemoEntry = MemoEntry {
    value: f64::NAN,
    choice: 0,
};

/// The per-solve dense memo — see the module docs for the layout.
struct DenseMemo {
    l_len: usize,
    p_len: usize,
    t_len: usize,
    m_len: usize,
    v_len: usize,
    /// `rows[((l·p_len + p)·t_len + it)·m_len + im]` is the arena row id
    /// (+1; `0` = not yet touched) of that coordinate's `v`-row.
    rows: Vec<u32>,
    /// Bump arena backing every `v`-row: row id `r` occupies
    /// `arena[r·v_len .. (r+1)·v_len]`. One contiguous allocation in
    /// touch order instead of a boxed slice per row — the row table is
    /// half the size (u32 vs pointer) and successive rows share cache
    /// lines, which is where the solve loop spends its time.
    arena: Vec<MemoEntry>,
    /// Indices of rows that have been allocated, in touch order —
    /// `compact` sorts and walks these instead of scanning the whole
    /// (mostly empty, on memory-tight instances) row table.
    touched: Vec<u32>,
    /// Number of set entries across all rows.
    filled: usize,
}

impl DenseMemo {
    fn new(l_len: usize, p_len: usize, t_len: usize, m_len: usize, v_len: usize) -> Self {
        Self {
            l_len,
            p_len,
            t_len,
            m_len,
            v_len,
            rows: vec![0; l_len * p_len * t_len * m_len],
            arena: Vec::new(),
            touched: Vec::new(),
            filled: 0,
        }
    }

    /// The `v`-row at flat index `idx`, allocated from the arena (and
    /// recorded in the touched list) on first access.
    #[inline]
    fn row_mut(&mut self, idx: usize) -> &mut [MemoEntry] {
        let mut r = self.rows[idx];
        if r == 0 {
            self.arena.resize(self.arena.len() + self.v_len, UNSET);
            self.touched.push(idx as u32);
            r = (self.arena.len() / self.v_len) as u32;
            self.rows[idx] = r;
        }
        let start = (r as usize - 1) * self.v_len;
        &mut self.arena[start..start + self.v_len]
    }

    #[inline]
    fn row_index(&self, l: usize, p: usize, it: u16, im: u16) -> usize {
        debug_assert!(
            l < self.l_len
                && p < self.p_len
                && (it as usize) < self.t_len
                && (im as usize) < self.m_len
        );
        ((l * self.p_len + p) * self.t_len + it as usize) * self.m_len + im as usize
    }

    #[inline]
    fn get(&self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> Option<(f64, Choice)> {
        let r = self.rows[self.row_index(l, p, it, im)];
        if r == 0 {
            return None;
        }
        let e = self.arena[(r as usize - 1) * self.v_len + iv as usize];
        if e.value.is_nan() {
            None
        } else {
            Some((e.value, decode_choice(e.choice)))
        }
    }

    /// Value-only probe for the solve loop's child lookups, which never
    /// need the choice (and so skip decoding it).
    #[inline]
    fn get_value(&self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> Option<f64> {
        let r = self.rows[self.row_index(l, p, it, im)];
        if r == 0 {
            return None;
        }
        let v = self.arena[(r as usize - 1) * self.v_len + iv as usize].value;
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // the five grid coordinates plus the entry
    fn insert(
        &mut self,
        l: usize,
        p: usize,
        it: u16,
        im: u16,
        iv: u16,
        value: f64,
        choice: Choice,
    ) {
        debug_assert!(!value.is_nan(), "NaN is the unset sentinel");
        let idx = self.row_index(l, p, it, im);
        let was_unset = {
            let slot = &mut self.row_mut(idx)[iv as usize];
            let was_unset = slot.value.is_nan();
            *slot = MemoEntry {
                value,
                choice: encode_choice(choice),
            };
            was_unset
        };
        if was_unset {
            self.filled += 1;
        }
    }

    fn len(&self) -> usize {
        self.filled
    }

    /// Pre-fill from a parent session's slab (replan seeding): every
    /// entry whose `p` coordinate survives on the shrunken platform is
    /// valid verbatim — the DP value of a state does not depend on the
    /// root processor count. Returns how many states were seeded.
    fn seed_from(&mut self, slab: &Slab) -> usize {
        debug_assert_eq!(
            (self.t_len, self.m_len, self.v_len),
            (slab.t_len, slab.m_len, slab.v_len),
            "seeding requires identical discretization axes"
        );
        let mut seeded = 0;
        for e in &slab.entries {
            let (l, p, it, im, iv) = unpack(e.key);
            if p >= self.p_len {
                continue;
            }
            let idx = self.row_index(l, p, it, im);
            {
                let slot = &mut self.row_mut(idx)[iv as usize];
                debug_assert!(slot.value.is_nan(), "slab entries are distinct states");
                *slot = MemoEntry {
                    value: e.value,
                    choice: e.choice,
                };
            }
            self.filled += 1;
            seeded += 1;
        }
        seeded
    }

    /// Compact to the retained slab form (row-major order — deterministic).
    fn compact(&self) -> Slab {
        let mut entries = Vec::with_capacity(self.filled);
        let mut touched = self.touched.clone();
        touched.sort_unstable();
        for ri in touched {
            let ri = ri as usize;
            let r = self.rows[ri] as usize;
            debug_assert!(r > 0, "touched rows are allocated");
            let row = &self.arena[(r - 1) * self.v_len..r * self.v_len];
            let im = (ri % self.m_len) as u16;
            let it = ((ri / self.m_len) % self.t_len) as u16;
            let lp = ri / (self.m_len * self.t_len);
            let (l, p) = (lp / self.p_len, lp % self.p_len);
            for (iv, e) in row.iter().enumerate() {
                if !e.value.is_nan() {
                    entries.push(SlabEntry {
                        key: pack(l, p, it, im, iv as u16),
                        value: e.value,
                        choice: e.choice,
                    });
                }
            }
        }
        Slab {
            t_len: self.t_len,
            m_len: self.m_len,
            v_len: self.v_len,
            entries,
        }
    }
}

/// One compacted state of a retained [`Slab`].
struct SlabEntry {
    key: Key,
    value: f64,
    choice: u32,
}

/// The compacted memo of one solve, retained by the session: compact
/// enough to keep for every probe (~20 B per reachable state, like the
/// old hash shards) while still seeding a derived session's dense memo.
struct Slab {
    t_len: usize,
    m_len: usize,
    v_len: usize,
    entries: Vec<SlabEntry>,
}

impl Slab {
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Per-`(k, l)` stage costs hoisted out of the DP inner loop, shared by
/// every probe of a session (they do not depend on `T̂`). With these, one
/// candidate evaluation is pure flat-array arithmetic over the `k` axis —
/// no prefix-sum recomputation, no per-candidate calls back into the
/// chain — which is what lets the stage scan vectorize. All values are
/// produced by the exact same expressions the chain accessors use, so
/// results are bit-identical to querying the chain directly.
struct StageTables {
    /// Row stride: tables are indexed `l * stride + k` for `k < l`.
    stride: usize,
    /// `U(k, l)` — total compute time of the stage.
    u: Vec<f64>,
    /// `F(k, l)` — forward time of the stage, the extra backward-path
    /// cost when the stage recomputes.
    fwd: Vec<f64>,
    /// `Σ W_i` over `[k, l)` — *single* weight copy; the DP multiplies
    /// by the session's weight-policy factor (3 or 2), so the default
    /// reproduces the old tripled table exactly.
    weights: Vec<u64>,
    /// `Σ a_{i-1}` over `[k, l)` (per-copy stored activations).
    stored: Vec<u64>,
    /// `a_in(k)` — the boundary input activation of a stage starting at
    /// `k` (the per-batch pin under recompute), indexed by `k` alone.
    a_in: Vec<u64>,
    /// Boundary communication buffers of stage `[k, l)` (counted only at
    /// real cuts, as in [`Chain::stage_memory`]).
    buffers: Vec<u64>,
    /// `max_{i < k} u_F(i) + u_B(i)` — largest single layer among the
    /// *remaining* (not yet placed) layers; 0 at `k = 0`.
    max_layer_prefix: Vec<f64>,
    /// `U(0, k)` — total compute of the remaining layers.
    u_prefix: Vec<f64>,
}

impl StageTables {
    fn new(chain: &Chain) -> Self {
        let n = chain.len();
        let stride = n + 1;
        let mut t = Self {
            stride,
            u: vec![0.0; stride * stride],
            fwd: vec![0.0; stride * stride],
            weights: vec![0; stride * stride],
            stored: vec![0; stride * stride],
            a_in: (0..stride).map(|k| chain.activation_in(k)).collect(),
            buffers: vec![0; stride * stride],
            max_layer_prefix: vec![0.0; stride],
            u_prefix: vec![0.0; stride],
        };
        for l in 1..=n {
            for k in 0..l {
                let i = l * stride + k;
                t.u[i] = chain.compute_time(k..l);
                t.fwd[i] = chain.forward_time(k..l);
                t.weights[i] = chain.weight_bytes(k..l);
                t.stored[i] = chain.stored_activation_bytes(k..l);
                let mut buf = 0;
                if k > 0 {
                    buf += 2 * chain.activation_in(k);
                }
                if l < n {
                    buf += 2 * chain.activation_out(l - 1);
                }
                t.buffers[i] = buf;
            }
        }
        for k in 0..n {
            t.max_layer_prefix[k + 1] =
                t.max_layer_prefix[k].max(Layer::compute_time(chain.layer(k)));
            t.u_prefix[k + 1] = chain.compute_time(0..k + 1);
        }
        t
    }
}

/// One retained probe: the compacted memo of a solve plus its outcome,
/// kept addressable so revisits and replan seeding are free.
struct Shard {
    t_hat: f64,
    use_special: bool,
    slab: Arc<Slab>,
    memo_hits: u64,
    load_prunes: u64,
    memory_prunes: u64,
    branch_prunes: u64,
    states_seeded: u64,
    outcome: DpOutcome,
}

/// How one target of a [`ProbeSession::probe_many`] batch was answered.
enum Resolution {
    /// Served from a shard absorbed before this batch.
    Cached(usize),
    /// Killed by the monotone infeasibility bound.
    Pruned,
    /// Solved in this batch (index into the batch's pending list).
    Solved(usize),
    /// Duplicate of a target solved earlier in this batch.
    Duplicate(usize),
}

/// Shared DP state for a whole planning run — see the module docs for
/// what is reused across probes and why it is sound.
pub struct ProbeSession<'a> {
    chain: &'a Chain,
    platform: &'a Platform,
    disc: Discretization,
    /// The solve-level policy configuration: weight versioning and the
    /// recompute stance every probe of this session solves under. Part
    /// of the session identity — the axes and stage tables depend on it.
    policy: PolicySpec,
    t_axis: Axis,
    m_axis: Axis,
    v_max: f64,
    /// `cut_times[k]` = round-trip communication time of the cut before
    /// layer `k` (`0` at the chain ends), shared by every probe.
    cut_times: Vec<f64>,
    /// Hoisted per-`(k, l)` stage costs, shared by every probe.
    tables: StageTables,
    shards: Vec<Shard>,
    /// `(T̂ bits, use_special)` → shard index.
    index: FxHashMap<(u64, bool), usize>,
    /// Slabs inherited from a parent session ([`ProbeSession::derive`]),
    /// keyed like the shard index; consulted once per solve.
    seeds: FxHashMap<(u64, bool), Arc<Slab>>,
    /// Largest target proven infeasible, per `use_special` flag.
    max_infeasible: [Option<f64>; 2],
    /// The session's metrics: every counter behind [`DpStats`] plus the
    /// per-solve timing/state histograms. Bumped only on the absorbing
    /// (main) thread, so values are bit-identical across thread counts.
    registry: Registry,
    records: Vec<ProbeRecord>,
    /// Largest memo-arena length seen so far (entries), used to
    /// pre-reserve the next solve's arena instead of growing it through
    /// doubling reallocations. Purely an allocation hint — never affects
    /// any computed value. Atomic because solves may run on worker
    /// threads behind `&self`.
    arena_hint: std::sync::atomic::AtomicUsize,
}

impl<'a> ProbeSession<'a> {
    /// Build a session for `chain` on `platform`; every probe of one
    /// planning run should go through the same session. Solves under the
    /// default (paper-exact) policy — see [`ProbeSession::new_with_policy`].
    pub fn new(chain: &'a Chain, platform: &'a Platform, disc: &Discretization) -> Self {
        Self::new_with_policy(chain, platform, disc, PolicySpec::default())
    }

    /// [`ProbeSession::new`] under an explicit [`PolicySpec`]. When the
    /// recompute mode is not `Never`, a stage's effective load can grow
    /// by its forward time, so the `t_P` axis and the delay cap are
    /// widened by the total forward time; under the default spec both
    /// stay exactly the historical values (adding `0.0` is a bitwise
    /// no-op on the non-negative totals involved), which is what keeps
    /// default-policy plans f64-bit-identical.
    pub fn new_with_policy(
        chain: &'a Chain,
        platform: &'a Platform,
        disc: &Discretization,
        policy: PolicySpec,
    ) -> Self {
        let total_u = chain.total_compute_time();
        let extra = match policy.recompute {
            RecomputeMode::Never => 0.0,
            RecomputeMode::Always | RecomputeMode::Auto => chain.forward_time(0..chain.len()),
        };
        let cut_times: Vec<f64> = (0..=chain.len())
            .map(|k| platform.cut_time(chain, k))
            .collect();
        let v_max = total_u + extra + cut_times.iter().sum::<f64>();
        Self {
            chain,
            platform,
            disc: *disc,
            policy,
            t_axis: Axis::new(total_u + extra, disc.t_points),
            m_axis: Axis::new(platform.memory_bytes as f64, disc.m_points),
            v_max,
            cut_times,
            tables: StageTables::new(chain),
            shards: Vec::new(),
            index: FxHashMap::default(),
            seeds: FxHashMap::default(),
            max_infeasible: [None, None],
            registry: Registry::new(),
            records: Vec::new(),
            arena_hint: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Derive a session for the same chain on `platform` — the entry
    /// point for degraded-mode replans ([`crate::degrade`]).
    ///
    /// When `platform` only *shrinks* this session's platform (at most
    /// as many GPUs, identical memory and bandwidth, hence identical
    /// axes and cut times), the derived session inherits every retained
    /// slab as a seed plus the monotone infeasibility bound: a state's
    /// DP value never depends on the root processor count, and dropping
    /// processors can only shrink the feasible set, so both carry over
    /// verbatim and every probe stays bit-identical to a cold session's.
    /// Any other change reshapes the DP state space and yields a plain
    /// fresh session.
    pub fn derive<'b>(&'b self, platform: &'b Platform) -> ProbeSession<'b>
    where
        'a: 'b,
    {
        let mut child =
            ProbeSession::new_with_policy(self.chain, platform, &self.disc, self.policy);
        let shrink_only = platform.n_gpus <= self.platform.n_gpus
            && platform.memory_bytes == self.platform.memory_bytes
            && platform.bandwidth.to_bits() == self.platform.bandwidth.to_bits()
            && child.cut_times == self.cut_times;
        if shrink_only {
            child.max_infeasible = self.max_infeasible;
            for shard in &self.shards {
                child.seeds.insert(
                    (shard.t_hat.to_bits(), shard.use_special),
                    Arc::clone(&shard.slab),
                );
            }
        }
        child
    }

    /// The chain this session was built for. Returns the `'a`-lived
    /// reference, so callers can keep using it alongside `&mut self`
    /// (the planning service plans through a long-lived session).
    pub fn chain(&self) -> &'a Chain {
        self.chain
    }

    /// The platform this session was built for (see [`ProbeSession::chain`]).
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The policy configuration every probe of this session solves under.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// Aggregate counters so far (the [`DpStats`] view over the
    /// session's metrics registry).
    pub fn stats(&self) -> DpStats {
        DpStats::from_registry(&self.registry)
    }

    /// The live metrics registry of this session.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The probe timeline so far.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }

    /// Drain the timeline (the counters stay).
    pub fn take_records(&mut self) -> Vec<ProbeRecord> {
        std::mem::take(&mut self.records)
    }

    /// Probe the DP at one target period.
    pub fn probe(&mut self, t_hat: f64, use_special: bool, source: ProbeSource) -> DpOutcome {
        self.probe_many(&[t_hat], use_special, source, 1)
            .pop()
            .expect("one target in, one outcome out")
    }

    /// Probe the DP at several independent targets, solving uncached ones
    /// on up to `threads` scoped workers. Outcomes keep the input order
    /// and the session ends up in the same state as `threads = 1` — the
    /// solves are pure functions of `(chain, platform, T̂)` and are merged
    /// in submission order.
    pub fn probe_many(
        &mut self,
        targets: &[f64],
        use_special: bool,
        source: ProbeSource,
        threads: usize,
    ) -> Vec<DpOutcome> {
        for &t_hat in targets {
            assert!(t_hat > 0.0 && t_hat.is_finite(), "T̂ must be positive");
        }

        // Classify each target; collect the distinct ones that need a solve.
        let mut resolutions: Vec<Resolution> = Vec::with_capacity(targets.len());
        let mut pending: Vec<f64> = Vec::new();
        let mut pending_index: FxHashMap<u64, usize> = FxHashMap::default();
        for &t_hat in targets {
            if let Some(&i) = self.index.get(&(t_hat.to_bits(), use_special)) {
                resolutions.push(Resolution::Cached(i));
            } else if self.max_infeasible[use_special as usize].is_some_and(|b| t_hat <= b) {
                resolutions.push(Resolution::Pruned);
            } else if let Some(&j) = pending_index.get(&t_hat.to_bits()) {
                resolutions.push(Resolution::Duplicate(j));
            } else {
                pending_index.insert(t_hat.to_bits(), pending.len());
                resolutions.push(Resolution::Solved(pending.len()));
                pending.push(t_hat);
            }
        }

        // Solve the pending targets (in parallel when asked to), then
        // absorb the shards in submission order for determinism.
        let solved = self.solve_batch(&pending, use_special, threads);
        let first_new_shard = self.shards.len();
        for (shard, _) in &solved {
            debug_assert!(shard.outcome.period.is_finite() || shard.outcome.allocation.is_none());
        }
        let seconds: Vec<f64> = solved.iter().map(|(_, s)| *s).collect();
        for (shard, _) in solved {
            self.absorb(shard);
        }

        // Emit outcomes and the timeline in target order.
        let mut out = Vec::with_capacity(targets.len());
        for (&t_hat, resolution) in targets.iter().zip(&resolutions) {
            let (outcome, states, cached, pruned, secs) = match *resolution {
                Resolution::Cached(i) => {
                    let shard = &self.shards[i];
                    self.registry.inc(counters::DP_OUTCOME_HITS);
                    self.registry
                        .add(counters::DP_STATES_REUSED, shard.slab.len() as u64);
                    (
                        shard.outcome.clone(),
                        shard.outcome.states,
                        true,
                        false,
                        0.0,
                    )
                }
                Resolution::Pruned => {
                    self.registry.inc(counters::DP_BOUND_PRUNES);
                    (DpOutcome::infeasible(), 0, false, true, 0.0)
                }
                Resolution::Solved(j) => {
                    let shard = &self.shards[first_new_shard + j];
                    self.registry
                        .observe(counters::DP_SOLVE_SECONDS, seconds[j]);
                    self.registry
                        .observe(counters::DP_SOLVE_STATES, shard.outcome.states as f64);
                    (
                        shard.outcome.clone(),
                        shard.outcome.states,
                        false,
                        false,
                        seconds[j],
                    )
                }
                Resolution::Duplicate(j) => {
                    let shard = &self.shards[first_new_shard + j];
                    self.registry.inc(counters::DP_OUTCOME_HITS);
                    self.registry
                        .add(counters::DP_STATES_REUSED, shard.slab.len() as u64);
                    (
                        shard.outcome.clone(),
                        shard.outcome.states,
                        true,
                        false,
                        0.0,
                    )
                }
            };
            self.records.push(ProbeRecord {
                source,
                t_hat,
                use_special,
                period: outcome.period,
                states,
                cached,
                pruned,
                seconds: secs,
            });
            out.push(outcome);
        }
        out
    }

    /// Solve `pending` targets, each with a fresh memo over the shared
    /// axes/cut/stage tables. Returns `(shard, seconds)` in `pending`
    /// order.
    fn solve_batch(&self, pending: &[f64], use_special: bool, threads: usize) -> Vec<(Shard, f64)> {
        let threads = threads.max(1).min(pending.len().max(1));
        if threads == 1 || pending.len() == 1 {
            return pending
                .iter()
                .map(|&t| {
                    let start = Instant::now();
                    let shard = self.run_solve(t, use_special);
                    (shard, start.elapsed().as_secs_f64())
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<(Shard, f64)>> = (0..pending.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let session = &*self;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, Shard, f64)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= pending.len() {
                            break;
                        }
                        let start = Instant::now();
                        let shard = session.run_solve(pending[i], use_special);
                        local.push((i, shard, start.elapsed().as_secs_f64()));
                    }
                    local
                }));
            }
            for h in handles {
                for (i, shard, secs) in h.join().expect("DP worker panicked") {
                    slots[i] = Some((shard, secs));
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every pending target solved"))
            .collect()
    }

    /// One full DP solve at `t_hat`. Pure: reads only the shared session
    /// state, so independent solves can run concurrently.
    fn run_solve(&self, t_hat: f64, use_special: bool) -> Shard {
        let mut sp = madpipe_obs::span("dp.solve");
        if let Some(sp) = sp.as_mut() {
            sp.arg("t_hat", t_hat);
        }
        let p_normal = if use_special {
            self.platform.n_gpus - 1
        } else {
            self.platform.n_gpus
        };
        // Without the special processor `t_P`/`m_P` are pinned at 0, so
        // those axes collapse to a single dense index.
        let (t_len, m_len) = if use_special {
            (self.t_axis.len(), self.m_axis.len())
        } else {
            (1, 1)
        };
        let mut memo = DenseMemo::new(
            self.chain.len() + 1,
            p_normal + 1,
            t_len,
            m_len,
            self.disc.v_points,
        );
        // Grow the arena to the largest size any solve has needed yet in
        // one reservation, instead of through doubling re-copies.
        memo.arena
            .reserve(self.arena_hint.load(std::sync::atomic::Ordering::Relaxed));
        let states_seeded = match self.seeds.get(&(t_hat.to_bits(), use_special)) {
            Some(slab) => memo.seed_from(slab) as u64,
            None => 0,
        };
        // Under `Auto` the transition caches carry one lane per
        // activation choice (the effective stage load differs); fixed
        // modes collapse to a single lane.
        let n_pol = match self.policy.recompute {
            RecomputeMode::Auto => 2,
            _ => 1,
        };
        let mut dp = Dp {
            platform: self.platform,
            t_hat,
            use_special,
            policy: self.policy,
            w_mult: self.policy.weights.multiplier(),
            n_pol,
            t_axis: &self.t_axis,
            m_axis: &self.m_axis,
            v_axis: Axis::new(self.v_max.max(t_hat), self.disc.v_points),
            cut_times: &self.cut_times,
            tables: &self.tables,
            memo,
            trans: vec![
                TransEntry { g: 0, iv_next: 0 };
                (self.chain.len() + 1) * self.tables.stride * self.disc.v_points * n_pol
            ],
            trans_t: vec![u16::MAX; (self.chain.len() + 1) * self.tables.stride * t_len * n_pol],
            memo_hits: 0,
            load_prunes: 0,
            memory_prunes: 0,
            branch_prunes: 0,
        };
        let period = dp.solve(self.chain.len(), p_normal, 0, 0, 0);
        let (allocation, policies) = if period.is_finite() {
            match dp.reconstruct(self.chain.len(), p_normal) {
                Some((alloc, policies)) => (Some(alloc), policies),
                None => (None, Vec::new()),
            }
        } else {
            (None, Vec::new())
        };
        let states = dp.memo.len();
        self.arena_hint
            .fetch_max(dp.memo.arena.len(), std::sync::atomic::Ordering::Relaxed);
        Shard {
            t_hat,
            use_special,
            slab: Arc::new(dp.memo.compact()),
            memo_hits: dp.memo_hits,
            load_prunes: dp.load_prunes,
            memory_prunes: dp.memory_prunes,
            branch_prunes: dp.branch_prunes,
            states_seeded,
            outcome: DpOutcome {
                period,
                allocation,
                policies,
                states,
            },
        }
    }

    /// Merge a solved shard into the session (counters, infeasibility
    /// bound, outcome cache).
    fn absorb(&mut self, shard: Shard) {
        self.registry.inc(counters::DP_SOLVES);
        self.registry.add(
            counters::DP_STATES_CREATED,
            shard.slab.len() as u64 - shard.states_seeded,
        );
        self.registry
            .add(counters::DP_STATES_SEEDED, shard.states_seeded);
        self.registry.add(counters::DP_MEMO_HITS, shard.memo_hits);
        self.registry
            .add(counters::DP_LOAD_PRUNES, shard.load_prunes);
        self.registry
            .add(counters::DP_MEMORY_PRUNES, shard.memory_prunes);
        self.registry
            .add(counters::DP_BRANCH_PRUNES, shard.branch_prunes);
        if shard.outcome.period.is_infinite() {
            let bound = &mut self.max_infeasible[shard.use_special as usize];
            *bound = Some(bound.map_or(shard.t_hat, |b| b.max(shard.t_hat)));
        }
        self.index.insert(
            (shard.t_hat.to_bits(), shard.use_special),
            self.shards.len(),
        );
        self.shards.push(shard);
    }
}

/// Cached `(l, k, iv)`-dependent transition terms: the group count `g`
/// and the rounded-up next delay index. `g = 0` marks an unset entry
/// (the real value is always ≥ 1 after the `.max(1)` clamp).
#[derive(Clone, Copy)]
struct TransEntry {
    g: u64,
    iv_next: u16,
}

/// Const-generic recompute modes for [`Dp::solve_mode`] — one
/// monomorphized solver body per session stance.
const MODE_NEVER: u8 = 0;
const MODE_ALWAYS: u8 = 1;
const MODE_AUTO: u8 = 2;

struct Dp<'a> {
    platform: &'a Platform,
    t_hat: f64,
    use_special: bool,
    /// The session's solve-level policy configuration.
    policy: PolicySpec,
    /// Weight bytes multiplier (`3` full versioning, `2` 2BW) applied to
    /// the single-copy weight table.
    w_mult: u64,
    /// Transition-cache lanes: 2 under `Auto` (store/recompute differ in
    /// effective load), 1 under the fixed modes.
    n_pol: usize,
    t_axis: &'a Axis,
    m_axis: &'a Axis,
    v_axis: Axis,
    cut_times: &'a [f64],
    tables: &'a StageTables,
    memo: DenseMemo,
    /// Per-`(l, k)` rows (same `l * stride + k` indexing as the stage
    /// tables) of per-`iv` transition terms, filled lazily. The group
    /// count and the ⊕-chain depend only on the layer range and the
    /// delay coordinate, so every `(p, t_P, m_P)` state sharing them can
    /// reuse one computation instead of redoing four `ceil_div`s and a
    /// grid round-up per candidate. Flat (`(l·stride + k)·v_len + iv`)
    /// and zero-initialized: the table is small enough (stage pairs ×
    /// `v` points) that direct indexing beats any lazy-row scheme.
    trans: Vec<TransEntry>,
    /// Same flat layout for the special branch's `t_P` round-up keyed by
    /// `(l, k, it)`. `u16::MAX` marks unset (axes are capped far below).
    trans_t: Vec<u16>,
    memo_hits: u64,
    load_prunes: u64,
    memory_prunes: u64,
    branch_prunes: u64,
}

impl Dp<'_> {
    /// Optimistic lower bound on `solve(k, p, ·)` when the special
    /// processor's accumulated (grid-rounded) load is `t_acc` — the
    /// 1F1B* load argument: the remaining compute `U(0, k)` plus the
    /// already-accumulated special load must be carried by at most
    /// `p` normal processors and the special one, no stage can beat its
    /// largest layer, and the special load itself only ever rounds up.
    /// Exact (a true lower bound), so branch-and-bound on it never
    /// changes any DP value.
    #[inline]
    fn subtree_bound(&self, k: usize, p: usize, t_acc: f64) -> f64 {
        if k == 0 {
            // Base case: `solve(0, p, it, ·, ·)` is exactly `t_acc`.
            return t_acc;
        }
        let bins = p + self.use_special as usize;
        if bins == 0 {
            return f64::INFINITY;
        }
        let spread = (self.tables.u_prefix[k] + t_acc) / bins as f64;
        spread.max(self.tables.max_layer_prefix[k]).max(t_acc)
    }

    /// `(g, iv_next)` for extending the plan with stage `k..l` from delay
    /// coordinate `iv` under policy lane `pol`, computed once per
    /// distinct `(l, k, iv, pol)` and then served from the cache.
    /// `idx` is the caller-computed flat cache slot
    /// `((l·stride + k)·v_len + iv)·n_pol + pol`; `v_val`, `u` and
    /// `cut` are pure functions of those coordinates (`u` is the
    /// policy's *effective* load), so caching is bit-transparent.
    #[inline]
    fn transition(&mut self, idx: usize, v_val: f64, u: f64, cut: f64) -> (u64, u16) {
        let cached = self.trans[idx];
        if cached.g != 0 {
            return (cached.g, cached.iv_next);
        }
        let g = ceil_div(v_val + u, self.t_hat).max(1);
        let v_next = oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat);
        let iv_next = self.v_axis.index_up(v_next);
        self.trans[idx] = TransEntry { g, iv_next };
        (g, iv_next)
    }

    /// Rounded-up special-processor load index after taking stage `k..l`
    /// from load coordinate `it` under policy lane `pol`, cached per
    /// `(l, k, it, pol)` — `idx` is the caller-computed flat slot over
    /// those coordinates.
    #[inline]
    fn transition_t(&mut self, idx: usize, t_val: f64, u: f64) -> u16 {
        let cached = self.trans_t[idx];
        if cached != u16::MAX {
            return cached;
        }
        let it_next = self.t_axis.index_up(t_val + u);
        self.trans_t[idx] = it_next;
        it_next
    }

    /// Child-state value: memo probe inlined ahead of the recursion so
    /// the (majority) hit path skips the full `solve_uncached` body and
    /// misses probe the memo exactly once.
    #[inline]
    fn child(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        if let Some(v) = self.memo.get_value(l, p, it, im, iv) {
            self.memo_hits += 1;
            return v;
        }
        self.solve_uncached(l, p, it, im, iv)
    }

    /// Root entry point — identical to [`Self::child`], kept under the
    /// conventional name for the callers outside the hot loop.
    fn solve(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        self.child(l, p, it, im, iv)
    }

    /// Evaluate a state known to be absent from the memo. One-time
    /// dispatch into the mode-monomorphized body: the recompute stance
    /// is fixed for a whole session, so baking it in as a const lets
    /// the compiler delete the policy lane loop, the recompute memory
    /// terms, and the `fwd`/`a_in` table loads from the `Never` (paper
    /// default) scan — keeping the default hot path's instruction
    /// stream and cache footprint identical to the pre-policy planner.
    fn solve_uncached(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        match self.policy.recompute {
            RecomputeMode::Never => self.solve_mode::<MODE_NEVER>(l, p, it, im, iv),
            RecomputeMode::Always => self.solve_mode::<MODE_ALWAYS>(l, p, it, im, iv),
            RecomputeMode::Auto => self.solve_mode::<MODE_AUTO>(l, p, it, im, iv),
        }
    }

    /// [`Self::solve_uncached`] body, monomorphized per recompute mode.
    fn solve_mode<const MODE: u8>(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        if l == 0 {
            let v = self.t_axis.value(it);
            self.memo.insert(l, p, it, im, iv, v, Choice::Done);
            return v;
        }

        let t_val = self.t_axis.value(it);
        let m_val = self.m_axis.value(im);
        let v_val = self.v_axis.value(iv);
        let memory = self.platform.memory_bytes;
        let row = l * self.tables.stride;
        // Hoisted table slices: every candidate index is `k < l`, which
        // the slice lengths prove to the bounds checker once. Copying the
        // `&'a` references out keeps the slices independent of the `&mut
        // self` reborrows inside the loop.
        let tables = self.tables;
        let us = &tables.u[row..row + l];
        let fwds = &tables.fwd[row..row + l];
        let weightss = &tables.weights[row..row + l];
        let storeds = &tables.stored[row..row + l];
        let a_ins = &tables.a_in[..l];
        let bufferss = &tables.buffers[row..row + l];
        let u_prefix = &tables.u_prefix[..l];
        let max_layer_prefix = &tables.max_layer_prefix[..l];
        let cut_times = self.cut_times;
        let cuts = &cut_times[..l];
        // Subtree-bound denominators (processors left for the remaining
        // prefix, per branch), constant across the candidate scan.
        let bins_n = (p + self.use_special as usize).saturating_sub(1) as f64;
        let bins_s = (p + self.use_special as usize) as f64;

        let mut best = f64::INFINITY;
        let mut choice = Choice::Infeasible;

        // Policy facts as consts of the monomorphized mode: the
        // optimizer folds the lane loop away entirely for the fixed
        // modes and dead-codes the untaken branch's memory terms.
        let offers_store = MODE != MODE_ALWAYS;
        let offers_rec = MODE != MODE_NEVER;
        let n_pol: usize = if MODE == MODE_AUTO { 2 } else { 1 };
        debug_assert_eq!(n_pol, self.n_pol);
        let w_mult = self.w_mult;
        let v_len = self.v_axis.len();
        let t_len = self.t_axis.len();

        for k in (0..l).rev() {
            let u_store = us[k];
            let fwd = if offers_rec { fwds[k] } else { 0.0 };
            // Every offered option costs at least the stage's smallest
            // effective load (store: `U`; recompute adds the forward
            // pass), and both grow as the stage extends towards the
            // front — once the minimum reaches the best period found at
            // this state, no larger stage can improve it (exact prune).
            let u_min = if offers_store { u_store } else { u_store + fwd };
            if u_min >= best {
                self.load_prunes += 1;
                break;
            }
            let cut = cuts[k];

            let weights = w_mult * weightss[k];
            let stored = storeds[k];
            let buffers = bufferss[k];
            let a_in = if offers_rec { a_ins[k] } else { 0 };
            let working_set = stored - a_in;

            // Store-lane cores of this `k`, kept for the memory early
            // break below. Set whenever the store option is offered: the
            // load prune above uses the store load in that case, so the
            // store lane is never skipped by its own load check.
            let mut store_cores: Option<(u64, u64)> = None;

            for pol in 0..n_pol {
                let rec = match MODE {
                    MODE_NEVER => false,
                    MODE_ALWAYS => true,
                    _ => pol == 1,
                };
                let u = if rec { u_store + fwd } else { u_store };
                if u >= best {
                    continue;
                }
                let idx = ((row + k) * v_len + iv as usize) * n_pol + pol;
                let (g, iv_next) = self.transition(idx, v_val, u, cut);

                // Memory terms of `M(k, l, g)` under this policy: a
                // storing stage pins `ā` per live batch; a recomputing
                // stage pins only the boundary input per batch and holds
                // the rest of its activations once, as a static
                // recompute working set.
                let (live, static_extra) = if rec {
                    (a_in, working_set)
                } else {
                    (stored, 0)
                };
                let normal_core = weights + g * live + static_extra;
                let special_core = m_val as u64 + weights + (g - 1) * live + static_extra;
                if !rec {
                    store_cores = Some((normal_core, special_core));
                }

                // Both options also cost at least the boundary cut time,
                // so a candidate whose cut already meets the incumbent
                // cannot win whatever its subtree solves to — skip
                // straight to the memory break test. (Cuts are not
                // monotone in `k`, so this cannot break out of the scan
                // the way the load prune does.)
                if cut >= best {
                    continue;
                }

                // Normal processor option. Recurse only when even the
                // optimistic subtree period can still beat the incumbent
                // (the bound is `subtree_bound` inlined against the
                // hoisted prefix slices).
                if p >= 1 && normal_core + buffers <= memory {
                    let bound = if k == 0 {
                        t_val
                    } else if bins_n == 0.0 {
                        f64::INFINITY
                    } else {
                        ((u_prefix[k] + t_val) / bins_n)
                            .max(max_layer_prefix[k])
                            .max(t_val)
                    };
                    debug_assert_eq!(
                        bound.to_bits(),
                        self.subtree_bound(k, p - 1, t_val).to_bits()
                    );
                    let floor = u.max(cut).max(bound);
                    if floor < best {
                        // `k == 0` is the terminal state: its value is
                        // exactly the rounded special load `t_val`, no
                        // recursion or memo traffic needed.
                        let sub = if k == 0 {
                            t_val
                        } else {
                            self.child(k, p - 1, it, im, iv_next)
                        };
                        let t_n = u.max(cut).max(sub);
                        if t_n < best {
                            best = t_n;
                            choice = Choice::Normal {
                                k: k as u16,
                                recompute: rec,
                            };
                        }
                    } else {
                        self.branch_prunes += 1;
                    }
                }

                // Special processor option, same branch-and-bound.
                let m_next = m_val + (weights + (g - 1) * live + static_extra + buffers) as f64;
                if self.use_special && !self.m_axis.overflows(m_next) && m_next <= memory as f64 {
                    let idx_t = ((row + k) * t_len + it as usize) * n_pol + pol;
                    let it_next = self.transition_t(idx_t, t_val, u);
                    let im_next = self.m_axis.index_up(m_next);
                    let t_next_val = self.t_axis.value(it_next);
                    let bound = if k == 0 {
                        t_next_val
                    } else {
                        ((u_prefix[k] + t_next_val) / bins_s)
                            .max(max_layer_prefix[k])
                            .max(t_next_val)
                    };
                    debug_assert_eq!(
                        bound.to_bits(),
                        self.subtree_bound(k, p, t_next_val).to_bits()
                    );
                    let floor = t_next_val.max(cut).max(bound);
                    if floor < best {
                        let sub = if k == 0 {
                            t_next_val
                        } else {
                            self.child(k, p, it_next, im_next, iv_next)
                        };
                        let t_s = t_next_val.max(cut).max(sub);
                        if t_s < best {
                            best = t_s;
                            choice = Choice::Special {
                                k: k as u16,
                                recompute: rec,
                            };
                        }
                    } else {
                        self.branch_prunes += 1;
                    }
                }
            }

            // Early break: every offered policy's cores already exceed
            // memory at every smaller `k` too. The store lane uses its
            // exact cores (monotone: weights, `ā` and `g` only grow as
            // the stage extends). The recompute lane uses `g`-free lower
            // bounds — `g·a_in + (ā − a_in) ≥ ā` since `g ≥ 1`, and both
            // `ā(k, l)` and `ā(k, l) − a_in(k)` grow as `k` decreases —
            // so breaking is sound for it as well.
            let store_blocked = match store_cores {
                Some((nc, sc)) => nc > memory && (sc > memory || !self.use_special),
                None => true, // store not offered under `Always`
            };
            let rec_blocked = if offers_rec {
                let qn = weights + stored;
                let qs = m_val as u64 + weights + working_set;
                qn > memory && (qs > memory || !self.use_special)
            } else {
                true
            };
            if store_blocked && rec_blocked {
                self.memory_prunes += 1;
                break;
            }
        }

        self.memo.insert(l, p, it, im, iv, best, choice);
        best
    }

    /// The [`StagePolicy`] the session's spec assigns to a stage whose
    /// recompute flag was `rec`.
    fn stage_policy(&self, rec: bool) -> StagePolicy {
        self.policy.stage_policy(if rec {
            ActivationPolicy::Recompute
        } else {
            ActivationPolicy::Store
        })
    }

    /// Walk the memoized choices from the root and emit the allocation
    /// plus the per-stage policies (same order as the stages).
    fn reconstruct(&self, l0: usize, p0: usize) -> Option<(Allocation, Vec<StagePolicy>)> {
        let n_gpus = self.platform.n_gpus;
        let mut stages_rev: Vec<Stage> = Vec::new();
        let mut policies_rev: Vec<StagePolicy> = Vec::new();
        let (mut l, mut p, mut it, mut im, mut iv) = (l0, p0, 0u16, 0u16, 0u16);
        let mut next_normal_gpu = n_gpus - 1; // count down; GPU 0 is special
        loop {
            // Terminal: the solve loop computes `k == 0` children
            // directly, so the memo holds no `l == 0` states.
            if l == 0 {
                break;
            }
            let (_, choice) = self.memo.get(l, p, it, im, iv)?;
            let row = l * self.tables.stride;
            match choice {
                Choice::Infeasible => return None,
                Choice::Done => break,
                Choice::Normal { k: k16, recompute } => {
                    let k = k16 as usize;
                    stages_rev.push(Stage {
                        layers: k..l,
                        gpu: next_normal_gpu,
                    });
                    policies_rev.push(self.stage_policy(recompute));
                    next_normal_gpu = next_normal_gpu.saturating_sub(1);
                    let v_val = self.v_axis.value(iv);
                    let mut u = self.tables.u[row + k];
                    if recompute {
                        u += self.tables.fwd[row + k];
                    }
                    let cut = self.cut_times[k];
                    iv = self
                        .v_axis
                        .index_up(oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat));
                    l = k;
                    p -= 1;
                }
                Choice::Special { k: k16, recompute } => {
                    let k = k16 as usize;
                    stages_rev.push(Stage {
                        layers: k..l,
                        gpu: 0,
                    });
                    policies_rev.push(self.stage_policy(recompute));
                    let v_val = self.v_axis.value(iv);
                    let t_val = self.t_axis.value(it);
                    let m_val = self.m_axis.value(im);
                    let mut u = self.tables.u[row + k];
                    if recompute {
                        u += self.tables.fwd[row + k];
                    }
                    let g = ceil_div(v_val + u, self.t_hat).max(1);
                    let cut = self.cut_times[k];
                    let stored = self.tables.stored[row + k];
                    let a_in = self.tables.a_in[k];
                    let (live, static_extra) = if recompute {
                        (a_in, stored - a_in)
                    } else {
                        (stored, 0)
                    };
                    let stage_mem = self.w_mult * self.tables.weights[row + k]
                        + (g - 1) * live
                        + static_extra
                        + self.tables.buffers[row + k];
                    it = self.t_axis.index_up(t_val + u);
                    im = self.m_axis.index_up(m_val + stage_mem as f64);
                    iv = self
                        .v_axis
                        .index_up(oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat));
                    l = k;
                }
            }
        }
        stages_rev.reverse();
        policies_rev.reverse();
        let alloc = Allocation::new(stages_rev, l0, n_gpus).ok()?;
        Some((alloc, policies_rev))
    }
}

/// Run MadPipe-DP at target period `t_hat` and reconstruct the resulting
/// allocation (special processor = GPU 0).
///
/// One-shot convenience over [`ProbeSession`]; callers probing several
/// targets should hold a session instead to share state between probes.
pub fn madpipe_dp(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
) -> DpOutcome {
    madpipe_dp_with(chain, platform, t_hat, disc, true)
}

/// [`madpipe_dp`] with the special processor optionally disabled: with
/// `use_special = false` the DP degenerates to a *memory-aware contiguous*
/// partitioner (every GPU gets one stage, exact 1F1B* memory estimates) —
/// the ablation isolating the contribution of non-contiguous allocations.
pub fn madpipe_dp_with(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
    use_special: bool,
) -> DpOutcome {
    ProbeSession::new(chain, platform, disc).probe(t_hat, use_special, ProbeSource::Bisection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    fn disc() -> Discretization {
        Discretization::default()
    }

    #[test]
    fn single_gpu_takes_everything_on_special() {
        let c = chain(&[(1.0, 1.0), (2.0, 2.0)], 10, 0);
        let platform = Platform::new(1, 1 << 30, 100.0).unwrap();
        let out = madpipe_dp(&c, &platform, 6.0, &disc());
        assert!((out.period - 6.0).abs() < 0.2);
        let alloc = out.allocation.unwrap();
        assert!(alloc.stages().iter().all(|s| s.gpu == 0));
    }

    #[test]
    fn balanced_chain_splits_across_gpus() {
        let c = chain(&[(1.0, 1.0); 8], 1, 0);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 4.0, &disc());
        // 16 compute over 4 GPUs → period ≈ 4 (comm negligible).
        assert!(out.period <= 4.3, "period {}", out.period);
        let alloc = out.allocation.unwrap();
        assert_eq!(alloc.n_gpus(), 4);
        // Every GPU busy ≈ 4.
        for g in 0..4 {
            assert!(alloc.gpu_compute_load(&c, g) <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn uses_the_special_gpu_for_imbalanced_chains() {
        // Loads 4, 8, 4 on 2 GPUs: only {0,2} vs {1} balances at 8.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 1, 0);
        let platform = Platform::new(2, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 8.0, &disc());
        assert!(out.period <= 8.4, "period {}", out.period);
        let alloc = out.allocation.unwrap();
        // layers 0 and 2 on the special GPU 0, layer 1 on a normal GPU.
        assert_eq!(alloc.stages()[0].gpu, 0);
        assert_eq!(alloc.stages()[2].gpu, 0);
        assert_ne!(alloc.stages()[1].gpu, 0);
    }

    #[test]
    fn memory_pressure_blocks_tight_targets() {
        // Huge activations: at small T̂ the first stage needs many copies.
        let c = chain(&[(1.0, 1.0); 6], 1 << 20, 0);
        let tight = Platform::new(3, 4 << 20, 1e9).unwrap();
        let small = madpipe_dp(&c, &tight, 4.0, &disc());
        let large = madpipe_dp(&c, &tight, 12.0, &disc());
        // Larger targets relax memory → period cannot get worse.
        if small.period.is_finite() {
            assert!(large.period <= small.period + 1e-6);
        } else {
            assert!(large.period.is_finite());
        }
    }

    #[test]
    fn impossible_memory_is_reported_infeasible() {
        let c = chain(&[(1.0, 1.0)], 1 << 30, 1 << 28);
        let platform = Platform::new(2, 1 << 20, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 2.0, &disc());
        assert!(out.period.is_infinite());
        assert!(out.allocation.is_none());
    }

    #[test]
    fn dp_period_is_monotone_in_t_hat() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
            1 << 18,
            1 << 10,
        );
        let platform = Platform::new(3, 3 << 20, 1e8).unwrap();
        let mut last = f64::INFINITY;
        for t_hat in [2.0f64, 4.0, 8.0, 16.0, 32.0] {
            let out = madpipe_dp(&c, &platform, t_hat, &disc());
            assert!(
                out.period <= last + 0.35,
                "period should (weakly) improve as T̂ grows: {} then {}",
                last,
                out.period
            );
            last = out.period.min(last);
        }
    }

    #[test]
    fn allocation_covers_the_chain_in_order() {
        let c = chain(&[(1.0, 1.0); 10], 100, 10);
        let platform = Platform::new(4, 1 << 30, 1e6).unwrap();
        let out = madpipe_dp(&c, &platform, 5.0, &disc());
        let alloc = out.allocation.unwrap();
        let part = alloc.partition();
        assert_eq!(part.stages().first().unwrap().start, 0);
        assert_eq!(part.stages().last().unwrap().end, 10);
    }

    #[test]
    fn session_matches_one_shot_solves() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0)],
            1 << 16,
            1 << 8,
        );
        let platform = Platform::new(3, 8 << 20, 1e7).unwrap();
        let mut session = ProbeSession::new(&c, &platform, &disc());
        for t_hat in [3.0, 5.0, 9.0] {
            let one_shot = madpipe_dp(&c, &platform, t_hat, &disc());
            let probed = session.probe(t_hat, true, ProbeSource::Bisection);
            assert_eq!(probed.period, one_shot.period, "T̂ = {t_hat}");
            assert_eq!(probed.states, one_shot.states);
            assert_eq!(
                probed.allocation.map(|a| a.stages().to_vec()),
                one_shot.allocation.map(|a| a.stages().to_vec())
            );
        }
    }

    #[test]
    fn revisited_targets_hit_the_outcome_cache() {
        let c = chain(&[(1.0, 1.0); 6], 1 << 10, 1 << 8);
        let platform = Platform::new(3, 1 << 26, 1e7).unwrap();
        let mut session = ProbeSession::new(&c, &platform, &disc());
        let a = session.probe(4.0, true, ProbeSource::Bisection);
        assert_eq!(session.stats().solves, 1);
        let b = session.probe(4.0, true, ProbeSource::Refinement);
        assert_eq!(session.stats().solves, 1, "second probe must not re-solve");
        assert_eq!(session.stats().outcome_hits, 1);
        assert!(session.stats().states_reused > 0);
        assert_eq!(a.period, b.period);
        // The two DP variants are cached independently.
        session.probe(4.0, false, ProbeSource::ContiguousFallback);
        assert_eq!(session.stats().solves, 2);
    }

    #[test]
    fn infeasibility_bound_prunes_smaller_targets() {
        // Memory-hopeless at small targets: activations dominate.
        let c = chain(&[(1.0, 1.0); 6], 1 << 20, 0);
        let tight = Platform::new(3, 4 << 20, 1e9).unwrap();
        let mut session = ProbeSession::new(&c, &tight, &disc());
        let at_four = session.probe(4.0, true, ProbeSource::Bisection);
        if at_four.period.is_infinite() {
            let smaller = session.probe(2.0, true, ProbeSource::Bisection);
            assert!(smaller.period.is_infinite());
            assert_eq!(session.stats().bound_prunes, 1, "2.0 ≤ 4.0 must be pruned");
            assert_eq!(session.stats().solves, 1);
            // A larger target is *not* covered by the bound.
            session.probe(50.0, true, ProbeSource::Bisection);
            assert_eq!(session.stats().solves, 2);
        }
    }

    #[test]
    fn probe_many_is_deterministic_across_thread_counts() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
            1 << 18,
            1 << 10,
        );
        let platform = Platform::new(3, 3 << 20, 1e8).unwrap();
        let targets = [2.0, 3.5, 5.0, 5.0, 8.0, 13.0, 21.0];
        let mut serial = ProbeSession::new(&c, &platform, &disc());
        let mut parallel = ProbeSession::new(&c, &platform, &disc());
        let a = serial.probe_many(&targets, true, ProbeSource::Refinement, 1);
        let b = parallel.probe_many(&targets, true, ProbeSource::Refinement, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.period.to_bits() == y.period.to_bits(),
                "periods must be bit-identical"
            );
            assert_eq!(x.states, y.states);
            assert_eq!(
                x.allocation.as_ref().map(|a| a.stages().to_vec()),
                y.allocation.as_ref().map(|a| a.stages().to_vec())
            );
        }
        // Counters (everything except wall-clock) agree too.
        assert_eq!(serial.stats(), parallel.stats());
        // The duplicate 5.0 was answered from the batch, not re-solved.
        assert_eq!(serial.stats().outcome_hits, 1);
        assert_eq!(serial.stats().solves, targets.len() - 1);
    }

    #[test]
    fn dense_memo_inserts_gets_and_compacts() {
        let normal = Choice::Normal {
            k: 9,
            recompute: false,
        };
        let special = Choice::Special {
            k: 3,
            recompute: true,
        };
        let mut m = DenseMemo::new(4, 3, 5, 2, 7);
        assert_eq!(m.len(), 0);
        assert!(m.get(1, 2, 3, 1, 6).is_none());
        m.insert(1, 2, 3, 1, 6, 2.5, normal);
        m.insert(0, 0, 0, 0, 0, f64::INFINITY, Choice::Infeasible);
        m.insert(3, 1, 4, 0, 2, 7.0, special);
        // Overwrite does not double-count.
        m.insert(3, 1, 4, 0, 2, 8.0, Choice::Done);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(1, 2, 3, 1, 6), Some((2.5, normal)));
        assert_eq!(
            m.get(0, 0, 0, 0, 0),
            Some((f64::INFINITY, Choice::Infeasible))
        );
        assert_eq!(m.get(3, 1, 4, 0, 2), Some((8.0, Choice::Done)));
        assert!(m.get(1, 2, 3, 1, 5).is_none(), "same row, other v index");

        let slab = m.compact();
        assert_eq!(slab.len(), 3);
        // Round-trip: seeding an empty memo of the same shape reproduces
        // every entry (this is the replan-reuse path).
        let mut back = DenseMemo::new(4, 3, 5, 2, 7);
        assert_eq!(back.seed_from(&slab), 3);
        assert_eq!(back.get(1, 2, 3, 1, 6), Some((2.5, normal)));
        assert_eq!(back.get(3, 1, 4, 0, 2), Some((8.0, Choice::Done)));
        // A shrunken p axis only takes the surviving prefix.
        let mut shrunk = DenseMemo::new(4, 2, 5, 2, 7);
        assert_eq!(shrunk.seed_from(&slab), 2, "p = 2 entry dropped");
        assert!(shrunk.get(0, 0, 0, 0, 0).is_some());
    }

    #[test]
    fn derived_session_probes_match_a_cold_session_bit_for_bit() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
            1 << 18,
            1 << 10,
        );
        let healthy = Platform::new(4, 3 << 20, 1e8).unwrap();
        let degraded = Platform::new(3, 3 << 20, 1e8).unwrap();
        let targets = [2.0, 3.5, 5.0, 8.0, 13.0];

        let mut parent = ProbeSession::new(&c, &healthy, &disc());
        for &t in &targets {
            parent.probe(t, true, ProbeSource::Bisection);
            parent.probe(t, false, ProbeSource::ContiguousFallback);
        }

        let mut seeded = parent.derive(&degraded);
        let mut cold = ProbeSession::new(&c, &degraded, &disc());
        for &t in &targets {
            for special in [true, false] {
                let a = seeded.probe(t, special, ProbeSource::Bisection);
                let b = cold.probe(t, special, ProbeSource::Bisection);
                assert_eq!(
                    a.period.to_bits(),
                    b.period.to_bits(),
                    "T̂ = {t}, special = {special}"
                );
                assert_eq!(
                    a.allocation.map(|x| x.stages().to_vec()),
                    b.allocation.map(|x| x.stages().to_vec())
                );
            }
        }
        assert!(
            seeded.stats().states_seeded > 0,
            "surviving slab states must be reused: {:?}",
            seeded.stats()
        );
    }

    #[test]
    fn derive_on_a_changed_platform_starts_cold() {
        let c = chain(&[(1.0, 1.0); 5], 1 << 16, 1 << 8);
        let healthy = Platform::new(4, 4 << 20, 1e8).unwrap();
        let mut parent = ProbeSession::new(&c, &healthy, &disc());
        parent.probe(4.0, true, ProbeSource::Bisection);

        // Halved memory reshapes the m axis: nothing may be inherited.
        let less_memory = Platform::new(4, 2 << 20, 1e8).unwrap();
        let mut child = parent.derive(&less_memory);
        child.probe(4.0, true, ProbeSource::Bisection);
        assert_eq!(child.stats().states_seeded, 0);
        assert_eq!(child.stats().solves, 1);
    }

    #[test]
    fn branch_pruning_fires_and_keeps_results_exact() {
        // Imbalanced chain with room to prune: the bound must kill
        // subtrees without changing the answer (the answer itself is
        // cross-checked against the reference solver in the
        // dense_vs_hashed differential suite; here we check the pruning
        // is actually engaged).
        let c = chain(
            &[
                (1.0, 2.0),
                (3.0, 1.0),
                (2.0, 2.0),
                (1.0, 1.0),
                (2.0, 3.0),
                (0.5, 0.5),
            ],
            1 << 14,
            1 << 9,
        );
        let platform = Platform::new(4, 8 << 20, 1e8).unwrap();
        let mut session = ProbeSession::new(&c, &platform, &disc());
        session.probe(3.0, true, ProbeSource::Bisection);
        assert!(
            session.stats().branch_prunes > 0,
            "expected branch-and-bound to fire: {:?}",
            session.stats()
        );
    }

    fn spec(recompute: RecomputeMode, weights: madpipe_model::WeightPolicy) -> PolicySpec {
        PolicySpec { recompute, weights }
    }

    #[test]
    fn default_probes_report_default_policies() {
        let c = chain(&[(1.0, 1.0); 8], 1, 0);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 4.0, &disc());
        let alloc = out.allocation.unwrap();
        assert_eq!(out.policies.len(), alloc.stages().len());
        assert!(out.policies.iter().all(|p| p.is_default()));
    }

    #[test]
    fn fixed_recompute_probes_report_recompute_policies() {
        let c = chain(&[(1.0, 1.0); 8], 1, 0);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let s = spec(RecomputeMode::Always, madpipe_model::WeightPolicy::TwoBw);
        let out = ProbeSession::new_with_policy(&c, &platform, &disc(), s).probe(
            8.0,
            true,
            ProbeSource::Bisection,
        );
        let alloc = out.allocation.unwrap();
        assert_eq!(out.policies.len(), alloc.stages().len());
        assert!(out.policies.iter().all(|p| p.recomputes()));
        assert!(out
            .policies
            .iter()
            .all(|p| p.weights == madpipe_model::WeightPolicy::TwoBw));
    }

    #[test]
    fn auto_is_feasible_whenever_the_default_model_is() {
        // Auto's transition set is a superset of Never's and feasibility
        // is decided on exact (undiscretized) memory arithmetic, so a
        // feasible default probe implies a feasible auto probe.
        let c = chain(&[(1.0, 1.0); 6], 1 << 20, 1 << 10);
        let platform = Platform::new(3, 6 << 20, 1e8).unwrap();
        for t_hat in [2.0, 4.0, 8.0, 16.0] {
            let never = madpipe_dp(&c, &platform, t_hat, &disc());
            let auto = ProbeSession::new_with_policy(
                &c,
                &platform,
                &disc(),
                spec(RecomputeMode::Auto, madpipe_model::WeightPolicy::Full),
            )
            .probe(t_hat, true, ProbeSource::Bisection);
            if never.period.is_finite() {
                assert!(
                    auto.period.is_finite(),
                    "auto must stay feasible at T̂ = {t_hat}"
                );
            }
        }
    }

    #[test]
    fn recompute_unlocks_memory_tight_targets() {
        // Alternating 4 MiB internal / 64 KiB boundary activations: a
        // two-layer stage stores ≈ 4 MiB per live batch, but recompute
        // pins only the 64 KiB boundary input per batch (the 4 MiB
        // becomes a one-time working set) — at a tight target the front
        // stages need g ≥ 2 live batches, which only recompute fits into
        // 5 MiB.
        let s = 64u64 << 10;
        let b = 4u64 << 20;
        let acts = [b, s, b, s, b, s];
        let layers = (0..6)
            .map(|i| Layer::new(format!("l{i}"), 1.0, 1.0, 0, acts[i]))
            .collect();
        let c = Chain::new("t", s, layers).unwrap();
        let tight = Platform::new(3, 5 << 20, 1e9).unwrap();
        let t_hat = 4.0;
        let never = madpipe_dp(&c, &tight, t_hat, &disc());
        let auto = ProbeSession::new_with_policy(
            &c,
            &tight,
            &disc(),
            spec(RecomputeMode::Auto, madpipe_model::WeightPolicy::Full),
        )
        .probe(t_hat, true, ProbeSource::Bisection);
        assert!(
            never.period.is_infinite(),
            "default model should be memory-blocked at T̂ = {t_hat}, got {}",
            never.period
        );
        assert!(
            auto.period.is_finite(),
            "recompute should unlock the target"
        );
        assert!(
            auto.policies.iter().any(|p| p.recomputes()),
            "the unlocking plan must actually recompute somewhere: {:?}",
            auto.policies
        );
    }

    #[test]
    fn two_bw_unlocks_weight_bound_instances() {
        // Weights dominate: 3·W exceeds memory on every split, 2·W fits.
        let w = 1u64 << 20;
        let c = chain(&[(1.0, 1.0); 4], 1 << 10, w);
        // Per GPU: 2 layers → W = 2 MiB; 3·W = 6 MiB > 5.5 MiB > 2·W + slack.
        let platform = Platform::new(2, (5 << 20) + (1 << 19), 1e9).unwrap();
        let full = madpipe_dp(&c, &platform, 8.0, &disc());
        let two_bw = ProbeSession::new_with_policy(
            &c,
            &platform,
            &disc(),
            spec(RecomputeMode::Never, madpipe_model::WeightPolicy::TwoBw),
        )
        .probe(8.0, true, ProbeSource::Bisection);
        assert!(
            full.period.is_infinite(),
            "3·W must not fit: {}",
            full.period
        );
        assert!(two_bw.period.is_finite(), "2·W must fit");
        assert!(two_bw
            .policies
            .iter()
            .all(|p| p.weights == madpipe_model::WeightPolicy::TwoBw));
    }

    #[test]
    fn key_fields_round_trip_at_the_limits() {
        for &(l, p, it, im, iv) in &[
            (0usize, 0usize, 0u16, 0u16, 0u16),
            (65535, 255, 65535, 255, 65535),
            (1, 255, 0, 255, 1),
            (1234, 7, 4321, 99, 17),
        ] {
            assert_eq!(unpack(pack(l, p, it, im, iv)), (l, p, it, im, iv));
        }
    }

    proptest! {
        #[test]
        fn packed_key_round_trips(
            l in 0usize..65536,
            p in 0usize..256,
            it in 0u16..=u16::MAX,
            im in 0u16..256,
            iv in 0u16..=u16::MAX,
        ) {
            let key = pack(l, p, it, im, iv);
            prop_assert_eq!(unpack(key), (l, p, it, im, iv));
        }

        #[test]
        fn packed_keys_are_injective(
            a in (0usize..65536, 0usize..256, 0u16..=u16::MAX, 0u16..256, 0u16..=u16::MAX),
            b in (0usize..65536, 0usize..256, 0u16..=u16::MAX, 0u16..256, 0u16..=u16::MAX),
        ) {
            let ka = pack(a.0, a.1, a.2, a.3, a.4);
            let kb = pack(b.0, b.1, b.2, b.3, b.4);
            prop_assert_eq!(ka == kb, a == b);
        }

        #[test]
        fn choice_encoding_round_trips(k in 0u16..=u16::MAX, rec_bit in 0u8..2) {
            let rec = rec_bit == 1;
            for c in [
                Choice::Infeasible,
                Choice::Done,
                Choice::Normal { k, recompute: rec },
                Choice::Special { k, recompute: rec },
            ] {
                prop_assert_eq!(decode_choice(encode_choice(c)), c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflows")]
    #[cfg(debug_assertions)]
    fn pack_rejects_overflowing_memory_index() {
        let _ = pack(1, 1, 1, 256, 1);
    }
}
