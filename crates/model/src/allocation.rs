//! Stage → GPU assignments, including MadPipe's non-contiguous shape.

use std::ops::Range;

use crate::chain::Chain;
use crate::error::ModelError;
use crate::partition::Partition;
use crate::platform::Platform;

/// One stage of an allocation: a contiguous layer range placed on a GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Layers of the stage (0-based, half-open).
    pub layers: Range<usize>,
    /// GPU hosting the stage.
    pub gpu: usize,
}

/// An *allocation*: a partitioning of the chain plus an assignment of each
/// stage to a GPU. MadPipe allocations have one *special* GPU that may
/// hold several stages while every other (*normal*) GPU holds at most one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    stages: Vec<Stage>,
    n_gpus: usize,
}

impl Allocation {
    /// Build an allocation, validating coverage and GPU indices.
    pub fn new(stages: Vec<Stage>, n_layers: usize, n_gpus: usize) -> Result<Self, ModelError> {
        let ranges: Vec<Range<usize>> = stages.iter().map(|s| s.layers.clone()).collect();
        Partition::new(ranges, n_layers)?;
        for s in &stages {
            if s.gpu >= n_gpus {
                return Err(ModelError::GpuOutOfRange { gpu: s.gpu, n_gpus });
            }
        }
        Ok(Self { stages, n_gpus })
    }

    /// The contiguous allocation that places stage `i` of `partition` on
    /// GPU `i` (requires `partition.len() <= n_gpus`).
    pub fn contiguous(partition: &Partition, n_gpus: usize) -> Result<Self, ModelError> {
        if partition.len() > n_gpus {
            return Err(ModelError::BadCover {
                detail: format!(
                    "{} stages cannot be placed one-per-GPU on {} GPUs",
                    partition.len(),
                    n_gpus
                ),
            });
        }
        let stages = partition
            .stages()
            .iter()
            .enumerate()
            .map(|(i, r)| Stage {
                layers: r.clone(),
                gpu: i,
            })
            .collect();
        let n_layers = partition.stages().last().expect("non-empty").end;
        Self::new(stages, n_layers, n_gpus)
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True iff there are no stages (never true for a validated allocation).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages in chain order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of GPUs of the target platform.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// The underlying partition (stage ranges without placement).
    pub fn partition(&self) -> Partition {
        let n_layers = self.stages.last().expect("non-empty").layers.end;
        Partition::new(
            self.stages.iter().map(|s| s.layers.clone()).collect(),
            n_layers,
        )
        .expect("validated at construction")
    }

    /// True iff every GPU hosts at most one stage.
    pub fn is_contiguous(&self) -> bool {
        let mut seen = vec![false; self.n_gpus];
        for s in &self.stages {
            if seen[s.gpu] {
                return false;
            }
            seen[s.gpu] = true;
        }
        true
    }

    /// GPUs hosting more than one stage (MadPipe's special processor, if
    /// any). Sorted ascending.
    pub fn special_gpus(&self) -> Vec<usize> {
        let mut count = vec![0usize; self.n_gpus];
        for s in &self.stages {
            count[s.gpu] += 1;
        }
        count
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 1)
            .map(|(g, _)| g)
            .collect()
    }

    /// Compute load of GPU `gpu`: Σ U(s) over its stages.
    pub fn gpu_compute_load(&self, chain: &Chain, gpu: usize) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.gpu == gpu)
            .map(|s| chain.compute_time(s.layers.clone()))
            .sum()
    }

    /// Whether consecutive stages `i` and `i+1` sit on different GPUs (and
    /// therefore need a communication over the boundary tensor).
    pub fn cut_is_remote(&self, i: usize) -> bool {
        self.stages[i].gpu != self.stages[i + 1].gpu
    }

    /// The *period of the allocation* (§4.2): the max load over all
    /// resources — GPU compute loads and link occupancies — i.e. the
    /// period achievable if memory constraints were ignored.
    pub fn load_bound(&self, chain: &Chain, platform: &Platform) -> f64 {
        let mut best: f64 = 0.0;
        for g in 0..self.n_gpus {
            best = best.max(self.gpu_compute_load(chain, g));
        }
        // Each adjacent remote pair occupies the link between the two GPUs;
        // several cuts may share one link (e.g. chain re-entering the
        // special GPU), so accumulate per link.
        let mut link_load: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        for i in 0..self.stages.len().saturating_sub(1) {
            if self.cut_is_remote(i) {
                let a = self.stages[i].gpu.min(self.stages[i + 1].gpu);
                let b = self.stages[i].gpu.max(self.stages[i + 1].gpu);
                let cut = self.stages[i + 1].layers.start;
                *link_load.entry((a, b)).or_insert(0.0) += platform.cut_time(chain, cut);
            }
        }
        for (_, load) in link_load {
            best = best.max(load);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn chain4() -> Chain {
        Chain::new(
            "t",
            10,
            vec![
                Layer::new("a", 1.0, 1.0, 0, 10),
                Layer::new("b", 2.0, 2.0, 0, 20),
                Layer::new("c", 3.0, 3.0, 0, 30),
                Layer::new("d", 4.0, 4.0, 0, 40),
            ],
        )
        .unwrap()
    }

    fn noncontig() -> Allocation {
        // stages: [0,1)→gpu0, [1,2)→gpu1, [2,3)→gpu0, [3,4)→gpu1
        Allocation::new(
            vec![
                Stage {
                    layers: 0..1,
                    gpu: 0,
                },
                Stage {
                    layers: 1..2,
                    gpu: 1,
                },
                Stage {
                    layers: 2..3,
                    gpu: 0,
                },
                Stage {
                    layers: 3..4,
                    gpu: 1,
                },
            ],
            4,
            2,
        )
        .unwrap()
    }

    #[test]
    fn contiguous_from_partition() {
        let p = Partition::from_cuts(&[2], 4).unwrap();
        let a = Allocation::contiguous(&p, 4).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.is_contiguous());
        assert_eq!(a.special_gpus(), Vec::<usize>::new());
        assert!(Allocation::contiguous(&Partition::from_cuts(&[1, 2], 4).unwrap(), 2).is_err());
    }

    #[test]
    fn gpu_validation() {
        let bad = Allocation::new(
            vec![Stage {
                layers: 0..4,
                gpu: 5,
            }],
            4,
            2,
        );
        assert!(matches!(bad, Err(ModelError::GpuOutOfRange { .. })));
    }

    #[test]
    fn special_gpu_detection_and_loads() {
        let a = noncontig();
        let c = chain4();
        assert!(!a.is_contiguous());
        assert_eq!(a.special_gpus(), vec![0, 1]);
        assert_eq!(a.gpu_compute_load(&c, 0), 2.0 + 6.0);
        assert_eq!(a.gpu_compute_load(&c, 1), 4.0 + 8.0);
    }

    #[test]
    fn load_bound_accumulates_shared_links() {
        let a = noncontig();
        let c = chain4();
        let p = Platform::new(2, 1 << 30, 1.0).unwrap();
        // every cut remote, all on link (0,1): 2*(a1 + a2 + a3) = 2*(10+20+30)
        let link: f64 = 2.0 * (10.0 + 20.0 + 30.0);
        assert_eq!(a.load_bound(&c, &p), link.max(12.0));
    }

    #[test]
    fn partition_roundtrip() {
        let a = noncontig();
        assert_eq!(a.partition().stages(), &[0..1, 1..2, 2..3, 3..4]);
    }
}
