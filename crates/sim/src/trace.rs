//! Schedule trace export: dump a periodic pattern's execution through
//! the shared [`madpipe_obs`] event model for `chrome://tracing` /
//! Perfetto inspection.
//!
//! Three track families, all on the same timeline as [`crate::replay`]
//! (`max_shift + 1` warm-up periods, fill-phase batches skipped):
//!
//! * one trace "thread" per GPU and link, each executed operation a
//!   complete event (`ph:"X"`) labelled with unit, direction and
//!   mini-batch index;
//! * one **memory counter track** per GPU (`ph:"C"`, exact bytes),
//!   sampled by [`crate::replay::replay_with`] at every residency
//!   change — its running maximum is `gpu_peak_bytes` bit for bit;
//! * one **utilization counter track** per link: the busy fraction of
//!   each period, so communication-bound cuts are visible at a glance.

use madpipe_json::Value;
use madpipe_model::{Allocation, Chain, Platform, Resource, StagePolicy, UnitKind, UnitSequence};
use madpipe_obs::{Trace, SCHEDULE_PID};
use madpipe_schedule::{Dir, Pattern};

use crate::replay::replay_with;

/// Build the schedule trace of `periods` steady-state periods of
/// `pattern` (plus warm-up, like [`crate::replay_pattern`]).
pub fn schedule_trace(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    pattern: &Pattern,
    periods: usize,
) -> Trace {
    let policies = vec![StagePolicy::default(); alloc.stages().len()];
    schedule_trace_with(chain, platform, alloc, &policies, pattern, periods)
}

/// Policy-aware [`schedule_trace`]: op durations and memory counters
/// follow the per-stage recompute/weight policies.
pub fn schedule_trace_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
    pattern: &Pattern,
    periods: usize,
) -> Trace {
    let seq = UnitSequence::from_allocation_with(chain, platform, alloc, policies);
    let t_period = pattern.period;
    let warmup = pattern.max_shift() as usize + 1;
    let total = warmup + periods.max(2);

    // Stable thread ids: GPUs first, then links, ordered.
    let mut resources: Vec<Resource> = pattern.ops.iter().map(|o| o.resource).collect();
    resources.sort();
    resources.dedup();
    let tid = |r: Resource| -> u64 {
        resources
            .iter()
            .position(|&x| x == r)
            .expect("known resource") as u64
            + 1
    };

    let mut trace = Trace::new();
    trace.process_name(SCHEDULE_PID, "schedule");
    for &r in &resources {
        let name = match r {
            Resource::Gpu(g) => format!("GPU {g}"),
            Resource::Link(a, b) => format!("link {a}-{b}"),
        };
        trace.thread_name(SCHEDULE_PID, tid(r), &name);
    }

    // Operation events.
    for k in 0..total {
        for op in &pattern.ops {
            let batch = k as i64 - op.shift as i64;
            if batch < 0 {
                continue; // fill phase: the op idles in a real execution
            }
            let unit = &seq.units()[op.unit];
            let kind = match (&unit.kind, op.dir) {
                (UnitKind::Stage { stage, .. }, Dir::Forward) => format!("F s{stage}"),
                (UnitKind::Stage { stage, .. }, Dir::Backward) => format!("B s{stage}"),
                (UnitKind::Comm { .. }, Dir::Forward) => format!("send u{}", op.unit),
                (UnitKind::Comm { .. }, Dir::Backward) => format!("recv u{}", op.unit),
            };
            trace.complete(
                SCHEDULE_PID,
                tid(op.resource),
                format!("{kind} b{batch}"),
                "op",
                (k as f64 * t_period + op.start) * 1e6,
                op.duration * 1e6,
                vec![
                    ("batch".into(), Value::UInt(batch as u64)),
                    ("shift".into(), Value::UInt(op.shift)),
                ],
            );
        }
    }

    // Memory counter tracks, sampled by the replay itself so the values
    // (and their maximum) are exactly the measured ones.
    replay_with(
        chain,
        platform,
        alloc,
        policies,
        pattern,
        periods,
        |t, g, bytes| {
            trace.counter(
                SCHEDULE_PID,
                format!("memory GPU {g}"),
                "memory",
                t * 1e6,
                "bytes",
                Value::UInt(bytes),
            );
        },
    );

    // Link utilization: busy fraction of every period, per link.
    for &r in &resources {
        let Resource::Link(a, b) = r else { continue };
        for k in 0..total {
            let busy: f64 = pattern
                .ops
                .iter()
                .filter(|op| op.resource == r && k as i64 - op.shift as i64 >= 0)
                .map(|op| op.duration)
                .sum();
            trace.counter(
                SCHEDULE_PID,
                format!("util link {a}-{b}"),
                "link",
                k as f64 * t_period * 1e6,
                "busy_frac",
                Value::Float(busy / t_period),
            );
        }
    }

    trace
}

/// [`schedule_trace`] rendered as Chrome-trace JSON text.
pub fn chrome_trace(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    pattern: &Pattern,
    periods: usize,
) -> String {
    schedule_trace(chain, platform, alloc, pattern, periods).render_chrome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_pattern;
    use madpipe_model::{Layer, Partition};
    use madpipe_obs::validate::validate_chrome;
    use madpipe_schedule::{best_contiguous_period, one_f1b_star};

    fn setup() -> (Chain, Platform, Allocation) {
        let chain = Chain::new(
            "t",
            1000,
            vec![
                Layer::new("a", 1.0, 2.0, 64, 1000),
                Layer::new("b", 2.0, 1.0, 64, 500),
                Layer::new("c", 1.5, 1.5, 64, 250),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, 1 << 20, 1000.0).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        (chain, platform, alloc)
    }

    #[test]
    fn emits_valid_json_with_gpu_link_and_counter_tracks() {
        let (chain, platform, alloc) = setup();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        let json = chrome_trace(&chain, &platform, &alloc, &best.pattern, 3);
        let summary = validate_chrome(&json).unwrap();
        assert!(summary.spans > 0);
        assert!(json.contains("GPU 0"));
        assert!(json.contains("link 0-1"));
        assert!(json.contains("\"F s0 b0\""));
        // One memory track per GPU, one utilization track per link.
        for g in 0..3 {
            assert!(summary.counter_tracks.contains(&format!("memory GPU {g}")));
        }
        assert!(summary.counter_tracks.contains("util link 0-1"));
        assert!(summary.counter_tracks.contains("util link 1-2"));
    }

    #[test]
    fn round_trip_memory_peaks_match_replay_bit_for_bit() {
        let (chain, platform, alloc) = setup();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let t = seq.max_unit_load() * 1.1;
        let pattern = one_f1b_star(&seq, t);
        let periods = 50;
        let json = chrome_trace(&chain, &platform, &alloc, &pattern, periods);
        let summary = validate_chrome(&json).unwrap();
        let report = replay_pattern(&chain, &platform, &alloc, &pattern, periods);
        for (g, &peak) in report.gpu_peak_bytes.iter().enumerate() {
            assert_eq!(
                summary.counter_peaks.get(&format!("memory GPU {g}")),
                Some(&peak),
                "GPU {g} counter-track peak must equal the replayed peak exactly"
            );
        }
        // Every event fits in the replayed horizon.
        let total = pattern.max_shift() as usize + 1 + periods;
        let horizon_us = (total as f64 + 2.0) * pattern.period * 1e6;
        assert!(summary.max_ts_us <= horizon_us);
    }

    #[test]
    fn fill_phase_batches_are_skipped() {
        let (chain, platform, alloc) = setup();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let mut pattern = one_f1b_star(&seq, seq.total_load());
        // Make the backward of unit 0 carry shift 2: its first two
        // firings process negative batches and must not appear.
        for op in &mut pattern.ops {
            if op.unit == 0 && op.dir == Dir::Backward {
                op.shift = 2;
            }
        }
        let json = chrome_trace(&chain, &platform, &alloc, &pattern, 2);
        assert!(!json.contains("b-1"));
        assert!(!json.contains("b-2"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let (chain, platform, alloc) = setup();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let pattern = one_f1b_star(&seq, seq.total_load());
        let json = chrome_trace(&chain, &platform, &alloc, &pattern, 2);
        let parsed = Value::parse(&json).unwrap();
        let durs: Vec<f64> = parsed
            .field("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str().ok()) == Some("X"))
            .map(|e| e.field("dur").unwrap().as_f64().unwrap())
            .collect();
        // Layer "a" forward takes 1 second → 1e6 µs.
        assert!(durs.iter().any(|&d| (d - 1e6).abs() < 1.0));
    }
}
