//! Seeded random chains for tests and benchmarks.

use madpipe_model::{Chain, Layer};

/// SplitMix64 — a tiny seeded generator, deterministic across platforms
/// and toolchain versions (unlike an external RNG crate's stream, which
/// may change between releases and silently re-seed every benchmark).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[lo, hi]`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// Uniform integer in `[lo, hi]`.
    fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo + 1;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Parameters of the random chain generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomChainConfig {
    /// Number of layers.
    pub layers: usize,
    /// Forward time range (seconds); backward is 1–3× forward.
    pub forward_range: (f64, f64),
    /// Weight size range (bytes).
    pub weight_range: (u64, u64),
    /// Activation size range (bytes).
    pub activation_range: (u64, u64),
    /// When true, activation sizes decay geometrically along the chain —
    /// the CNN-like profile (early layers large) that makes memory the
    /// binding constraint for the first stages, as in the paper.
    pub cnn_profile: bool,
}

impl Default for RandomChainConfig {
    fn default() -> Self {
        Self {
            layers: 20,
            forward_range: (0.5e-3, 20e-3),
            weight_range: (1 << 16, 8 << 20),
            activation_range: (1 << 20, 256 << 20),
            cnn_profile: true,
        }
    }
}

/// Generate a random chain from `cfg` with the given `seed`.
pub fn random_chain(cfg: &RandomChainConfig, seed: u64) -> Chain {
    let mut rng = SplitMix64::new(seed);
    let n = cfg.layers.max(1);
    let mut layers = Vec::with_capacity(n);
    for i in 0..n {
        let forward = rng.f64_in(cfg.forward_range.0, cfg.forward_range.1);
        let backward = forward * rng.f64_in(1.0, 3.0);
        let weights = rng.u64_in(cfg.weight_range.0, cfg.weight_range.1);
        let act_base = rng.u64_in(cfg.activation_range.0, cfg.activation_range.1);
        let act = if cfg.cnn_profile {
            // Geometric decay: halve the scale every ~quarter of the chain.
            let decay = 0.5f64.powf(4.0 * i as f64 / n as f64);
            ((act_base as f64 * decay) as u64).max(1)
        } else {
            act_base
        };
        layers.push(Layer::new(
            format!("rand{i}"),
            forward,
            backward,
            weights,
            act,
        ));
    }
    let input = layers[0].activation_bytes;
    Chain::new(format!("random-{seed}"), input, layers).expect("generated layers are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = RandomChainConfig::default();
        let a = random_chain(&cfg, 42);
        let b = random_chain(&cfg, 42);
        assert_eq!(a, b);
        let c = random_chain(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn cnn_profile_decays_activations() {
        let cfg = RandomChainConfig {
            layers: 40,
            ..Default::default()
        };
        let chain = random_chain(&cfg, 7);
        let first_quarter: u64 = (0..10).map(|i| chain.layer(i).activation_bytes).sum();
        let last_quarter: u64 = (30..40).map(|i| chain.layer(i).activation_bytes).sum();
        assert!(first_quarter > 2 * last_quarter);
    }

    #[test]
    fn respects_layer_count_and_positivity() {
        let cfg = RandomChainConfig {
            layers: 3,
            ..Default::default()
        };
        let chain = random_chain(&cfg, 0);
        assert_eq!(chain.len(), 3);
        for l in chain.layers() {
            assert!(l.forward_time > 0.0);
            assert!(l.backward_time >= l.forward_time);
        }
    }
}
