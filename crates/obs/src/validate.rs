//! Structural validation of emitted artifacts, closing the round trip:
//! everything the exporters write must re-parse with the vendored JSON
//! crate and satisfy the invariants checked here. Shared by the unit
//! round-trip tests and the `madpipe validate-trace` CLI command that CI
//! runs against uploaded artifacts.

use std::collections::{BTreeMap, BTreeSet};

use madpipe_json::Value;

/// What a validated Chrome trace contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events of any phase.
    pub events: usize,
    /// `ph:"X"` span count.
    pub spans: usize,
    /// Distinct names of complete spans.
    pub span_names: BTreeSet<String>,
    /// Largest `ts + dur` seen across span and counter events (µs).
    pub max_ts_us: f64,
    /// Peak value per *integer* counter track (e.g. memory-in-bytes),
    /// keyed by event name, exact `u64`.
    pub counter_peaks: BTreeMap<String, u64>,
    /// Distinct counter track names (integer- and float-valued).
    pub counter_tracks: BTreeSet<String>,
}

/// Parse and validate a Chrome trace document.
///
/// Checks: the document parses, has a `traceEvents` array, every event
/// carries `name`/`ph`/`pid`, and every timed event has `ts ≥ 0` (plus
/// `dur ≥ 0` for spans). Returns a [`TraceSummary`] for further,
/// caller-specific assertions (horizon bounds, expected peaks).
pub fn validate_chrome(text: &str) -> Result<TraceSummary, String> {
    let doc = Value::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .field("traceEvents")
        .and_then(|v| v.as_array())
        .map_err(|e| format!("missing traceEvents array: {e}"))?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    for (i, e) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let name = e
            .field("name")
            .and_then(|v| v.as_str())
            .map_err(|err| at(&format!("bad name: {err}")))?;
        let ph = e
            .field("ph")
            .and_then(|v| v.as_str())
            .map_err(|err| at(&format!("bad ph: {err}")))?;
        e.field("pid")
            .and_then(|v| v.as_u64())
            .map_err(|err| at(&format!("bad pid: {err}")))?;
        match ph {
            "M" => continue,
            "X" | "C" | "i" => {}
            other => return Err(at(&format!("unknown phase {other:?}"))),
        }
        let ts = e
            .field("ts")
            .and_then(|v| v.as_f64())
            .map_err(|err| at(&format!("bad ts: {err}")))?;
        if ts < 0.0 {
            return Err(at(&format!("negative ts {ts}")));
        }
        let mut end = ts;
        if ph == "X" {
            let dur = e
                .field("dur")
                .and_then(|v| v.as_f64())
                .map_err(|err| at(&format!("bad dur: {err}")))?;
            if dur < 0.0 {
                return Err(at(&format!("negative dur {dur}")));
            }
            end += dur;
            summary.spans += 1;
            summary.span_names.insert(name.to_string());
        }
        if ph == "C" {
            summary.counter_tracks.insert(name.to_string());
            let args = e
                .field("args")
                .map_err(|err| at(&format!("counter without args: {err}")))?;
            if let Value::Object(fields) = args {
                for (_, v) in fields {
                    if let Value::UInt(u) = v {
                        let peak = summary.counter_peaks.entry(name.to_string()).or_insert(0);
                        *peak = (*peak).max(*u);
                    }
                }
            }
        }
        summary.max_ts_us = summary.max_ts_us.max(end);
    }
    Ok(summary)
}

/// Validate a Prometheus-style metrics dump; returns the number of
/// samples. Every non-comment, non-blank line must be `name value` (an
/// optional `{labels}` suffix on the name) with a parseable value.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        samples += 1;
    }
    Ok(samples)
}

/// Extract the plain (label-free) samples of a Prometheus text dump as
/// `(name, value)` pairs, in document order. Labeled samples and
/// comments are skipped, unparseable lines are an error. This is what a
/// cluster-level rollup sums across daemons — histogram `_sum`/`_count`
/// lines are plain samples too, and summing them is exactly the right
/// aggregation.
pub fn prometheus_samples(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        let value = value
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        if !name.contains('{') {
            samples.push((name.to_string(), value));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Trace, PLANNER_PID, SCHEDULE_PID};

    #[test]
    fn accepts_exporter_output_and_summarizes_it() {
        let mut t = Trace::new();
        t.process_name(PLANNER_PID, "planner");
        t.complete(
            PLANNER_PID,
            0,
            "plan.phase1.bisect",
            "span",
            1.0,
            9.0,
            vec![],
        );
        t.counter(
            SCHEDULE_PID,
            "memory GPU 0",
            "memory",
            20.0,
            "bytes",
            Value::UInt(77),
        );
        t.counter(
            SCHEDULE_PID,
            "memory GPU 0",
            "memory",
            30.0,
            "bytes",
            Value::UInt(42),
        );
        let s = validate_chrome(&t.render_chrome()).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.spans, 1);
        assert!(s.span_names.contains("plan.phase1.bisect"));
        assert_eq!(s.counter_peaks.get("memory GPU 0"), Some(&77));
        assert_eq!(s.max_ts_us, 30.0);
    }

    #[test]
    fn rejects_structural_violations() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{\"other\": 1}").is_err());
        let neg_dur = r#"{"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0, "dur": -2.0}
        ]}"#;
        assert!(validate_chrome(neg_dur)
            .unwrap_err()
            .contains("negative dur"));
        let neg_ts = r#"{"traceEvents": [
            {"name": "x", "ph": "C", "pid": 1, "tid": 0, "ts": -1.0, "args": {"v": 1}}
        ]}"#;
        assert!(validate_chrome(neg_ts).unwrap_err().contains("negative ts"));
    }

    #[test]
    fn prometheus_validation_counts_samples() {
        let r = crate::Registry::new();
        r.add("dp.solves", 2);
        r.observe("dp.solve.seconds", 0.5);
        let text = r.snapshot().to_prometheus();
        let n = validate_prometheus(&text).unwrap();
        assert!(n >= 4, "counter + bucket + sum + count, got {n}");
        assert!(validate_prometheus("name_only\n").is_err());
        assert!(validate_prometheus("metric NaNish\n").is_err());
    }

    #[test]
    fn prometheus_samples_extracts_plain_pairs() {
        let text = "# HELP x helps\nmadpipe_a 3\nmadpipe_b{le=\"0.5\"} 9\nmadpipe_c 1.5\n";
        let samples = prometheus_samples(text).unwrap();
        assert_eq!(
            samples,
            vec![
                ("madpipe_a".to_string(), 3.0),
                ("madpipe_c".to_string(), 1.5)
            ]
        );
        // A registry's own dump round-trips: every counter it emits is
        // recoverable by name.
        let r = crate::Registry::new();
        r.add("serve.cache.hits", 7);
        let samples = prometheus_samples(&r.snapshot().to_prometheus()).unwrap();
        assert!(samples
            .iter()
            .any(|(n, v)| n == "madpipe_serve_cache_hits" && *v == 7.0));
        assert!(prometheus_samples("broken-line\n").is_err());
    }
}
