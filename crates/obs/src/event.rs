//! The shared trace-event model behind every exporter.
//!
//! A [`Trace`] is an ordered list of [`TraceEvent`]s in the Chrome
//! tracing vocabulary: complete spans (`ph:"X"`), counter samples
//! (`ph:"C"`) and metadata (`ph:"M"`). One model, two renderings —
//! Chrome/Perfetto JSON (`{"traceEvents": [...]}`) and a JSON-lines
//! event log (one event object per line) — so the CLI's `--trace-out`,
//! `certify --chrome-trace` and `sim::schedule_trace` cannot drift
//! apart. Counter values carry [`Value`]s, so byte counts stay exact
//! `u64`s through a round trip.

use madpipe_json::Value;

use crate::span::SpanRecord;

/// Chrome process id used for planner-side spans.
pub const PLANNER_PID: u64 = 1;
/// Chrome process id used for the schedule timeline.
pub const SCHEDULE_PID: u64 = 2;

/// Chrome trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `ph:"X"` — a complete span with `ts` + `dur`.
    Complete,
    /// `ph:"C"` — a counter sample.
    Counter,
    /// `ph:"M"` — metadata (process/thread names).
    Metadata,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Counter => "C",
            Phase::Metadata => "M",
        }
    }
}

/// One event in the shared model.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub ph: Phase,
    pub pid: u64,
    pub tid: u64,
    pub name: String,
    /// Category shown by trace viewers (filterable).
    pub cat: &'static str,
    /// Microseconds (Chrome's native unit).
    pub ts_us: f64,
    /// Only meaningful for [`Phase::Complete`].
    pub dur_us: f64,
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("ph".into(), Value::Str(self.ph.code().into())),
            ("pid".into(), Value::UInt(self.pid)),
            ("tid".into(), Value::UInt(self.tid)),
        ];
        if self.ph != Phase::Metadata {
            fields.push(("ts".into(), Value::Float(self.ts_us)));
        }
        if self.ph == Phase::Complete {
            fields.push(("dur".into(), Value::Float(self.dur_us)));
        }
        if self.ph != Phase::Metadata {
            fields.push(("cat".into(), Value::Str(self.cat.into())));
        }
        if !self.args.is_empty() {
            fields.push(("args".into(), Value::Object(self.args.clone())));
        }
        Value::Object(fields)
    }
}

/// An in-memory trace being assembled for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a Chrome process (top-level group in the viewer).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(TraceEvent {
            ph: Phase::Metadata,
            pid,
            tid: 0,
            name: "process_name".into(),
            cat: "meta",
            ts_us: 0.0,
            dur_us: 0.0,
            args: vec![("name".into(), Value::Str(name.into()))],
        });
    }

    /// Name a thread row within a process.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(TraceEvent {
            ph: Phase::Metadata,
            pid,
            tid,
            name: "thread_name".into(),
            cat: "meta",
            ts_us: 0.0,
            dur_us: 0.0,
            args: vec![("name".into(), Value::Str(name.into()))],
        });
    }

    /// Add a complete span.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(TraceEvent {
            ph: Phase::Complete,
            pid,
            tid,
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            args,
        });
    }

    /// Add a counter sample; `series` is the per-track value name shown
    /// by the viewer (e.g. `bytes`), `value` should be `UInt` for exact
    /// integer tracks.
    pub fn counter(
        &mut self,
        pid: u64,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        series: &str,
        value: Value,
    ) {
        self.events.push(TraceEvent {
            ph: Phase::Counter,
            pid,
            tid: 0,
            name: name.into(),
            cat,
            ts_us,
            dur_us: 0.0,
            args: vec![(series.into(), value)],
        });
    }

    /// Import collected tracer spans as complete events under `pid`,
    /// naming each thread row it references.
    pub fn add_spans(&mut self, pid: u64, spans: &[SpanRecord]) {
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let name = if tid == 0 {
                "main".to_string()
            } else {
                format!("worker-{tid}")
            };
            self.thread_name(pid, tid, &name);
        }
        for s in spans {
            self.complete(
                pid,
                s.tid,
                s.name,
                "span",
                s.ts_us,
                s.dur_us,
                s.args
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), Value::Float(*v)))
                    .collect(),
            );
        }
    }

    /// Append every event of `other`.
    pub fn extend(&mut self, other: Trace) {
        self.events.extend(other.events);
    }

    /// The trace as a Chrome JSON value (`{"traceEvents": [...]}`).
    pub fn to_chrome_value(&self) -> Value {
        Value::Object(vec![
            (
                "traceEvents".into(),
                Value::Array(self.events.iter().map(|e| e.to_json()).collect()),
            ),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
    }

    /// Chrome/Perfetto JSON text.
    pub fn render_chrome(&self) -> String {
        self.to_chrome_value().to_string_pretty()
    }

    /// JSON-lines event log: one compact event object per line.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.process_name(PLANNER_PID, "planner");
        t.thread_name(PLANNER_PID, 0, "main");
        t.complete(
            PLANNER_PID,
            0,
            "plan.phase1.bisect",
            "span",
            10.0,
            250.0,
            vec![("t_hat".into(), Value::Float(0.25))],
        );
        t.counter(
            SCHEDULE_PID,
            "memory GPU 0",
            "memory",
            0.0,
            "bytes",
            Value::UInt(123_456_789_012_345),
        );
        t
    }

    #[test]
    fn chrome_rendering_parses_back_with_exact_values() {
        let t = sample_trace();
        let doc = Value::parse(&t.render_chrome()).unwrap();
        let events = doc.field("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4);
        let span = &events[2];
        assert_eq!(span.field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(span.field("dur").unwrap().as_f64().unwrap(), 250.0);
        let counter = &events[3];
        assert_eq!(counter.field("ph").unwrap().as_str().unwrap(), "C");
        assert_eq!(
            counter.field("args").unwrap().field("bytes").unwrap(),
            &Value::UInt(123_456_789_012_345),
            "byte counters survive the round trip exactly"
        );
    }

    #[test]
    fn jsonl_rendering_is_one_valid_object_per_line() {
        let t = sample_trace();
        let text = t.render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            let v = Value::parse(line).unwrap();
            assert!(v.get("ph").is_some());
            assert!(v.get("name").is_some());
        }
    }

    #[test]
    fn spans_import_with_thread_rows() {
        let spans = vec![
            crate::SpanRecord {
                name: "dp.solve",
                ts_us: 5.0,
                dur_us: 2.0,
                tid: 3,
                depth: 1,
                args: vec![("t_hat", 0.5)],
            },
            crate::SpanRecord {
                name: "plan.total",
                ts_us: 0.0,
                dur_us: 10.0,
                tid: 0,
                depth: 0,
                args: vec![],
            },
        ];
        let mut t = Trace::new();
        t.add_spans(PLANNER_PID, &spans);
        let meta: Vec<&TraceEvent> = t
            .events
            .iter()
            .filter(|e| e.ph == Phase::Metadata)
            .collect();
        assert_eq!(meta.len(), 2, "one thread_name per distinct tid");
        let solve = t.events.iter().find(|e| e.name == "dp.solve").unwrap();
        assert_eq!(solve.tid, 3);
        assert_eq!(solve.args[0].1, Value::Float(0.5));
    }
}
