//! Hybrid model + data parallelism — the paper's future-work perspective
//! (§6): split the GPUs into replica groups, MadPipe inside each group,
//! ring all-reduce across groups.
//!
//! ```sh
//! cargo run --release --example hybrid [network] [P] [M_gb] [beta_gb]
//! ```

use madpipe::core::hybrid::allreduce_bottleneck;
use madpipe::core::{best_hybrid, madpipe_plan, PlannerConfig};
use madpipe::dnn::{networks, GpuModel};
use madpipe::model::Platform;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let m: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12);
    let beta: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(12.0);

    let net = networks::by_name(net_name).expect("unknown network");
    let chain = net.profile(8, 1000, &GpuModel::default()).unwrap();
    let platform = Platform::gb(p, m, beta).unwrap();
    let cfg = PlannerConfig::default();

    println!(
        "{} on {p} GPUs ({m} GB, {beta} GB/s): throughput by replica count\n",
        chain.name()
    );
    println!(
        "{:>9} {:>11} {:>13} {:>14} {:>13}",
        "replicas", "group size", "period (ms)", "allreduce(ms)", "batches/s"
    );
    for d in 1..=p {
        if !p.is_multiple_of(d) {
            continue;
        }
        let group = Platform {
            n_gpus: p / d,
            ..platform
        };
        match madpipe_plan(&chain, &group, &cfg) {
            Ok(plan) => {
                let ar = allreduce_bottleneck(&chain, &group, &plan, d);
                let eff = plan.period().max(ar);
                println!(
                    "{d:>9} {:>11} {:>13.1} {:>14.2} {:>13.2}",
                    p / d,
                    plan.period() * 1e3,
                    ar * 1e3,
                    d as f64 / eff
                );
            }
            Err(e) => println!("{d:>9} {:>11} {:>13} ({e})", p / d, "inf"),
        }
    }

    let best = best_hybrid(&chain, &platform, &cfg).expect("some configuration plans");
    println!(
        "\nbest: {} replica(s) × {} GPUs → {:.2} batches/s ({:.1} images/s at batch 8)",
        best.replicas,
        best.group_gpus,
        best.throughput(),
        8.0 * best.throughput()
    );
}
