//! Inception-v3 (Szegedy et al.), torchvision layout with factorized
//! convolutions; nested branch splits are flattened into sibling paths
//! with identical aggregate FLOPs/channels.

use crate::block::Block;
use crate::ops::Op;

use super::NetworkSpec;

/// `conv + BN + ReLU` — Inception's BasicConv2d.
fn basic(ops: &mut Vec<Op>, conv: Op) {
    ops.push(conv);
    ops.push(Op::BatchNorm);
    ops.push(Op::Relu);
}

fn path(convs: &[Op]) -> Vec<Op> {
    let mut v = Vec::with_capacity(convs.len() * 3);
    for &c in convs {
        basic(&mut v, c);
    }
    v
}

fn pool_path(out_ch: u64) -> Vec<Op> {
    let mut v = vec![Op::AvgPool {
        kernel: 3,
        stride: 1,
        padding: 1,
    }];
    basic(&mut v, Op::conv1x1(out_ch));
    v
}

/// InceptionA: 64 + 64 + 96 + pool_features channels out.
fn inception_a(name: String, pool_features: u64) -> Block {
    Block::concat(
        name,
        vec![
            path(&[Op::conv1x1(64)]),
            path(&[Op::conv1x1(48), Op::conv(64, 5, 1, 2)]),
            path(&[Op::conv1x1(64), Op::conv3x3(96, 1), Op::conv3x3(96, 1)]),
            pool_path(pool_features),
        ],
    )
}

/// ReductionA (torchvision InceptionB): spatial /2, out 288+384+96=768.
fn reduction_a(name: String) -> Block {
    Block::concat(
        name,
        vec![
            path(&[Op::conv(384, 3, 2, 0)]),
            path(&[Op::conv1x1(64), Op::conv3x3(96, 1), Op::conv(96, 3, 2, 0)]),
            vec![Op::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            }],
        ],
    )
}

/// InceptionB (torchvision InceptionC): factorized 7×7 branches, 768 out.
fn inception_b(name: String, c7: u64) -> Block {
    Block::concat(
        name,
        vec![
            path(&[Op::conv1x1(192)]),
            path(&[
                Op::conv1x1(c7),
                Op::conv_rect(c7, 1, 7, 0, 3),
                Op::conv_rect(192, 7, 1, 3, 0),
            ]),
            path(&[
                Op::conv1x1(c7),
                Op::conv_rect(c7, 7, 1, 3, 0),
                Op::conv_rect(c7, 1, 7, 0, 3),
                Op::conv_rect(c7, 7, 1, 3, 0),
                Op::conv_rect(192, 1, 7, 0, 3),
            ]),
            pool_path(192),
        ],
    )
}

/// ReductionB (torchvision InceptionD): spatial /2, out 320+192+768=1280.
fn reduction_b(name: String) -> Block {
    Block::concat(
        name,
        vec![
            path(&[Op::conv1x1(192), Op::conv(320, 3, 2, 0)]),
            path(&[
                Op::conv1x1(192),
                Op::conv_rect(192, 1, 7, 0, 3),
                Op::conv_rect(192, 7, 1, 3, 0),
                Op::conv(192, 3, 2, 0),
            ]),
            vec![Op::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            }],
        ],
    )
}

/// InceptionC (torchvision InceptionE): `1×3`/`3×1` sub-branch splits
/// after shared prefixes, 320 + 2·384 + 2·384 + 192 = 2048 out.
fn inception_c(name: String) -> Block {
    use crate::block::BranchPath;
    let split_ends = || {
        vec![
            path(&[Op::conv_rect(384, 1, 3, 0, 1)]),
            path(&[Op::conv_rect(384, 3, 1, 1, 0)]),
        ]
    };
    Block::concat_paths(
        name,
        vec![
            BranchPath::seq(path(&[Op::conv1x1(320)])),
            // 3×3 branch: shared 1×1, then 1×3 and 3×1 siblings.
            BranchPath::with_splits(path(&[Op::conv1x1(384)]), split_ends()),
            // double-3×3 branch: shared 1×1 + 3×3, then the same split.
            BranchPath::with_splits(path(&[Op::conv1x1(448), Op::conv3x3(384, 1)]), split_ends()),
            BranchPath::seq(pool_path(192)),
        ],
    )
}

/// Inception-v3.
pub fn inception_v3() -> NetworkSpec {
    let blocks = vec![
        Block::seq("stem_conv1", path(&[Op::conv(32, 3, 2, 0)])),
        Block::seq("stem_conv2", path(&[Op::conv(32, 3, 1, 0)])),
        Block::seq("stem_conv3", path(&[Op::conv3x3(64, 1)])),
        Block::seq(
            "stem_pool1",
            vec![Op::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            }],
        ),
        Block::seq("stem_conv4", path(&[Op::conv1x1(80)])),
        Block::seq("stem_conv5", path(&[Op::conv(192, 3, 1, 0)])),
        Block::seq(
            "stem_pool2",
            vec![Op::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            }],
        ),
        inception_a("mixed5b".into(), 32),
        inception_a("mixed5c".into(), 64),
        inception_a("mixed5d".into(), 64),
        reduction_a("mixed6a".into()),
        inception_b("mixed6b".into(), 128),
        inception_b("mixed6c".into(), 160),
        inception_b("mixed6d".into(), 160),
        inception_b("mixed6e".into(), 192),
        reduction_b("mixed7a".into()),
        inception_c("mixed7b".into()),
        inception_c("mixed7c".into()),
        Block::seq(
            "head",
            vec![Op::GlobalAvgPool, Op::Linear { out_features: 1000 }],
        ),
    ];
    NetworkSpec {
        name: "inception_v3".to_string(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorShape;

    fn totals(image: u64) -> (u64, u64, TensorShape) {
        let net = inception_v3();
        let mut shape = TensorShape::image(1, image, image);
        let (mut params, mut flops) = (0u64, 0u64);
        for b in &net.blocks {
            let p = b.evaluate(shape);
            params += p.params;
            flops += p.flops;
            shape = p.output;
        }
        (params, flops, shape)
    }

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision inception_v3 (without aux head): ≈ 23.8 M.
        let (params, _, out) = totals(299);
        let millions = params as f64 / 1e6;
        assert!(
            (millions - 23.8).abs() < 1.0,
            "inception params {millions:.2} M, expected ≈ 23.8 M"
        );
        assert_eq!(out, TensorShape::new(1, 1000, 1, 1));
    }

    #[test]
    fn channel_progression_is_canonical() {
        let net = inception_v3();
        let mut shape = TensorShape::image(1, 299, 299);
        let mut channels = Vec::new();
        for b in &net.blocks {
            shape = b.evaluate(shape).output;
            channels.push(shape.c);
        }
        // after stem: 192; A-blocks: 256, 288, 288; reduction: 768;
        // B-blocks stay 768; reduction: 1280; C-blocks: 2048.
        assert_eq!(channels[6], 192);
        assert_eq!(channels[7], 256);
        assert_eq!(channels[8], 288);
        assert_eq!(channels[10], 768);
        assert_eq!(channels[14], 768);
        assert_eq!(channels[15], 1280);
        assert_eq!(channels[17], 2048);
    }

    #[test]
    fn flops_are_in_the_published_ballpark() {
        // ≈ 5.7 GMAC ≈ 11.4 GFLOP at 299².
        let (_, flops, _) = totals(299);
        let gflops = flops as f64 / 1e9;
        assert!(
            (9.0..14.0).contains(&gflops),
            "inception {gflops:.2} GFLOP, expected ≈ 11.4"
        );
    }
}
