//! Figure 6 regenerator + planner benchmark.
//!
//! Running `cargo bench -p madpipe-bench --bench fig6_periods` first
//! regenerates the Figure 6 data (ResNet-50 period vs memory limit,
//! panels over P ∈ {2,4,8} × β ∈ {12,24}, printed and saved to
//! `results/fig6_resnet50_periods.csv`), then benchmarks the two
//! planners on a representative mid-pressure cell.

use criterion::{criterion_group, criterion_main, Criterion};

use madpipe_bench::{fig6, paper_chains, run_cells, GridConfig};
use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_model::Platform;
use madpipe_pipedream::pipedream_plan;

fn generate_figure() -> madpipe_model::Chain {
    let grid = GridConfig {
        networks: vec!["resnet50".into()],
        p_values: vec![2, 4, 8],
        m_values: (3..=16).collect(),
        beta_values: vec![12.0, 24.0],
        ..GridConfig::full()
    };
    let chains = paper_chains(&grid);
    let results = run_cells(&chains, &grid.cells(), &PlannerConfig::default(), 0, false);
    let (text, table) = fig6::generate(&results);
    println!("{text}");
    table
        .save("results/fig6_resnet50_periods.csv")
        .expect("writable results directory");
    chains.into_iter().next().expect("one network")
}

fn bench(c: &mut Criterion) {
    let chain = generate_figure();
    let platform = Platform::gb(4, 8, 12.0).unwrap();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("madpipe_plan/resnet50_p4_m8", |b| {
        b.iter(|| {
            madpipe_plan(&chain, &platform, &PlannerConfig::default())
                .unwrap()
                .period()
        })
    });
    group.bench_function("pipedream_plan/resnet50_p4_m8", |b| {
        b.iter(|| pipedream_plan(&chain, &platform).unwrap().period())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
