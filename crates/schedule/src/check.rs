//! Exact validity and memory checking of periodic patterns.
//!
//! A pattern is *valid* (§3) when the infinite schedule obtained by
//! repeating it fulfills the dependencies of Figure 1, never runs two
//! operations of the same resource at once, and fits in GPU memory at
//! every instant. This module checks all three exactly:
//!
//! * **dependencies** — for an edge `o1 → o2` (same mini-batch), validity
//!   is `t2 + h2·T ≥ t1 + h1·T + d1`;
//! * **resource exclusivity** — modular non-overlap of `[t, t+d)`
//!   intervals within the period, including ops that wrap around `T`;
//! * **memory** — an event sweep over one steady-state period. A stage
//!   whose forward completes at phase `φ_F` with offset `κ_F` (and
//!   backward at `φ_B`, `κ_B`) holds
//!   `κ_B − κ_F + [τ ≥ φ_F] − [τ ≥ φ_B]` live mini-batches at phase `τ`,
//!   each pinning the stage's per-batch bytes (`ā_s` when storing, only
//!   the boundary input when the stage policy recomputes); weights
//!   (`w_mult·W`), any recompute working set, and communication buffers
//!   (`2a` on both sides of every remote cut) are static.

use std::fmt;

use madpipe_model::util::{feq, fge, fle};
use madpipe_model::{Allocation, Chain, Platform, Resource, UnitKind, UnitSequence};

use crate::pattern::{Dir, Op, Pattern};

/// Why a pattern was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The pattern does not contain exactly one op per (unit, direction).
    Incomplete,
    /// An op's duration or resource disagrees with its unit.
    OpMismatch { unit: usize, detail: String },
    /// An op starts outside `[0, T)` or has a negative duration.
    OpOutOfRange { unit: usize, dir: Dir },
    /// A dependency edge is violated by `slack` seconds.
    DependencyViolated {
        from: (usize, Dir),
        to: (usize, Dir),
        slack: f64,
    },
    /// Two ops overlap on the same resource.
    ResourceOverlap {
        resource: Resource,
        a: (usize, Dir),
        b: (usize, Dir),
    },
    /// A resource accumulates more busy time than the period.
    ResourceOverloaded {
        resource: Resource,
        load: f64,
        period: f64,
    },
    /// A GPU's memory peak exceeds the platform limit.
    MemoryExceeded { gpu: usize, peak: u64, limit: u64 },
    /// The sweep found a negative live-batch count (backward completes
    /// more often than forward) — an internally inconsistent pattern.
    NegativeStored { unit: usize },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Incomplete => write!(f, "pattern missing ops"),
            ScheduleError::OpMismatch { unit, detail } => {
                write!(f, "op of unit {unit} mismatches its unit: {detail}")
            }
            ScheduleError::OpOutOfRange { unit, dir } => {
                write!(f, "op ({unit}, {dir:?}) outside [0, T)")
            }
            ScheduleError::DependencyViolated { from, to, slack } => write!(
                f,
                "dependency {:?} -> {:?} violated by {slack:.3e}s",
                from, to
            ),
            ScheduleError::ResourceOverlap { resource, a, b } => {
                write!(f, "ops {:?} and {:?} overlap on {:?}", a, b, resource)
            }
            ScheduleError::ResourceOverloaded {
                resource,
                load,
                period,
            } => write!(f, "{resource:?} busy {load:.6}s > period {period:.6}s"),
            ScheduleError::MemoryExceeded { gpu, peak, limit } => {
                write!(f, "GPU {gpu} peak {peak} B exceeds limit {limit} B")
            }
            ScheduleError::NegativeStored { unit } => {
                write!(f, "unit {unit} would store a negative number of batches")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Step function of a GPU's memory over one steady-state period.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryProfile {
    /// `(phase, bytes)` samples: memory equals `bytes` from `phase` until
    /// the next sample (cyclically).
    pub steps: Vec<(f64, u64)>,
}

impl MemoryProfile {
    /// Peak of the profile.
    pub fn peak(&self) -> u64 {
        self.steps.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }
}

/// Result of a successful check.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternReport {
    /// The pattern period.
    pub period: f64,
    /// Peak memory per GPU (bytes), including static weights/buffers.
    pub gpu_peak_bytes: Vec<u64>,
    /// Static (schedule-independent) memory per GPU.
    pub gpu_static_bytes: Vec<u64>,
    /// Peak number of live mini-batches per unit (0 for comm units) —
    /// the `g` of §4.1: 1F1B* realizes exactly the group index here.
    pub unit_live_batches: Vec<u64>,
    /// Pipeline depth (largest shift).
    pub max_shift: u64,
}

/// Check `pattern` against the model; returns the exact report or the
/// first violation found.
pub fn check_pattern(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    seq: &UnitSequence,
    pattern: &Pattern,
) -> Result<PatternReport, ScheduleError> {
    let t_period = pattern.period;
    if !pattern.is_complete_for(seq) {
        return Err(ScheduleError::Incomplete);
    }

    // 1. op ↔ unit consistency and basic sanity
    for op in &pattern.ops {
        let unit = &seq.units()[op.unit];
        let expected_d = match op.dir {
            Dir::Forward => unit.forward_time,
            Dir::Backward => unit.backward_time,
        };
        if !feq(op.duration, expected_d) {
            return Err(ScheduleError::OpMismatch {
                unit: op.unit,
                detail: format!("duration {} != unit duration {}", op.duration, expected_d),
            });
        }
        if op.resource != unit.resource {
            return Err(ScheduleError::OpMismatch {
                unit: op.unit,
                detail: format!(
                    "resource {:?} != unit resource {:?}",
                    op.resource, unit.resource
                ),
            });
        }
        if op.start < -madpipe_model::util::EPS
            || !fle(op.start, t_period)
            || op.duration < 0.0
            || !op.start.is_finite()
        {
            return Err(ScheduleError::OpOutOfRange {
                unit: op.unit,
                dir: op.dir,
            });
        }
    }

    // 2. dependency edges along the transformed chain
    let dep = |from: &Op, to: &Op| -> Result<(), ScheduleError> {
        let lhs = to.virtual_start(t_period);
        let rhs = from.virtual_start(t_period) + from.duration;
        if fge(lhs, rhs) {
            Ok(())
        } else {
            Err(ScheduleError::DependencyViolated {
                from: (from.unit, from.dir),
                to: (to.unit, to.dir),
                slack: rhs - lhs,
            })
        }
    };
    let n = seq.len();
    let f = |u: usize| pattern.op(u, Dir::Forward).expect("complete");
    let b = |u: usize| pattern.op(u, Dir::Backward).expect("complete");
    for u in 0..n - 1 {
        dep(f(u), f(u + 1))?;
        dep(b(u + 1), b(u))?;
    }
    dep(f(n - 1), b(n - 1))?;
    // Direct F_u → B_u edges are implied transitively but cheap to assert.
    for u in 0..n {
        dep(f(u), b(u))?;
    }

    // 3. resource exclusivity (modular)
    let mut by_resource: std::collections::HashMap<Resource, Vec<&Op>> =
        std::collections::HashMap::new();
    for op in &pattern.ops {
        by_resource.entry(op.resource).or_default().push(op);
    }
    for (resource, ops) in &by_resource {
        let load: f64 = ops.iter().map(|o| o.duration).sum();
        if !fle(load, t_period) {
            return Err(ScheduleError::ResourceOverloaded {
                resource: *resource,
                load,
                period: t_period,
            });
        }
        for i in 0..ops.len() {
            for j in i + 1..ops.len() {
                if modular_overlap(ops[i], ops[j], t_period) {
                    return Err(ScheduleError::ResourceOverlap {
                        resource: *resource,
                        a: (ops[i].unit, ops[i].dir),
                        b: (ops[j].unit, ops[j].dir),
                    });
                }
            }
        }
    }

    // 4. memory sweep
    let gpu_static_bytes = static_memory(chain, alloc, seq);
    let mut unit_live_batches = vec![0u64; n];
    let mut gpu_peak_bytes = gpu_static_bytes.clone();

    // Collect, per GPU, the stage units it hosts with (ā, φ_F, φ_B, base).
    struct LiveStage {
        unit: usize,
        stored_bytes: u64,
        base: i64, // κ_B − κ_F
        phi_f: f64,
        phi_b: f64,
    }
    let mut per_gpu: Vec<Vec<LiveStage>> = (0..alloc.n_gpus()).map(|_| Vec::new()).collect();
    for (u, unit) in seq.units().iter().enumerate() {
        let UnitKind::Stage { layers, .. } = &unit.kind else {
            continue;
        };
        let Resource::Gpu(gpu) = unit.resource else {
            continue;
        };
        let fo = f(u);
        let bo = b(u);
        let base = bo.completion_offset(t_period) as i64 - fo.completion_offset(t_period) as i64;
        per_gpu[gpu].push(LiveStage {
            unit: u,
            stored_bytes: chain.stage_live_batch_bytes(layers.clone(), unit.policy),
            base,
            phi_f: fo.completion_phase(t_period),
            phi_b: bo.completion_phase(t_period),
        });
    }

    for (gpu, stages) in per_gpu.iter().enumerate() {
        if stages.is_empty() {
            continue;
        }
        // Event phases: every completion phase plus 0.
        let mut events: Vec<f64> = vec![0.0];
        for s in stages {
            events.push(s.phi_f);
            events.push(s.phi_b);
        }
        for &tau in &events {
            let mut dynamic: i64 = 0;
            for s in stages {
                let mut live = s.base;
                if fge(tau, s.phi_f) {
                    live += 1;
                }
                if fge(tau, s.phi_b) {
                    live -= 1;
                }
                if live < 0 {
                    return Err(ScheduleError::NegativeStored { unit: s.unit });
                }
                unit_live_batches[s.unit] = unit_live_batches[s.unit].max(live as u64);
                dynamic += live * s.stored_bytes as i64;
            }
            let total = gpu_static_bytes[gpu] + dynamic as u64;
            gpu_peak_bytes[gpu] = gpu_peak_bytes[gpu].max(total);
        }
        if gpu_peak_bytes[gpu] > platform.memory_bytes {
            return Err(ScheduleError::MemoryExceeded {
                gpu,
                peak: gpu_peak_bytes[gpu],
                limit: platform.memory_bytes,
            });
        }
    }

    Ok(PatternReport {
        period: t_period,
        gpu_peak_bytes,
        gpu_static_bytes,
        unit_live_batches,
        max_shift: pattern.max_shift(),
    })
}

/// Memory step profile of one GPU under `pattern` (for inspection and
/// Gantt rendering); assumes the pattern already passed [`check_pattern`].
pub fn memory_profile(
    chain: &Chain,
    alloc: &Allocation,
    seq: &UnitSequence,
    pattern: &Pattern,
    gpu: usize,
) -> MemoryProfile {
    let t_period = pattern.period;
    let static_bytes = static_memory(chain, alloc, seq)[gpu];
    let mut events: Vec<(f64, i64)> = Vec::new(); // (phase, delta bytes)
    let mut base_total: i64 = 0;
    for (u, unit) in seq.units().iter().enumerate() {
        let UnitKind::Stage { layers, .. } = &unit.kind else {
            continue;
        };
        if unit.resource != Resource::Gpu(gpu) {
            continue;
        }
        let fo = pattern.op(u, Dir::Forward).expect("complete");
        let bo = pattern.op(u, Dir::Backward).expect("complete");
        let stored = chain.stage_live_batch_bytes(layers.clone(), unit.policy) as i64;
        let base = bo.completion_offset(t_period) as i64 - fo.completion_offset(t_period) as i64;
        base_total += base * stored;
        events.push((fo.completion_phase(t_period), stored));
        events.push((bo.completion_phase(t_period), -stored));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut steps = Vec::with_capacity(events.len() + 1);
    let mut level = base_total;
    // Deltas with phase ~0 apply from the period start.
    steps.push((0.0, (static_bytes as i64 + level) as u64));
    for (phase, delta) in events {
        level += delta;
        steps.push((phase, (static_bytes as i64 + level).max(0) as u64));
    }
    MemoryProfile { steps }
}

/// Static memory per GPU: each hosted stage's policy-dependent static
/// bytes (`w_mult·W`, plus the recompute working set for recomputing
/// stages) plus `2a` of communication buffer on both end GPUs of every
/// remote cut. With all-default policies this is exactly `3W` per layer.
pub fn static_memory(chain: &Chain, alloc: &Allocation, seq: &UnitSequence) -> Vec<u64> {
    let mut bytes = vec![0u64; alloc.n_gpus()];
    for unit in seq.units() {
        match &unit.kind {
            UnitKind::Stage { layers, .. } => {
                let Resource::Gpu(gpu) = unit.resource else {
                    continue;
                };
                bytes[gpu] += chain.stage_static_bytes(layers.clone(), unit.policy);
            }
            UnitKind::Comm {
                cut_layer,
                stage_before,
            } => {
                let buf = 2 * chain.activation_in(*cut_layer);
                let before = alloc.stages()[*stage_before].gpu;
                let after = alloc.stages()[*stage_before + 1].gpu;
                bytes[before] += buf;
                bytes[after] += buf;
            }
        }
    }
    bytes
}

/// Whether two ops overlap on the cyclic timeline of length `period`.
fn modular_overlap(a: &Op, b: &Op, period: f64) -> bool {
    if a.duration <= madpipe_model::util::EPS || b.duration <= madpipe_model::util::EPS {
        return false;
    }
    let segs = |o: &Op| -> Vec<(f64, f64)> {
        let end = o.start + o.duration;
        if fle(end, period) {
            vec![(o.start, end)]
        } else {
            vec![(o.start, period), (0.0, end - period)]
        }
    };
    for (s1, e1) in segs(a) {
        for (s2, e2) in segs(b) {
            let lo = s1.max(s2);
            let hi = e1.min(e2);
            if hi - lo > madpipe_model::util::EPS {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Layer, Partition};

    /// Two unit chain on one GPU each, no comm (co-located), trivial case.
    fn tiny() -> (Chain, Platform, Allocation, UnitSequence) {
        let chain = Chain::new(
            "t",
            100,
            vec![
                Layer::new("a", 1.0, 1.0, 10, 100),
                Layer::new("b", 1.0, 1.0, 10, 100),
            ],
        )
        .unwrap();
        let platform = Platform::new(2, 10_000, 100.0).unwrap();
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        (chain, platform, alloc, seq)
    }

    fn op(unit: usize, dir: Dir, start: f64, duration: f64, shift: u64, resource: Resource) -> Op {
        Op {
            unit,
            dir,
            start,
            duration,
            shift,
            resource,
        }
    }

    /// Hand-built valid pattern for `tiny()` with period 6:
    /// units: stage0(gpu0), comm(link01), stage1(gpu1); all durations 1
    /// except comm = 2B/100 = 2*100/100/2 = 1 each way.
    fn valid_pattern() -> Pattern {
        Pattern {
            period: 6.0,
            ops: vec![
                op(0, Dir::Forward, 0.0, 1.0, 0, Resource::Gpu(0)),
                op(1, Dir::Forward, 1.0, 1.0, 0, Resource::Link(0, 1)),
                op(2, Dir::Forward, 2.0, 1.0, 0, Resource::Gpu(1)),
                op(2, Dir::Backward, 3.0, 1.0, 0, Resource::Gpu(1)),
                op(1, Dir::Backward, 4.0, 1.0, 0, Resource::Link(0, 1)),
                op(0, Dir::Backward, 5.0, 1.0, 0, Resource::Gpu(0)),
            ],
        }
    }

    #[test]
    fn accepts_a_valid_sequential_pattern() {
        let (chain, platform, alloc, seq) = tiny();
        let report = check_pattern(&chain, &platform, &alloc, &seq, &valid_pattern()).unwrap();
        assert_eq!(report.unit_live_batches, vec![1, 0, 1]);
        // static: gpu0 3*10 + 2*100 buffer, gpu1 same
        assert_eq!(report.gpu_static_bytes, vec![230, 230]);
        // dynamic: stage0 stores ā = a_in(0)=100 for 1 batch
        assert_eq!(report.gpu_peak_bytes[0], 230 + 100);
        assert_eq!(report.max_shift, 0);
    }

    #[test]
    fn rejects_dependency_violation() {
        let (chain, platform, alloc, seq) = tiny();
        let mut p = valid_pattern();
        p.ops[2].start = 0.5; // F of stage1 before comm finishes
        let err = check_pattern(&chain, &platform, &alloc, &seq, &p).unwrap_err();
        assert!(matches!(err, ScheduleError::DependencyViolated { .. }));
    }

    #[test]
    fn rejects_resource_overlap() {
        let (chain, platform, alloc, seq) = tiny();
        let mut p = valid_pattern();
        p.ops[5].start = 0.5; // B of stage0 overlaps F of stage0 on gpu0
                              // fix dependency by bumping shift high enough
        p.ops[5].shift = 2;
        let err = check_pattern(&chain, &platform, &alloc, &seq, &p).unwrap_err();
        assert!(matches!(err, ScheduleError::ResourceOverlap { .. }));
    }

    #[test]
    fn rejects_memory_overflow() {
        let (chain, _platform, alloc, seq) = tiny();
        let strict = Platform::new(2, 250, 100.0).unwrap(); // static alone is 230
        let err = check_pattern(&chain, &strict, &alloc, &seq, &valid_pattern()).unwrap_err();
        assert!(matches!(err, ScheduleError::MemoryExceeded { gpu: 0, .. }));
    }

    #[test]
    fn wrapped_ops_are_handled() {
        let (chain, platform, alloc, seq) = tiny();
        // Same schedule shifted so B of stage0 wraps the period boundary.
        let mut p = valid_pattern();
        for o in &mut p.ops {
            o.start += 0.5;
        }
        p.ops[5].start = 5.5; // B stage0 at 5.5..6.5 wraps
        let report = check_pattern(&chain, &platform, &alloc, &seq, &p).unwrap();
        assert_eq!(report.unit_live_batches[0], 1);
    }

    #[test]
    fn pipelined_pattern_counts_two_live_batches() {
        let (chain, platform, alloc, seq) = tiny();
        // Period 2: every op busy half the time, pipeline depth grows.
        let p = Pattern {
            period: 2.0,
            ops: vec![
                op(0, Dir::Forward, 0.0, 1.0, 0, Resource::Gpu(0)),
                op(1, Dir::Forward, 1.0, 1.0, 0, Resource::Link(0, 1)),
                op(2, Dir::Forward, 0.0, 1.0, 1, Resource::Gpu(1)),
                op(2, Dir::Backward, 1.0, 1.0, 1, Resource::Gpu(1)),
                op(1, Dir::Backward, 0.0, 1.0, 2, Resource::Link(0, 1)),
                op(0, Dir::Backward, 1.0, 1.0, 2, Resource::Gpu(0)),
            ],
        };
        let report = check_pattern(&chain, &platform, &alloc, &seq, &p).unwrap();
        // stage0: F completes at phase 1 offset 0; B completes at phase 0
        // offset 3 → base 3, minus indicator … peak = 3 at τ∈[1,2), i.e.
        // batches i-2..i live together after F_i completes.
        assert_eq!(report.unit_live_batches[0], 3);
        assert_eq!(report.unit_live_batches[2], 1);
        assert_eq!(report.max_shift, 2);
    }

    #[test]
    fn modular_overlap_detects_wrapped_collisions() {
        let a = op(0, Dir::Forward, 9.0, 2.0, 0, Resource::Gpu(0)); // 9..11 wraps to 9..10 + 0..1
        let b = op(1, Dir::Forward, 0.5, 1.0, 0, Resource::Gpu(0));
        assert!(modular_overlap(&a, &b, 10.0));
        let c = op(1, Dir::Forward, 1.5, 1.0, 0, Resource::Gpu(0));
        assert!(!modular_overlap(&a, &c, 10.0));
    }

    #[test]
    fn memory_profile_steps_match_peak() {
        let (chain, _platform, alloc, seq) = tiny();
        let p = valid_pattern();
        let prof = memory_profile(&chain, &alloc, &seq, &p, 0);
        assert_eq!(prof.peak(), 330);
    }
}
