//! The NDJSON wire protocol of `madpipe serve` and the canonical form of
//! a planning instance.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. A request names its command in `cmd`:
//!
//! * `{"cmd":"plan","chain":{…},"platform":{…},"config":{…}}` — plan the
//!   instance; `config` is optional. The platform accepts either byte
//!   units (`memory_bytes`, `bandwidth_bytes`) or GiB units (`memory_gb`,
//!   `bandwidth_gb`); both normalize to bytes before planning *and*
//!   before cache keying, so the same instance expressed in different
//!   units is one cache entry.
//! * `{"cmd":"replan","chain":{…},"platform":{…},"fault":{…},"config":{…}}`
//!   — degraded-mode replanning: `platform` is the *healthy* platform,
//!   `fault` one of `{"kind":"gpu_loss","count":N}`,
//!   `{"kind":"memory_reduction","fraction":F}` or
//!   `{"kind":"link_slowdown","fraction":F}`. The server derives the
//!   surviving platform, plans both sides (through the same cache and
//!   worker pool as `plan`, so the degraded plan is bit-identical to a
//!   `plan` request on the survivor) and reports the throughput delta.
//! * `{"cmd":"metrics"}` — returns the Prometheus text dump of the
//!   server's registry in `metrics`.
//! * `{"cmd":"health"}` — supervision probe: worker liveness, queue
//!   depth, panic/respawn counters, cache size, drain state.
//! * `{"cmd":"ping"}` — liveness probe.
//! * `{"cmd":"gossip","entries":[{"key":…,"plan":…},…]}` — peer-to-peer
//!   cache warming: a peer daemon ships its hottest canonical keys with
//!   their rendered plans. The receiver inserts the ones it does not
//!   already hold and acknowledges with applied/refreshed counts. At
//!   most [`MAX_GOSSIP_ENTRIES`] entries per request.
//! * `{"cmd":"shutdown"}` — ask the server to drain and exit.
//!
//! Responses are `{"ok":true,…}` or
//! `{"ok":false,"error":{"kind":…,"message":…}}`. A bad request never
//! kills the connection, let alone the server.
//!
//! # Distributed trace context
//!
//! Any request line may carry two optional string fields, `trace` (an
//! end-to-end trace id) and `parent` (the caller's span id), both 16
//! lower-hex digits of a nonzero `u64`. A traced hop stamps its own
//! spans with that context into the flight recorder, rewrites the
//! fields when it forwards (the router becomes the daemon's `parent`),
//! and echoes `"trace"`/`"span"` back on its response so the caller can
//! correlate. Untraced lines — no `trace` field — are forwarded and
//! answered byte-identically to a build without tracing; the context is
//! advisory and never fails a request.

use madpipe_core::{MadPipePlan, PlannerConfig};
use madpipe_json::{FromJson, ToJson, Value};
use madpipe_model::{Chain, Platform, PlatformFault};

/// A structured protocol-level error: `kind` is a small closed set a
/// client can switch on, `message` says what actually went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    pub kind: &'static str,
    pub message: String,
}

impl ServeError {
    /// The request was not a JSON object with a known `cmd`.
    pub fn malformed(message: impl Into<String>) -> Self {
        Self {
            kind: "malformed",
            message: message.into(),
        }
    }

    /// The request parsed but its values are unusable (NaN timings,
    /// zero-GPU platform, …).
    pub fn invalid(message: impl Into<String>) -> Self {
        Self {
            kind: "invalid",
            message: message.into(),
        }
    }

    /// The worker queue is full.
    pub fn overloaded() -> Self {
        Self {
            kind: "overloaded",
            message: "worker queue full, retry later".into(),
        }
    }

    /// The deadline elapsed while the request waited for (or sat in)
    /// the worker pool.
    pub fn timeout() -> Self {
        Self {
            kind: "timeout",
            message: "request deadline exceeded".into(),
        }
    }

    /// The server is draining and accepts no new planning work.
    pub fn unavailable() -> Self {
        Self {
            kind: "unavailable",
            message: "server is draining".into(),
        }
    }

    /// The instance is valid but the planner found no plan.
    pub fn plan(message: impl Into<String>) -> Self {
        Self {
            kind: "plan",
            message: message.into(),
        }
    }

    /// A worker died (panicked) while serving the request. The request
    /// was isolated; the pool survives and the worker is respawned.
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            kind: "internal",
            message: message.into(),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub enum Request {
    Plan(Box<PlanRequest>),
    Replan(Box<ReplanRequest>),
    Gossip(Vec<GossipEntry>),
    Metrics,
    Health,
    Ping,
    Shutdown,
}

/// Cap on entries in one gossip request: gossip is advisory cache
/// warming, never a bulk-transfer channel, and the cap bounds what one
/// hostile line can make the receiver buffer.
pub const MAX_GOSSIP_ENTRIES: usize = 64;

/// One gossiped cache entry: a canonical instance key and its rendered
/// plan (the same `Value` a `plan` response carries).
#[derive(Debug)]
pub struct GossipEntry {
    pub key: String,
    pub plan: Value,
}

/// A fully validated planning instance plus its canonical cache key.
#[derive(Debug)]
pub struct PlanRequest {
    pub chain: Chain,
    pub platform: Platform,
    pub cfg: PlannerConfig,
    /// Compact render of the key-sorted, unit-normalized instance. The
    /// full string is the cache map key (hashes only pick the shard), so
    /// a hash collision can never serve the wrong plan.
    pub canonical: String,
}

/// A validated replanning request: the healthy (baseline) instance, the
/// fault, and the derived surviving instance. Both sides carry their own
/// canonical key, so each is cached exactly as an equivalent `plan`
/// request would be — a replan-derived degraded plan and a direct plan
/// of the survivor are one cache entry.
#[derive(Debug)]
pub struct ReplanRequest {
    pub fault: PlatformFault,
    pub baseline: PlanRequest,
    pub degraded: PlanRequest,
}

/// Distributed trace context found on a request line: the end-to-end
/// trace id plus the caller's span id (0 = this hop is the trace root).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceContext {
    pub trace: u64,
    pub parent: u64,
}

/// Parse one request line together with its optional trace context.
/// The context is `Some` only when the line carries a valid nonzero
/// `trace` hex id; a malformed context is ignored (tracing is advisory,
/// it never fails a request), and the single JSON parse is shared with
/// command dispatch.
pub fn parse_line(line: &str) -> Result<(Request, Option<TraceContext>), ServeError> {
    let v = Value::parse(line).map_err(|e| ServeError::malformed(format!("bad JSON: {e}")))?;
    let hex_field = |key: &str| -> u64 {
        v.get(key)
            .and_then(|t| t.as_str().ok())
            .and_then(madpipe_obs::parse_hex_id)
            .unwrap_or(0)
    };
    let ctx = match hex_field("trace") {
        0 => None,
        trace => Some(TraceContext {
            trace,
            parent: hex_field("parent"),
        }),
    };
    Ok((request_of_value(&v)?, ctx))
}

/// Parse one request line. Returns a structured error instead of
/// panicking on anything a client could possibly send.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    parse_line(line).map(|(req, _)| req)
}

fn request_of_value(v: &Value) -> Result<Request, ServeError> {
    let cmd = v
        .get("cmd")
        .ok_or_else(|| ServeError::malformed("missing field `cmd`"))?
        .as_str()
        .map_err(|_| ServeError::malformed("`cmd` must be a string"))?;
    match cmd {
        "plan" => Ok(Request::Plan(Box::new(parse_plan_request(v)?))),
        "replan" => Ok(Request::Replan(Box::new(parse_replan_request(v)?))),
        "gossip" => Ok(Request::Gossip(parse_gossip_request(v)?)),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::malformed(format!("unknown cmd `{other}`"))),
    }
}

fn parse_replan_request(v: &Value) -> Result<ReplanRequest, ServeError> {
    let baseline = parse_plan_request(v)?;
    let fault_v = v
        .get("fault")
        .ok_or_else(|| ServeError::malformed("replan request needs `fault`"))?;
    let fault = PlatformFault::from_json(fault_v)
        .map_err(|e| ServeError::malformed(format!("fault: {e}")))?;
    // An inapplicable fault (losing every GPU, fraction outside (0,1))
    // parsed fine but names no surviving platform: `invalid`.
    let surviving = fault
        .apply(&baseline.platform)
        .map_err(|e| ServeError::invalid(e.to_string()))?;
    let canonical = canonical_instance(&baseline.chain, &surviving, &baseline.cfg);
    let degraded = PlanRequest {
        chain: baseline.chain.clone(),
        platform: surviving,
        cfg: baseline.cfg,
        canonical,
    };
    Ok(ReplanRequest {
        fault,
        baseline,
        degraded,
    })
}

fn parse_gossip_request(v: &Value) -> Result<Vec<GossipEntry>, ServeError> {
    let entries = v
        .get("entries")
        .ok_or_else(|| ServeError::malformed("gossip request needs `entries`"))?
        .as_array()
        .map_err(|_| ServeError::malformed("gossip `entries` must be an array"))?;
    if entries.len() > MAX_GOSSIP_ENTRIES {
        return Err(ServeError::malformed(format!(
            "gossip carries {} entries, cap is {MAX_GOSSIP_ENTRIES}",
            entries.len()
        )));
    }
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let key = e
                .field("key")
                .and_then(Value::as_str)
                .map_err(|_| ServeError::malformed(format!("gossip entry {i}: bad `key`")))?;
            if key.is_empty() {
                return Err(ServeError::malformed(format!(
                    "gossip entry {i}: empty `key`"
                )));
            }
            let plan = e
                .field("plan")
                .map_err(|_| ServeError::malformed(format!("gossip entry {i}: missing `plan`")))?;
            if !matches!(plan, Value::Object(_)) {
                return Err(ServeError::malformed(format!(
                    "gossip entry {i}: `plan` must be an object"
                )));
            }
            Ok(GossipEntry {
                key: key.to_string(),
                plan: plan.clone(),
            })
        })
        .collect()
}

fn parse_plan_request(v: &Value) -> Result<PlanRequest, ServeError> {
    let chain_v = v
        .get("chain")
        .ok_or_else(|| ServeError::malformed("plan request needs `chain`"))?;
    // `Chain::from_json` runs `Chain::new`, which rejects NaN, infinite
    // and negative layer timings with a message naming the layer.
    let chain =
        Chain::from_json(chain_v).map_err(|e| ServeError::invalid(format!("chain: {e}")))?;
    let platform_v = v
        .get("platform")
        .ok_or_else(|| ServeError::malformed("plan request needs `platform`"))?;
    let platform = platform_from_json(platform_v)?;
    let cfg = config_from_json(v.get("config"))?;
    let canonical = canonical_instance(&chain, &platform, &cfg);
    Ok(PlanRequest {
        chain,
        platform,
        cfg,
        canonical,
    })
}

/// Bytes in one GiB, for the `*_gb` convenience units.
const GIB: f64 = (1u64 << 30) as f64;

/// Platform from JSON, accepting byte or GiB units and normalizing to
/// bytes. `Platform::new` then enforces positivity and finiteness.
fn platform_from_json(v: &Value) -> Result<Platform, ServeError> {
    let n_gpus = v
        .field("n_gpus")
        .and_then(Value::as_u64)
        .map_err(|e| ServeError::invalid(format!("platform: {e}")))? as usize;
    let memory_bytes = match (v.get("memory_bytes"), v.get("memory_gb")) {
        (Some(b), _) => b
            .as_u64()
            .map_err(|e| ServeError::invalid(format!("platform memory_bytes: {e}")))?,
        (None, Some(g)) => {
            let gb = g
                .as_f64()
                .map_err(|e| ServeError::invalid(format!("platform memory_gb: {e}")))?;
            if !(gb.is_finite() && gb > 0.0) {
                return Err(ServeError::invalid(format!(
                    "platform memory_gb must be positive and finite, got {gb}"
                )));
            }
            (gb * GIB) as u64
        }
        (None, None) => {
            return Err(ServeError::invalid(
                "platform needs `memory_bytes` or `memory_gb`",
            ))
        }
    };
    let bandwidth = match (v.get("bandwidth_bytes"), v.get("bandwidth_gb")) {
        (Some(b), _) => b
            .as_f64()
            .map_err(|e| ServeError::invalid(format!("platform bandwidth_bytes: {e}")))?,
        (None, Some(g)) => {
            g.as_f64()
                .map_err(|e| ServeError::invalid(format!("platform bandwidth_gb: {e}")))?
                * GIB
        }
        (None, None) => {
            return Err(ServeError::invalid(
                "platform needs `bandwidth_bytes` or `bandwidth_gb`",
            ))
        }
    };
    Platform::new(n_gpus, memory_bytes, bandwidth)
        .map_err(|e| ServeError::invalid(format!("platform: {e}")))
}

/// Planner config from the optional `config` object. Only the stable
/// knobs are exposed; everything else keeps the `madpipe plan` defaults
/// so cached plans are bit-identical to the CLI's.
fn config_from_json(v: Option<&Value>) -> Result<PlannerConfig, ServeError> {
    let mut cfg = PlannerConfig::default();
    let Some(v) = v else { return Ok(cfg) };
    if matches!(v, Value::Null) {
        return Ok(cfg);
    }
    if let Some(r) = v.get("refine_probes") {
        cfg.refine_probes = r
            .as_u64()
            .map_err(|e| ServeError::invalid(format!("config refine_probes: {e}")))?
            as usize;
    }
    if let Some(t) = v.get("threads") {
        cfg.threads = t
            .as_u64()
            .map_err(|e| ServeError::invalid(format!("config threads: {e}")))?
            .clamp(1, 64) as usize;
    }
    if let Some(i) = v.get("iterations") {
        cfg.algorithm1.iterations = i
            .as_u64()
            .map_err(|e| ServeError::invalid(format!("config iterations: {e}")))?
            .clamp(1, 64) as usize;
    }
    if let Some(r) = v.get("recompute") {
        let s = r
            .as_str()
            .map_err(|e| ServeError::invalid(format!("config recompute: {e}")))?;
        cfg.policy.recompute = madpipe_model::RecomputeMode::parse(s)
            .map_err(|e| ServeError::invalid(format!("config recompute: {e}")))?;
    }
    if let Some(w) = v.get("weights") {
        let s = w
            .as_str()
            .map_err(|e| ServeError::invalid(format!("config weights: {e}")))?;
        cfg.policy.weights = madpipe_model::WeightPolicy::parse(s)
            .map_err(|e| ServeError::invalid(format!("config weights: {e}")))?;
    }
    Ok(cfg)
}

/// Recursively sort every object's keys. Arrays keep their order (layer
/// order is meaningful).
pub fn sort_keys(v: Value) -> Value {
    match v {
        Value::Object(mut fields) => {
            fields.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, val)| (k, sort_keys(val)))
                    .collect(),
            )
        }
        Value::Array(items) => Value::Array(items.into_iter().map(sort_keys).collect()),
        other => other,
    }
}

/// The canonical form of a planning instance: rebuilt from the *typed*
/// chain/platform/config (so units are already normalized to bytes and
/// derived state is dropped), keys recursively sorted, rendered compact.
/// Two requests meaning the same instance — whatever key order or units
/// they used on the wire — produce byte-identical canonical strings.
pub fn canonical_instance(chain: &Chain, platform: &Platform, cfg: &PlannerConfig) -> String {
    let inst = Value::Object(vec![
        ("chain".into(), chain.to_json()),
        (
            "config".into(),
            Value::Object(vec![
                (
                    "iterations".into(),
                    Value::UInt(cfg.algorithm1.iterations as u64),
                ),
                (
                    "recompute".into(),
                    Value::Str(cfg.policy.recompute.as_str().into()),
                ),
                (
                    "refine_probes".into(),
                    Value::UInt(cfg.refine_probes as u64),
                ),
                ("threads".into(), Value::UInt(cfg.threads as u64)),
                (
                    "weights".into(),
                    Value::Str(cfg.policy.weights.as_str().into()),
                ),
            ]),
        ),
        (
            "platform".into(),
            Value::Object(vec![
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
            ]),
        ),
    ]);
    sort_keys(inst).to_string_compact()
}

/// Render a plan as its response JSON. `period`, `phase1_period` and
/// `throughput` round-trip f64 bit-exactly through the vendored writer,
/// so clients can compare plans for bit-identity.
pub fn plan_to_json(plan: &MadPipePlan) -> Value {
    Value::Object(vec![
        ("period".into(), Value::Float(plan.period())),
        ("phase1_period".into(), Value::Float(plan.phase1.period)),
        ("throughput".into(), Value::Float(plan.throughput())),
        (
            "stages".into(),
            Value::Array(
                plan.allocation
                    .stages()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let policy = plan.policies.get(i).copied().unwrap_or_default();
                        Value::Object(vec![
                            ("start".into(), Value::UInt(s.layers.start as u64)),
                            ("end".into(), Value::UInt(s.layers.end as u64)),
                            ("gpu".into(), Value::UInt(s.gpu as u64)),
                            (
                                "activation".into(),
                                Value::Str(policy.activation.as_str().into()),
                            ),
                            ("weights".into(), Value::Str(policy.weights.as_str().into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `{"ok":true,"cached":…,"plan":…}` as one line (no trailing newline).
pub fn plan_response(plan: &Value, cached: bool) -> String {
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("cached".into(), Value::Bool(cached)),
        ("plan".into(), plan.clone()),
    ])
    .to_string_compact()
}

/// `{"ok":true,"cached":…,"plan":…,"replan":{…}}` as one line: the
/// degraded plan is the payload (`plan`/`cached` mean exactly what they
/// mean in a `plan` response, for the *surviving* platform), and the
/// `replan` object carries the fault, the surviving platform and the
/// baseline comparison. Deltas are derived from the two rendered plans,
/// so they agree bit-for-bit with what a client would compute itself.
pub fn replan_response(
    fault: &PlatformFault,
    degraded_platform: &Platform,
    baseline: &Value,
    baseline_cached: bool,
    degraded: &Value,
    degraded_cached: bool,
) -> String {
    let f64_of = |plan: &Value, field: &str| -> f64 {
        plan.field(field)
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN)
    };
    let base_period = f64_of(baseline, "period");
    let deg_period = f64_of(degraded, "period");
    let replan = Value::Object(vec![
        ("fault".into(), fault.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                (
                    "bandwidth_bytes".into(),
                    Value::Float(degraded_platform.bandwidth),
                ),
                (
                    "memory_bytes".into(),
                    Value::UInt(degraded_platform.memory_bytes),
                ),
                (
                    "n_gpus".into(),
                    Value::UInt(degraded_platform.n_gpus as u64),
                ),
            ]),
        ),
        (
            "baseline".into(),
            Value::Object(vec![
                ("period".into(), Value::Float(base_period)),
                (
                    "throughput".into(),
                    Value::Float(f64_of(baseline, "throughput")),
                ),
                ("cached".into(), Value::Bool(baseline_cached)),
            ]),
        ),
        (
            "period_ratio".into(),
            Value::Float(deg_period / base_period),
        ),
        (
            "throughput_delta".into(),
            Value::Float(base_period / deg_period - 1.0),
        ),
    ]);
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("cached".into(), Value::Bool(degraded_cached)),
        ("plan".into(), degraded.clone()),
        ("replan".into(), replan),
    ])
    .to_string_compact()
}

/// `{"ok":false,"error":{…}}` as one line.
pub fn error_response(err: &ServeError) -> String {
    Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str(err.kind.into())),
                ("message".into(), Value::Str(err.message.clone())),
            ]),
        ),
    ])
    .to_string_compact()
}

/// `{"ok":true,<key>:<text>}` for metrics/ping/shutdown acknowledgments.
pub fn ok_response(key: &str, value: Value) -> String {
    Value::Object(vec![("ok".into(), Value::Bool(true)), (key.into(), value)]).to_string_compact()
}

/// Render a gossip request line (no trailing newline) from cache
/// entries. The sender truncates to [`MAX_GOSSIP_ENTRIES`] so the line
/// always parses on a well-behaved receiver.
pub fn gossip_line(entries: &[(String, std::sync::Arc<Value>)]) -> String {
    let items = entries
        .iter()
        .take(MAX_GOSSIP_ENTRIES)
        .map(|(key, plan)| {
            Value::Object(vec![
                ("key".into(), Value::Str(key.clone())),
                ("plan".into(), (**plan).clone()),
            ])
        })
        .collect();
    Value::Object(vec![
        ("cmd".into(), Value::Str("gossip".into())),
        ("entries".into(), Value::Array(items)),
    ])
    .to_string_compact()
}

/// `{"ok":true,"gossip":{"applied":…,"refreshed":…}}`: how many shipped
/// entries were new to this cache vs. already held.
pub fn gossip_response(applied: u64, already_held: u64) -> String {
    ok_response(
        "gossip",
        Value::Object(vec![
            ("applied".into(), Value::UInt(applied)),
            ("already_held".into(), Value::UInt(already_held)),
        ]),
    )
}

/// Re-render `line` with `trace`/`parent` set (replacing any inbound
/// values) — how the router forwards a traced request so its own span
/// becomes the daemon's parent. Returns `None` if the line is not a
/// JSON object; the router only calls this on lines that already parsed.
pub fn inject_context(line: &str, trace: u64, parent: u64) -> Option<String> {
    let mut v = Value::parse(line).ok()?;
    let Value::Object(fields) = &mut v else {
        return None;
    };
    let mut set = |key: &str, id: u64| {
        let value = Value::Str(madpipe_obs::hex_id(id));
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    };
    set("trace", trace);
    set("parent", parent);
    Some(v.to_string_compact())
}

/// Splice `"trace"`/`"span"` echo fields into a rendered single-line
/// response. Every response renderer above emits `{…}`, so the splice
/// lands before the closing brace; a non-object response (impossible
/// today) is left untouched rather than corrupted.
pub fn attach_trace(response: &mut String, trace: u64, span: u64) {
    if !response.ends_with('}') || response.ends_with("{}") {
        return;
    }
    response.truncate(response.len() - 1);
    response.push_str(&format!(
        ",\"trace\":\"{}\",\"span\":\"{}\"}}",
        madpipe_obs::hex_id(trace),
        madpipe_obs::hex_id(span)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_line(platform: &str) -> String {
        format!(
            concat!(
                r#"{{"cmd":"plan","chain":{{"name":"t","input_bytes":1024,"layers":["#,
                r#"{{"name":"l0","forward_time":0.001,"backward_time":0.002,"weight_bytes":1000,"activation_bytes":2000}},"#,
                r#"{{"name":"l1","forward_time":0.003,"backward_time":0.004,"weight_bytes":1000,"activation_bytes":2000}}"#,
                r#"]}},"platform":{}}}"#
            ),
            platform
        )
    }

    #[test]
    fn parses_every_command() {
        assert!(matches!(
            parse_request(r#"{"cmd":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"metrics"}"#),
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        let line = plan_line(r#"{"n_gpus":2,"memory_bytes":1073741824,"bandwidth_gb":12.0}"#);
        assert!(matches!(parse_request(&line), Ok(Request::Plan(_))));
    }

    #[test]
    fn replan_requests_derive_the_surviving_instance() {
        let base = plan_line(r#"{"n_gpus":4,"memory_bytes":1073741824,"bandwidth_gb":12.0}"#);
        let line = base.replacen(
            r#""cmd":"plan""#,
            r#""cmd":"replan","fault":{"kind":"gpu_loss","count":1}"#,
            1,
        );
        let Ok(Request::Replan(r)) = parse_request(&line) else {
            panic!("replan must parse: {line}");
        };
        assert_eq!(r.fault, PlatformFault::GpuLoss { count: 1 });
        assert_eq!(r.baseline.platform.n_gpus, 4);
        assert_eq!(r.degraded.platform.n_gpus, 3);
        assert_ne!(r.baseline.canonical, r.degraded.canonical);
        // The degraded canonical equals a direct plan of the survivor.
        let direct = plan_line(r#"{"n_gpus":3,"memory_bytes":1073741824,"bandwidth_gb":12.0}"#);
        let Ok(Request::Plan(p)) = parse_request(&direct) else {
            panic!("direct plan must parse");
        };
        assert_eq!(r.degraded.canonical, p.canonical);

        // Missing or malformed fault: `malformed`; inapplicable: `invalid`.
        assert_eq!(
            parse_request(&base.replacen(r#""cmd":"plan""#, r#""cmd":"replan""#, 1))
                .unwrap_err()
                .kind,
            "malformed"
        );
        let lethal = base.replacen(
            r#""cmd":"plan""#,
            r#""cmd":"replan","fault":{"kind":"gpu_loss","count":4}"#,
            1,
        );
        let err = parse_request(&lethal).unwrap_err();
        assert_eq!(err.kind, "invalid");
        assert!(err.message.contains("no survivor"), "{}", err.message);
    }

    #[test]
    fn health_command_parses() {
        assert!(matches!(
            parse_request(r#"{"cmd":"health"}"#),
            Ok(Request::Health)
        ));
    }

    #[test]
    fn replan_response_carries_fault_and_deltas() {
        let platform = Platform::new(3, 1 << 30, 12e9).unwrap();
        let baseline = Value::Object(vec![
            ("period".into(), Value::Float(0.01)),
            ("throughput".into(), Value::Float(100.0)),
        ]);
        let degraded = Value::Object(vec![
            ("period".into(), Value::Float(0.02)),
            ("throughput".into(), Value::Float(50.0)),
        ]);
        let line = replan_response(
            &PlatformFault::GpuLoss { count: 1 },
            &platform,
            &baseline,
            true,
            &degraded,
            false,
        );
        assert!(!line.contains('\n'));
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
        assert_eq!(v.field("cached").unwrap(), &Value::Bool(false));
        let replan = v.field("replan").unwrap();
        assert_eq!(
            replan
                .field("fault")
                .unwrap()
                .field("kind")
                .unwrap()
                .as_str(),
            Ok("gpu_loss")
        );
        assert_eq!(
            replan.field("platform").unwrap().field("n_gpus").unwrap(),
            &Value::UInt(3)
        );
        assert_eq!(replan.field("period_ratio").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(
            replan.field("throughput_delta").unwrap().as_f64().unwrap(),
            -0.5
        );
        assert_eq!(
            replan.field("baseline").unwrap().field("cached").unwrap(),
            &Value::Bool(true)
        );
    }

    #[test]
    fn gossip_round_trips_and_enforces_caps() {
        let plan = std::sync::Arc::new(Value::Object(vec![(
            "period".into(),
            Value::Float(0.012345678901234567),
        )]));
        let entries = vec![("canonical-a".to_string(), std::sync::Arc::clone(&plan))];
        let line = gossip_line(&entries);
        assert!(!line.contains('\n'));
        let Ok(Request::Gossip(parsed)) = parse_request(&line) else {
            panic!("gossip line must parse: {line}");
        };
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].key, "canonical-a");
        // The plan survives the round trip f64-bit-exactly.
        assert_eq!(
            parsed[0].plan.field("period").unwrap().as_f64().unwrap(),
            0.012345678901234567
        );

        // Ack shape.
        let ack = Value::parse(&gossip_response(3, 1)).unwrap();
        assert_eq!(
            ack.field("gossip").unwrap().field("applied").unwrap(),
            &Value::UInt(3)
        );

        // Structural garbage is `malformed`, never a panic.
        for bad in [
            r#"{"cmd":"gossip"}"#,
            r#"{"cmd":"gossip","entries":7}"#,
            r#"{"cmd":"gossip","entries":[{"plan":{}}]}"#,
            r#"{"cmd":"gossip","entries":[{"key":"","plan":{}}]}"#,
            r#"{"cmd":"gossip","entries":[{"key":"k","plan":4}]}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().kind, "malformed", "{bad}");
        }

        // Over-cap requests are rejected whole; the sender-side builder
        // truncates so its lines always stay under the cap.
        let many: Vec<(String, std::sync::Arc<Value>)> = (0..MAX_GOSSIP_ENTRIES + 9)
            .map(|i| (format!("k{i}"), std::sync::Arc::clone(&plan)))
            .collect();
        let Ok(Request::Gossip(truncated)) = parse_request(&gossip_line(&many)) else {
            panic!("builder output must parse");
        };
        assert_eq!(truncated.len(), MAX_GOSSIP_ENTRIES);
        let over = format!(
            r#"{{"cmd":"gossip","entries":[{}]}}"#,
            (0..MAX_GOSSIP_ENTRIES + 1)
                .map(|i| format!(r#"{{"key":"k{i}","plan":{{}}}}"#))
                .collect::<Vec<_>>()
                .join(",")
        );
        assert_eq!(parse_request(&over).unwrap_err().kind, "malformed");
    }

    #[test]
    fn rejects_garbage_with_kinds() {
        assert_eq!(parse_request("not json").unwrap_err().kind, "malformed");
        assert_eq!(parse_request(r#"{"x":1}"#).unwrap_err().kind, "malformed");
        assert_eq!(
            parse_request(r#"{"cmd":"frobnicate"}"#).unwrap_err().kind,
            "malformed"
        );
        assert_eq!(
            parse_request(r#"{"cmd":"plan"}"#).unwrap_err().kind,
            "malformed"
        );
        // ∞ can enter through JSON (`1e999` overflows to inf); it must be
        // rejected as `invalid`, naming the offending field.
        let line = plan_line(r#"{"n_gpus":2,"memory_bytes":1,"bandwidth_bytes":1e999}"#);
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.kind, "invalid");
        assert!(err.message.contains("bandwidth"), "{}", err.message);
    }

    #[test]
    fn unit_and_key_order_normalize_into_one_canonical_key() {
        let gib = super::GIB;
        let a = plan_line(r#"{"n_gpus":2,"memory_bytes":1073741824,"bandwidth_gb":12.0}"#);
        let b = plan_line(&format!(
            r#"{{"bandwidth_bytes":{},"memory_gb":1.0,"n_gpus":2}}"#,
            12.0 * gib
        ));
        let (Ok(Request::Plan(pa)), Ok(Request::Plan(pb))) = (parse_request(&a), parse_request(&b))
        else {
            panic!("both must parse");
        };
        assert_eq!(pa.canonical, pb.canonical);
        // The canonical form is itself valid, key-sorted JSON.
        let v = Value::parse(&pa.canonical).unwrap();
        let Value::Object(fields) = &v else {
            panic!("canonical must be an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["chain", "config", "platform"]);
    }

    #[test]
    fn config_changes_the_canonical_key() {
        let base = plan_line(r#"{"n_gpus":2,"memory_bytes":1073741824,"bandwidth_gb":12.0}"#);
        let with_cfg = base.replacen(
            r#","platform""#,
            r#","config":{"refine_probes":2},"platform""#,
            1,
        );
        let (Ok(Request::Plan(pa)), Ok(Request::Plan(pb))) =
            (parse_request(&base), parse_request(&with_cfg))
        else {
            panic!("both must parse");
        };
        assert_ne!(pa.canonical, pb.canonical);
    }

    #[test]
    fn trace_context_parses_injects_and_echoes() {
        // No trace field → no context, same request.
        let (req, ctx) = parse_line(r#"{"cmd":"ping"}"#).unwrap();
        assert!(matches!(req, Request::Ping));
        assert_eq!(ctx, None);

        // A valid trace id, with and without a parent.
        let (_, ctx) = parse_line(r#"{"cmd":"ping","trace":"00000000000000ab"}"#).unwrap();
        assert_eq!(
            ctx,
            Some(TraceContext {
                trace: 0xab,
                parent: 0
            })
        );
        let (_, ctx) =
            parse_line(r#"{"cmd":"ping","trace":"ab","parent":"000000000000cdef"}"#).unwrap();
        assert_eq!(
            ctx,
            Some(TraceContext {
                trace: 0xab,
                parent: 0xcdef
            })
        );

        // Malformed context is advisory garbage, never an error.
        for bad in [
            r#"{"cmd":"ping","trace":"nothex"}"#,
            r#"{"cmd":"ping","trace":7}"#,
            r#"{"cmd":"ping","trace":"0000000000000000"}"#,
        ] {
            let (req, ctx) = parse_line(bad).unwrap();
            assert!(matches!(req, Request::Ping), "{bad}");
            assert_eq!(ctx, None, "{bad}");
        }

        // Injection replaces inbound context and round-trips.
        let forwarded =
            inject_context(r#"{"cmd":"ping","trace":"ab","parent":"01"}"#, 0xab, 0x99).unwrap();
        assert!(!forwarded.contains('\n'));
        let (_, ctx) = parse_line(&forwarded).unwrap();
        assert_eq!(
            ctx,
            Some(TraceContext {
                trace: 0xab,
                parent: 0x99
            })
        );
        assert!(inject_context("not json", 1, 2).is_none());

        // Response echo splices before the closing brace and parses.
        let mut resp = ok_response("pong", Value::Bool(true));
        attach_trace(&mut resp, 0xab, 0x42);
        let v = Value::parse(&resp).unwrap();
        assert_eq!(v.field("trace").unwrap().as_str(), Ok("00000000000000ab"));
        assert_eq!(v.field("span").unwrap().as_str(), Ok("0000000000000042"));
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
        // Degenerate non-object strings are left alone.
        let mut odd = "{}".to_string();
        attach_trace(&mut odd, 1, 2);
        assert_eq!(odd, "{}");
    }

    #[test]
    fn responses_are_single_lines() {
        let err = ServeError::invalid("chain: layer 0: forward_time must be finite, got NaN");
        let line = error_response(&err);
        assert!(!line.contains('\n'));
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(false));
        assert_eq!(
            v.field("error").unwrap().field("kind").unwrap().as_str(),
            Ok("invalid")
        );
    }
}
