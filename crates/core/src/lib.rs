//! MadPipe: the paper's contribution (§4.2–§4.3).
//!
//! * [`oplus`] — the `⊕` delay-propagation algebra used to mimic 1F1B*
//!   group formation inside the dynamic program;
//! * [`discrete`] — the discretization grids for the continuous DP state
//!   (`t_P`, `m_P`, `V`), with the paper's 101/11/51 default resolution;
//! * [`dp`] — MadPipe-DP: the memoized recursion over
//!   `T(l, p, t_P, m_P, V)` building a non-contiguous allocation with one
//!   *special* processor;
//! * [`algorithm1`] — the modified binary search over the target period
//!   `T̂` (Algorithm 1, K = 10 iterations by default);
//! * [`planner`] — the end-to-end MadPipe pipeline (phase 1 allocation +
//!   phase 2 scheduling through `madpipe-solver`) and a side-by-side
//!   comparison against the PipeDream baseline;
//! * [`stats`] — planner observability: DP memo/prune counters, the
//!   probe timeline and per-phase wall times surfaced by
//!   [`planner::madpipe_plan_with_stats`];
//! * [`certify`] — differential certification of a finished plan: the
//!   analytic checker, the event replay, the fault-injection executor
//!   and (on tiny instances) the exhaustive optimum are cross-checked
//!   against each other, and jitter/bandwidth robustness margins are
//!   measured per plan (`madpipe certify` in the CLI);
//! * [`degrade`] — degraded-mode replanning: apply a
//!   [`madpipe_model::PlatformFault`] (GPU loss, memory reduction, link
//!   slowdown), replan on the surviving platform — optionally through a
//!   warm [`ProbeSession`] — and report the throughput delta
//!   (`madpipe replan` in the CLI, `replan` in the serve protocol).

pub mod algorithm1;
pub mod certify;
pub mod degrade;
pub mod discrete;
pub mod dp;
pub mod fxhash;
pub mod hybrid;
pub mod oplus;
pub mod planner;
pub mod stats;

pub use algorithm1::{
    madpipe_allocation, madpipe_allocation_session, Algorithm1Config, Algorithm1Outcome,
};
pub use certify::{certify, certify_plan, Certificate, CertifyConfig, ExactCrossCheck};
pub use degrade::{replan, replan_with_session, ReplanOutcome};
pub use discrete::Discretization;
pub use dp::{madpipe_dp, madpipe_dp_with, DpOutcome, ProbeSession};
pub use hybrid::{best_hybrid, HybridPlan};
pub use oplus::oplus;
pub use planner::{
    compare, madpipe_plan, madpipe_plan_with_session, madpipe_plan_with_stats, Comparison,
    MadPipePlan, PlanError, PlannerConfig,
};
pub use stats::{DpStats, PlannerStats, ProbeRecord, ProbeSource};
