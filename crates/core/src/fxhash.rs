//! A minimal Fx-style hasher for the DP memo tables.
//!
//! The memo keys are small packed integers; the default SipHash is
//! overkill (it defends against HashDoS, irrelevant here) and shows up
//! hot in profiles. This is the classic multiply-rotate mix used by
//! rustc's `FxHasher`, specialized to our use.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for integer keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` build-hasher plugging [`FxHasher`] in.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(h(i)), "collision at {i}");
        }
    }

    #[test]
    fn map_works_as_a_drop_in() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes → two chunks
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
