//! Cluster-mode tests: gossip cache warming between daemons, the
//! consistent-hash router's forwarding and rollups, and a whole-daemon
//! kill from the cluster chaos schedule — in every case, every served
//! plan stays f64-bit-identical to offline `madpipe plan`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_json::{ToJson, Value};
use madpipe_model::{Chain, Layer, Platform};
use madpipe_serve::{canonical_instance, Ring, Router, RouterConfig, ServeConfig, Server};
use madpipe_sim::{ChaosStream, ClusterEvent};

/// Same deterministic instance family as the integration tests.
fn instance(seed: u64) -> (Chain, Platform) {
    let layers = (0..6)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (4 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    let chain = Chain::new(format!("net{seed}"), 1 << 20, layers).unwrap();
    let platform = Platform::gb(4, 2, 12.0).unwrap();
    (chain, platform)
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

fn roundtrip(addr: std::net::SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    assert!(!response.is_empty(), "server hung up");
    Value::parse(response.trim()).expect("response is JSON")
}

fn served_period_bits(v: &Value) -> u64 {
    v.field("plan")
        .unwrap()
        .field("period")
        .unwrap()
        .as_f64()
        .unwrap()
        .to_bits()
}

fn offline_period_bits(chain: &Chain, platform: &Platform) -> u64 {
    madpipe_plan(chain, platform, &PlannerConfig::default())
        .expect("offline plan")
        .period()
        .to_bits()
}

fn start_daemon(gossip_interval: Duration) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        panic_marker: None,
        gossip_interval,
        gossip_entries: 8,
        ..ServeConfig::default()
    })
    .expect("bind daemon")
}

fn metric(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn gossip_warms_a_peer_cache_bit_identically() {
    let a = start_daemon(Duration::from_millis(50));
    let b = start_daemon(Duration::from_millis(50));
    a.add_peer(b.local_addr().to_string());

    // Plan on A only; the instance must reach B through gossip alone.
    let (chain, platform) = instance(3);
    let line = plan_line(&chain, &platform);
    let v = roundtrip(a.local_addr(), &line);
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(v.field("cached").unwrap(), &Value::Bool(false));
    let bits = served_period_bits(&v);
    assert_eq!(bits, offline_period_bits(&chain, &platform));

    // Wait for B to apply a gossip round (schedule-free: poll counters).
    let deadline = Instant::now() + Duration::from_secs(10);
    while b.registry().counter("serve.gossip.applied") == 0 {
        assert!(Instant::now() < deadline, "gossip never reached the peer");
        std::thread::sleep(Duration::from_millis(10));
    }

    // B answers the same instance as a cache hit it never computed,
    // bit-identical to A's (and offline's) plan.
    let warmed = roundtrip(b.local_addr(), &line);
    assert_eq!(
        warmed.field("cached").unwrap(),
        &Value::Bool(true),
        "peer must answer from the gossiped entry: {}",
        warmed.to_string_compact()
    );
    assert_eq!(served_period_bits(&warmed), bits);
    assert_eq!(
        b.registry().counter("serve.cache.misses"),
        0,
        "the warmed daemon never planned this instance itself"
    );
    assert!(b.registry().counter("serve.gossip.received") >= 1);
    assert!(a.registry().counter("serve.gossip.rounds") >= 1);
    assert!(a.registry().counter("serve.gossip.sent") >= 1);

    // Repeat gossip rounds re-ship the same key; the peer reports it as
    // already held, never double-applies.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(b.registry().counter("serve.gossip.applied"), 1);

    a.shutdown();
    a.join();
    b.shutdown();
    b.join();
}

#[test]
fn router_forwards_by_canonical_key_and_rolls_up_the_cluster() {
    let daemons: Vec<Server> = (0..3)
        .map(|_| start_daemon(Duration::from_secs(3600)))
        .collect();
    let backends: Vec<String> = daemons.iter().map(|d| d.local_addr().to_string()).collect();
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: backends.clone(),
        timeout: Duration::from_secs(30),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let raddr = router.local_addr();

    // First pass computes, second pass must hit — the ring sends the
    // same canonical instance to the same daemon both times.
    let instances: Vec<(Chain, Platform)> = (0..6).map(instance).collect();
    for (chain, platform) in &instances {
        let v = roundtrip(raddr, &plan_line(chain, platform));
        assert_eq!(
            v.field("ok").unwrap(),
            &Value::Bool(true),
            "{}",
            v.to_string_compact()
        );
        assert_eq!(v.field("cached").unwrap(), &Value::Bool(false));
        assert_eq!(served_period_bits(&v), offline_period_bits(chain, platform));
    }
    for (chain, platform) in &instances {
        let v = roundtrip(raddr, &plan_line(chain, platform));
        assert_eq!(
            v.field("cached").unwrap(),
            &Value::Bool(true),
            "repeat must land on the same daemon's cache: {}",
            v.to_string_compact()
        );
        assert_eq!(served_period_bits(&v), offline_period_bits(chain, platform));
    }
    assert_eq!(router.registry().counter("router.forwarded"), 12);
    assert_eq!(router.registry().counter("router.failover"), 0);

    // Health rollup sees all three daemons.
    let health = roundtrip(raddr, r#"{"cmd":"health"}"#);
    let h = health.field("health").unwrap();
    assert_eq!(h.field("cluster").unwrap(), &Value::Bool(true));
    assert_eq!(h.field("alive").unwrap(), &Value::UInt(3));
    assert_eq!(h.field("configured").unwrap(), &Value::UInt(3));
    let Value::Array(per_daemon) = h.field("daemons").unwrap() else {
        panic!("daemons must be an array");
    };
    assert_eq!(per_daemon.len(), 3);

    // Metrics rollup sums the daemons' counters: 12 plan requests and
    // 6 hits + 6 misses across the cluster, however the ring spread them.
    let metrics = roundtrip(raddr, r#"{"cmd":"metrics"}"#);
    let text = metrics
        .field("metrics")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_eq!(
        metric(&text, "madpipe_cluster_daemons_reporting"),
        Some(3.0)
    );
    assert_eq!(
        metric(&text, "madpipe_cluster_daemons_configured"),
        Some(3.0)
    );
    assert_eq!(metric(&text, "madpipe_serve_requests_plan"), Some(12.0));
    assert_eq!(metric(&text, "madpipe_serve_cache_hits"), Some(6.0));
    assert_eq!(metric(&text, "madpipe_serve_cache_misses"), Some(6.0));
    assert!(
        metric(&text, "madpipe_router_forwarded").is_some(),
        "rollup must include the router's own counters: {text}"
    );

    router.shutdown();
    router.join();
    for d in daemons {
        d.shutdown();
        d.join();
    }
}

#[test]
fn daemon_kill_from_the_chaos_schedule_fails_over_and_converges() {
    let mut daemons: Vec<Option<Server>> = (0..3)
        .map(|_| Some(start_daemon(Duration::from_secs(3600))))
        .collect();
    let backends: Vec<String> = daemons
        .iter()
        .map(|d| d.as_ref().unwrap().local_addr().to_string())
        .collect();
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: backends.clone(),
        timeout: Duration::from_secs(30),
        breaker_open: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let raddr = router.local_addr();

    // The victim comes out of the deterministic cluster chaos schedule —
    // the same draw the CI drill would replay on a red run.
    let victim = ChaosStream::cluster_events(0x00AD_51BE, 64, 2, 3)
        .into_iter()
        .find_map(|e| match e {
            ClusterEvent::DaemonKill { daemon } => Some(daemon),
            _ => None,
        })
        .expect("64 cluster events include a daemon kill");

    // Pick instances the ring assigns to the victim and to survivors,
    // using the very ring the router built (same backends, same vnodes).
    let ring = Ring::new(&backends, RouterConfig::default().vnodes);
    let owner = |chain: &Chain, platform: &Platform| {
        ring.candidates(&canonical_instance(
            chain,
            platform,
            &PlannerConfig::default(),
        ))[0]
    };
    let victim_owned = (0..64u64)
        .map(instance)
        .find(|(c, p)| owner(c, p) == victim)
        .expect("some instance hashes to the victim");
    let survivor_owned = (0..64u64)
        .map(instance)
        .find(|(c, p)| owner(c, p) != victim)
        .expect("some instance hashes to a survivor");

    // Warm both while the cluster is whole.
    for (c, p) in [&victim_owned, &survivor_owned] {
        let v = roundtrip(raddr, &plan_line(c, p));
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
    }

    // Kill the victim daemon outright.
    let dead = daemons[victim].take().unwrap();
    dead.shutdown();
    dead.join();

    // The victim's keys fail over to the next ring candidate — still
    // served ok, still bit-identical; survivor-owned keys still hit.
    let v = roundtrip(raddr, &plan_line(&victim_owned.0, &victim_owned.1));
    assert_eq!(
        v.field("ok").unwrap(),
        &Value::Bool(true),
        "request owned by the dead daemon must fail over: {}",
        v.to_string_compact()
    );
    assert_eq!(
        served_period_bits(&v),
        offline_period_bits(&victim_owned.0, &victim_owned.1)
    );
    assert!(router.registry().counter("router.failover") >= 1);
    assert!(router.registry().counter("router.backend_errors") >= 1);
    let v = roundtrip(raddr, &plan_line(&survivor_owned.0, &survivor_owned.1));
    assert_eq!(v.field("cached").unwrap(), &Value::Bool(true));

    // The cluster converges: rollups settle at 2 alive of 3 configured.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = roundtrip(raddr, r#"{"cmd":"health"}"#);
        let h = health.field("health").unwrap();
        assert_eq!(h.field("configured").unwrap(), &Value::UInt(3));
        if h.field("alive").unwrap() == &Value::UInt(2) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cluster never converged: {}",
            health.to_string_compact()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let metrics = roundtrip(raddr, r#"{"cmd":"metrics"}"#);
    let text = metrics
        .field("metrics")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_eq!(
        metric(&text, "madpipe_cluster_daemons_reporting"),
        Some(2.0)
    );

    router.shutdown();
    router.join();
    for d in daemons.into_iter().flatten() {
        d.shutdown();
        d.join();
    }
}
