//! Discretization grids for the continuous DP coordinates.
//!
//! MadPipe-DP's state carries three continuous quantities — the special
//! processor's accumulated load `t_P`, its accumulated memory `m_P`, and
//! the forward/backward delay bound `V`. §5.1 of the paper discretizes
//! them onto 101 / 11 / 51 equally spaced points respectively; values are
//! always rounded *up* onto the grid, which is conservative for both the
//! period (`t_P`) and the memory constraints (`m_P`, `V`).

/// Grid resolution for the three discretized coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Discretization {
    /// Points for `t_P` over `[0, U(1,L)]` (paper: 101).
    pub t_points: usize,
    /// Points for `m_P` over `[0, M]` (paper: 11).
    pub m_points: usize,
    /// Points for `V` over `[0, U(1,L) + Σ C(i)]` (paper: 51).
    pub v_points: usize,
}

impl Default for Discretization {
    fn default() -> Self {
        Self {
            t_points: 101,
            m_points: 11,
            v_points: 51,
        }
    }
}

impl Discretization {
    /// A coarse grid for fast tests and sweeps.
    pub fn coarse() -> Self {
        Self {
            t_points: 41,
            m_points: 9,
            v_points: 21,
        }
    }

    /// A fine grid for the highest-fidelity runs.
    pub fn fine() -> Self {
        Self {
            t_points: 201,
            m_points: 21,
            v_points: 101,
        }
    }
}

/// One axis of the grid: `n` points uniformly covering `[0, max]`.
#[derive(Debug, Clone)]
pub struct Axis {
    max: f64,
    n: usize,
    /// `max / (n - 1)`, cached at construction — `index_up`/`value` sit
    /// on the DP's innermost loop and must not pay the division for the
    /// step on every call. The cached value is the exact same expression
    /// the accessors used to recompute, so results are bit-identical.
    step: f64,
}

impl Axis {
    /// Build an axis; `max = 0` collapses to the single point `0`.
    ///
    /// The invariants are enforced in release builds too: a degenerate
    /// axis (`n < 2`) would divide by zero in the step computation, and a
    /// non-finite `max` poisons every rounded value downstream — neither
    /// may ever be constructible, whatever the build profile.
    pub fn new(max: f64, n: usize) -> Self {
        assert!(n >= 2, "an axis needs at least two points, got {n}");
        assert!(
            max >= 0.0 && max.is_finite(),
            "axis maximum must be finite and non-negative, got {max}"
        );
        let step = max / (n - 1) as f64;
        Self { max, n, step }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the axis is degenerate (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Smallest grid index whose value is ≥ `x` (round up, clamped to the
    /// last point).
    ///
    /// A value within relative `1e-9` of a grid point counts as *on* it —
    /// the guard absorbs float noise from the prefix-sum arithmetic
    /// feeding the DP. The tolerance is relative to the ratio `x / step`
    /// (multiplied in, so it scales with the coordinate): an absolute
    /// guard is swamped on axes with large `max` and can round
    /// genuinely-above-grid values *down* on tiny ones, breaking the
    /// documented round-up conservatism.
    pub fn index_up(&self, x: f64) -> u16 {
        if self.max <= 0.0 || x <= 0.0 {
            return 0;
        }
        let idx = ((x / self.step) * (1.0 - 1e-9)).ceil() as isize;
        idx.clamp(0, (self.n - 1) as isize) as u16
    }

    /// Value of grid point `idx`.
    pub fn value(&self, idx: u16) -> f64 {
        if self.max <= 0.0 {
            return 0.0;
        }
        self.step * idx as f64
    }

    /// Whether `x` exceeds the axis maximum (infeasible coordinate).
    pub fn overflows(&self, x: f64) -> bool {
        x > self.max + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_rounds_up() {
        let ax = Axis::new(10.0, 11); // step 1.0
        assert_eq!(ax.index_up(0.0), 0);
        assert_eq!(ax.index_up(0.1), 1);
        assert_eq!(ax.index_up(1.0), 1);
        assert_eq!(ax.index_up(1.000001), 2);
        assert_eq!(ax.value(3), 3.0);
        // rounding up: value(index_up(x)) ≥ x
        for &x in &[0.0, 0.3, 2.7, 9.99, 10.0] {
            assert!(ax.value(ax.index_up(x)) + 1e-6 >= x);
        }
    }

    #[test]
    fn clamps_to_last_point() {
        let ax = Axis::new(10.0, 11);
        assert_eq!(ax.index_up(25.0), 10);
        assert!(ax.overflows(10.1));
        assert!(!ax.overflows(10.0));
    }

    #[test]
    fn zero_max_collapses() {
        let ax = Axis::new(0.0, 11);
        assert_eq!(ax.index_up(0.0), 0);
        assert_eq!(ax.value(0), 0.0);
        assert!(ax.overflows(0.5));
    }

    #[test]
    fn defaults_match_the_paper() {
        let d = Discretization::default();
        assert_eq!((d.t_points, d.m_points, d.v_points), (101, 11, 51));
    }

    #[test]
    fn near_grid_values_do_not_bump_up() {
        let ax = Axis::new(10.0, 11);
        // 3.0 + noise below the 1e-9 guard stays at index 3
        assert_eq!(ax.index_up(3.0 + 1e-11), 3);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn degenerate_point_count_is_rejected_in_release_builds_too() {
        let _ = Axis::new(10.0, 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_maximum_is_rejected() {
        let _ = Axis::new(f64::INFINITY, 11);
    }

    #[test]
    fn round_up_conservatism_holds_on_extreme_scales() {
        // The old absolute guard (`x / step - 1e-9`) was swamped by large
        // coordinates and oversized on tiny ones; the relative guard must
        // keep `value(index_up(x)) ≥ x` (up to the documented relative
        // tolerance) on axes spanning nanoseconds to exayears.
        for &max in &[1e-12, 1e-3, 1.0, 1e3, 1e12, 1e18] {
            let ax = Axis::new(max, 51);
            let step = max / 50.0;
            for i in 0..50u16 {
                // Just above a grid point by half a step: must round up.
                let x = step * i as f64 + step * 0.5;
                let idx = ax.index_up(x);
                assert!(
                    ax.value(idx) >= x * (1.0 - 4e-9),
                    "max {max}: value({idx}) = {} < {x}",
                    ax.value(idx)
                );
                assert_eq!(idx, i + 1, "max {max}: {x} must round up past point {i}");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn index_up_rounds_up_across_extreme_scales(
            exp_plus_12 in 0u32..31,
            n in 2usize..2000,
            frac in 0.0f64..1.0,
        ) {
            let max = 10f64.powi(exp_plus_12 as i32 - 12);
            let ax = Axis::new(max, n);
            let x = max * frac;
            let idx = ax.index_up(x);
            // Round-up conservatism, up to the documented relative guard.
            proptest::prop_assert!(
                ax.value(idx) >= x * (1.0 - 4e-9),
                "value({}) = {} < {} on max {}", idx, ax.value(idx), x, max
            );
            // And never more than one step above (no over-rounding).
            if idx > 0 {
                proptest::prop_assert!(ax.value(idx - 1) < x);
            }
        }

        #[test]
        fn index_up_is_monotone(
            n in 2usize..200,
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let ax = Axis::new(1e9, n);
            let (lo, hi) = (a.min(b) * 1e9, a.max(b) * 1e9);
            proptest::prop_assert!(ax.index_up(lo) <= ax.index_up(hi));
        }
    }
}
