//! Algorithm 1: the modified binary search over the target period `T̂`.
//!
//! `MadPipe-DP(T̂)` is non-increasing in `T̂` (a larger target stores
//! fewer activations, relaxing the memory constraints), while any
//! schedule of the produced allocation needs a period of at least `T̂`
//! for its memory estimates to hold. The best target therefore minimizes
//! `max(MadPipe-DP(T̂), T̂)`; with `T = MadPipe-DP(T̂)`, `min(T, T̂)`
//! lower-bounds and `max(T, T̂)` upper-bounds that optimum, giving the
//! bisection below (the paper's Algorithm 1; the pseudocode's line 7
//! reuses the *raw* DP value in `min(T_i, T̂_i)` — after line 6's
//! overwrite the minimum would always equal `T̂_i`).

use madpipe_model::{Allocation, Chain, Platform, StagePolicy};

use crate::discrete::Discretization;
use crate::dp::ProbeSession;
use crate::stats::ProbeSource;

/// Tuning of Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct Algorithm1Config {
    /// Bisection iterations (paper: `K = 10`).
    pub iterations: usize,
    /// Discretization of the DP state.
    pub discretization: Discretization,
    /// Allow the special processor (the paper's MadPipe). `false` runs
    /// the memory-aware *contiguous* ablation: same DP, same memory
    /// model, but every GPU holds exactly one stage.
    pub use_special: bool,
}

impl Default for Algorithm1Config {
    fn default() -> Self {
        Self {
            iterations: 10,
            discretization: Discretization::default(),
            use_special: true,
        }
    }
}

/// One probed target and the allocation it produced.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The target period `T̂`.
    pub t_hat: f64,
    /// Raw DP period `MadPipe-DP(T̂)` (infinite when infeasible).
    pub raw: f64,
    /// Estimated achievable period `max(raw, T̂)`.
    pub estimate: f64,
    /// The allocation (when feasible).
    pub allocation: Option<Allocation>,
    /// Per-stage policies of `allocation` (same order as its stages;
    /// empty iff `allocation` is `None`).
    pub policies: Vec<StagePolicy>,
}

/// Outcome of the phase-1 search.
#[derive(Debug, Clone)]
pub struct Algorithm1Outcome {
    /// Best estimated `max(MadPipe-DP(T̂), T̂)` over all probed targets —
    /// the *phase-1 period* (the dashed MadPipe line of Figure 6).
    pub period: f64,
    /// The target period that achieved it.
    pub t_hat: f64,
    /// The allocation produced at that target.
    pub allocation: Allocation,
    /// Per-stage policies of `allocation` (same order as its stages).
    pub policies: Vec<StagePolicy>,
    /// Every probe, in bisection order. Phase 2 schedules each distinct
    /// allocation and keeps the best *achieved* period — the special
    /// processor's deliberate `g−1` memory under-estimate (§4.2.1) makes
    /// single probes optimistic, and probes whose allocation schedules
    /// close to its estimate win out.
    pub probes: Vec<Probe>,
}

impl Algorithm1Outcome {
    /// Distinct feasible `(allocation, policies)` candidates over all
    /// probes, best estimate first (deduplicated on both — the same
    /// allocation under different policies schedules differently).
    pub fn candidate_allocations(&self) -> Vec<(&Allocation, &[StagePolicy])> {
        let mut order: Vec<&Probe> = self
            .probes
            .iter()
            .filter(|p| p.allocation.is_some())
            .collect();
        order.sort_by(|a, b| a.estimate.total_cmp(&b.estimate));
        let mut seen: Vec<(&Allocation, &[StagePolicy])> = Vec::new();
        for p in order {
            let alloc = p.allocation.as_ref().expect("filtered");
            let cand = (alloc, p.policies.as_slice());
            if !seen.contains(&cand) {
                seen.push(cand);
            }
        }
        seen
    }
}

/// Run phase 1 of MadPipe: bisect over `T̂`, keep the best allocation.
///
/// Returns `None` when every probed target is memory-infeasible (the
/// model cannot be trained on this platform under MadPipe's estimates).
pub fn madpipe_allocation(
    chain: &Chain,
    platform: &Platform,
    cfg: &Algorithm1Config,
) -> Option<Algorithm1Outcome> {
    let mut session = ProbeSession::new(chain, platform, &cfg.discretization);
    madpipe_allocation_session(chain, platform, cfg, &mut session, cfg.use_special)
}

/// [`madpipe_allocation`] probing through a shared [`ProbeSession`], so
/// the bisection benefits from (and feeds) the cross-probe outcome cache
/// and infeasibility bound. `use_special` overrides the config flag — the
/// planner runs the contiguous-fallback bisection through the same
/// session with the special processor off.
pub fn madpipe_allocation_session(
    chain: &Chain,
    platform: &Platform,
    cfg: &Algorithm1Config,
    session: &mut ProbeSession<'_>,
    use_special: bool,
) -> Option<Algorithm1Outcome> {
    let source = if use_special {
        ProbeSource::Bisection
    } else {
        ProbeSource::ContiguousFallback
    };
    let total_u = chain.total_compute_time();
    let mut lb = total_u / platform.n_gpus as f64;
    let mut ub = total_u + platform.total_cut_time(chain);
    let mut t_hat = lb.max(f64::MIN_POSITIVE);

    let mut best: Option<Algorithm1Outcome> = None;
    let mut probes: Vec<Probe> = Vec::with_capacity(cfg.iterations);

    for _ in 0..cfg.iterations {
        let out = session.probe(t_hat, use_special, source);
        let raw = out.period;
        let estimate = raw.max(t_hat);
        probes.push(Probe {
            t_hat,
            raw,
            estimate,
            allocation: out.allocation.clone(),
            policies: out.policies.clone(),
        });
        if let Some(alloc) = out.allocation {
            let better = best.as_ref().is_none_or(|b| estimate < b.period);
            if better {
                best = Some(Algorithm1Outcome {
                    period: estimate,
                    t_hat,
                    allocation: alloc,
                    policies: out.policies,
                    probes: Vec::new(),
                });
            }
            lb = lb.max(raw.min(t_hat));
            ub = ub.min(estimate);
        } else {
            // Infeasible at this target: only larger targets can help.
            lb = lb.max(t_hat);
        }
        t_hat = (lb + ub) / 2.0;
        if !(t_hat.is_finite()) || t_hat <= 0.0 {
            break;
        }
    }

    best.map(|mut b| {
        b.probes = probes;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(costs: &[(f64, f64)], act: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, 0, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn finds_near_perfect_balance_when_memory_is_plentiful() {
        let c = chain(&[(1.0, 1.0); 8], 1);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let out = madpipe_allocation(&c, &platform, &Algorithm1Config::default()).unwrap();
        // Perfect balance is 16/4 = 4.
        assert!(out.period <= 4.5, "period {}", out.period);
        assert_eq!(out.probes.len(), 10);
    }

    #[test]
    fn none_when_memory_is_hopeless() {
        let c = chain(&[(1.0, 1.0)], 1 << 30);
        let platform = Platform::new(2, 1 << 10, 1e9).unwrap();
        assert!(madpipe_allocation(&c, &platform, &Algorithm1Config::default()).is_none());
    }

    #[test]
    fn best_period_never_above_sequential() {
        let c = chain(&[(2.0, 1.0), (1.0, 3.0), (4.0, 1.0), (1.0, 1.0)], 1000);
        let platform = Platform::new(3, 1 << 20, 1e5).unwrap();
        let out = madpipe_allocation(&c, &platform, &Algorithm1Config::default()).unwrap();
        let seq = c.total_compute_time() + platform.total_cut_time(&c);
        assert!(out.period <= seq + 1e-9);
    }

    #[test]
    fn tighter_memory_never_improves_the_period() {
        let c = chain(&[(1.0, 1.0); 10], 1 << 16);
        let cfg = Algorithm1Config::default();
        let roomy = Platform::new(4, 16 << 20, 1e7).unwrap();
        let tight = Platform::new(4, 2 << 20, 1e7).unwrap();
        let a = madpipe_allocation(&c, &roomy, &cfg).unwrap();
        let b = madpipe_allocation(&c, &tight, &cfg).unwrap();
        assert!(
            a.period <= b.period + 0.3,
            "roomy {} tight {}",
            a.period,
            b.period
        );
    }
}
