//! Error type shared by the model crate.

use std::fmt;

/// Errors raised when constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A chain must contain at least one layer.
    EmptyChain,
    /// A layer carried a NaN/infinite/negative cost; `detail` names the
    /// offending field and its value.
    MalformedLayer { index: usize, detail: String },
    /// A partition/allocation does not cover `0..L` with contiguous,
    /// in-order, non-empty stages.
    BadCover { detail: String },
    /// A stage references a GPU outside `0..P`.
    GpuOutOfRange { gpu: usize, n_gpus: usize },
    /// A platform parameter is non-positive or non-finite.
    BadPlatform { detail: String },
    /// A platform fault is unusable (out-of-range fraction, losing every
    /// GPU, malformed spec, …).
    BadFault { detail: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyChain => write!(f, "chain must contain at least one layer"),
            ModelError::MalformedLayer { index, detail } => {
                write!(f, "layer {index}: {detail}")
            }
            ModelError::BadCover { detail } => write!(f, "stages do not cover the chain: {detail}"),
            ModelError::GpuOutOfRange { gpu, n_gpus } => {
                write!(
                    f,
                    "stage assigned to GPU {gpu} but platform has {n_gpus} GPUs"
                )
            }
            ModelError::BadPlatform { detail } => write!(f, "invalid platform: {detail}"),
            ModelError::BadFault { detail } => write!(f, "invalid platform fault: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::GpuOutOfRange { gpu: 9, n_gpus: 4 };
        assert!(e.to_string().contains("GPU 9"));
        assert!(e.to_string().contains("4 GPUs"));
    }
}
