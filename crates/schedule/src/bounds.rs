//! Allocation-independent lower bounds and feasibility necessities.
//!
//! Useful as planner sanity anchors: every valid periodic schedule of
//! *any* allocation obeys these, so every planner result can be checked
//! against them (the workspace test suites do).

use madpipe_model::{Chain, Platform};

/// Lower bound on the period of any schedule on `platform`:
///
/// * the total compute `U(1,L)` spread perfectly over `P` GPUs, and
/// * the busiest single layer, which cannot be split.
pub fn period_lower_bound(chain: &Chain, platform: &Platform) -> f64 {
    let balance = chain.total_compute_time() / platform.n_gpus as f64;
    balance.max(chain.max_layer_compute_time())
}

/// Aggregate memory any execution needs at some instant, summed over all
/// GPUs: three copies of every parameter plus at least one live copy of
/// every stored activation (the moment right before the last backward
/// of a batch starts, every layer's input of that batch is resident
/// somewhere).
pub fn aggregate_memory_required(chain: &Chain) -> u64 {
    3 * chain.weight_bytes(0..chain.len()) + chain.stored_activation_bytes(0..chain.len())
}

/// Necessity check: when the platform's pooled memory cannot hold even
/// [`aggregate_memory_required`], no allocation of any shape can train
/// the chain — every planner must fail.
pub fn trivially_infeasible(chain: &Chain, platform: &Platform) -> bool {
    (platform.n_gpus as u64).saturating_mul(platform.memory_bytes)
        < aggregate_memory_required(chain)
}

/// Upper bound on the useful period: the fully sequential execution
/// (one batch at a time through every layer and every potential cut).
/// Any sane planner lands at or below this.
pub fn period_upper_bound(chain: &Chain, platform: &Platform) -> f64 {
    chain.total_compute_time() + platform.total_cut_time(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain() -> Chain {
        Chain::new(
            "t",
            100,
            vec![
                Layer::new("a", 1.0, 2.0, 10, 200),
                Layer::new("b", 4.0, 3.0, 20, 300),
                Layer::new("c", 1.0, 1.0, 30, 400),
            ],
        )
        .unwrap()
    }

    #[test]
    fn period_bound_takes_the_busiest_layer() {
        let c = chain();
        // U = 12; on 4 GPUs balance = 3, but layer b costs 7.
        let p4 = Platform::new(4, 1 << 30, 1e9).unwrap();
        assert_eq!(period_lower_bound(&c, &p4), 7.0);
        // On 1 GPU the balance term dominates.
        let p1 = Platform::new(1, 1 << 30, 1e9).unwrap();
        assert_eq!(period_lower_bound(&c, &p1), 12.0);
    }

    #[test]
    fn aggregate_memory_counts_weights_and_one_activation_copy() {
        // 3·(10+20+30) + (100+200+300)
        assert_eq!(aggregate_memory_required(&chain()), 180 + 600);
    }

    #[test]
    fn trivial_infeasibility_threshold() {
        let c = chain();
        let tight = Platform::new(2, 389, 1e9).unwrap(); // 2·389 < 780
        assert!(trivially_infeasible(&c, &tight));
        let enough = Platform::new(2, 390, 1e9).unwrap();
        assert!(!trivially_infeasible(&c, &enough));
    }

    #[test]
    fn bounds_are_ordered() {
        let c = chain();
        let p = Platform::new(3, 1 << 30, 100.0).unwrap();
        assert!(period_lower_bound(&c, &p) <= period_upper_bound(&c, &p));
    }
}
