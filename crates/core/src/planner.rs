//! End-to-end planning: MadPipe (phase 1 + phase 2) and the side-by-side
//! comparison against the PipeDream baseline used by the experiments.
//!
//! All DP probes of one plan — the bisection, the contiguous-fallback
//! ablation and the refinement grid — go through one shared
//! [`ProbeSession`], so revisited targets cost a hash lookup and targets
//! below a proven-infeasible one are answered by the monotone bound.
//! Independent work (the refinement probes and the phase-2 scheduling of
//! distinct candidate allocations) fans out over
//! [`PlannerConfig::threads`] scoped workers; candidates are deduplicated
//! up front and results are folded in a fixed submission order with a
//! strict `<`, so the plan is bit-identical whatever the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

use madpipe_model::{Allocation, Chain, Platform, PolicySpec, StagePolicy};
use madpipe_schedule::ScheduleError;
use madpipe_solver::{best_period_with, PlaceConfig, SolvedSchedule};

use crate::algorithm1::{madpipe_allocation_session, Algorithm1Config, Algorithm1Outcome};
use crate::dp::ProbeSession;
use crate::stats::{counters, PlannerStats, ProbeSource};

/// Tuning for the whole MadPipe pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Phase-1 (Algorithm 1 + DP discretization) parameters.
    pub algorithm1: Algorithm1Config,
    /// Phase-2 (branch-and-bound scheduler) parameters.
    pub place: PlaceConfig,
    /// Extra refinement probes: after the bisection, this many targets on
    /// a geometric grid between the load lower bound and the best
    /// achieved period are probed and scheduled. Algorithm 1's bisection
    /// steers by phase-1 *estimates*; because the special processor is
    /// deliberately under-estimated (§4.2.1), the estimate-optimal corner
    /// is not always the achieved-optimal one, and a coarse grid over
    /// achieved periods recovers it. `0` disables refinement (pure
    /// Algorithm 1 probe selection).
    pub refine_probes: usize,
    /// Worker threads for independent probes (refinement grid) and
    /// phase-2 candidate scheduling. `1` (the default) runs everything
    /// on the calling thread; any value produces bit-identical plans.
    pub threads: usize,
    /// Per-stage execution policy configuration: the recompute stance
    /// and the weight-versioning policy every DP probe solves under. The
    /// default reproduces the paper's memory model bit-for-bit.
    pub policy: PolicySpec,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            algorithm1: Algorithm1Config::default(),
            place: PlaceConfig::default(),
            refine_probes: 8,
            threads: 1,
            policy: PolicySpec::default(),
        }
    }
}

/// Why MadPipe failed to produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The instance is degenerate: no planner could do anything with it
    /// (zero-compute chain, more GPUs or layers than the DP state can
    /// index, …). The message says which precondition failed.
    Infeasible(String),
    /// Phase 1 found no memory-feasible allocation at any target period.
    Phase1Infeasible,
    /// Phase 2 could not schedule the phase-1 allocation at any period.
    Phase2(ScheduleError),
    /// A caller-owned [`ProbeSession`] was built under a different
    /// [`PolicySpec`] than the requested plan. Policy shapes the DP axes
    /// and transition set, so reusing the session would silently answer
    /// probes under the wrong memory/time model — rejected instead.
    PolicyMismatch {
        /// Policy the session was built with.
        session: PolicySpec,
        /// Policy the planner config asked for.
        requested: PolicySpec,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Infeasible(why) => write!(f, "degenerate instance: {why}"),
            PlanError::Phase1Infeasible => {
                write!(f, "no memory-feasible allocation at any target period")
            }
            PlanError::Phase2(e) => write!(f, "phase-1 allocation unschedulable: {e}"),
            PlanError::PolicyMismatch { session, requested } => write!(
                f,
                "probe session solves under policy (recompute={}, weights={}) but the plan \
                 requests (recompute={}, weights={}); build a session with the matching policy",
                session.recompute.as_str(),
                session.weights.as_str(),
                requested.recompute.as_str(),
                requested.weights.as_str(),
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A complete MadPipe plan.
#[derive(Debug, Clone)]
pub struct MadPipePlan {
    /// Phase-1 outcome: the best-estimate allocation and its optimistic
    /// period (the dashed MadPipe line of Figure 6).
    pub phase1: Algorithm1Outcome,
    /// The allocation actually scheduled — the probe whose phase-2
    /// schedule achieved the smallest valid period.
    pub allocation: madpipe_model::Allocation,
    /// Per-stage execution policies of `allocation` (same order as its
    /// stages). All-default under the default [`PolicySpec`].
    pub policies: Vec<StagePolicy>,
    /// The valid schedule found by phase 2 (the solid line).
    pub schedule: SolvedSchedule,
}

impl MadPipePlan {
    /// Achieved (valid) period.
    pub fn period(&self) -> f64 {
        self.schedule.period
    }

    /// Throughput in mini-batches per second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.schedule.period
    }

    /// Achieved period over the phase-1 estimate (≥ 1 means phase 1 was
    /// optimistic; the paper reports MadPipe's dashed and solid lines
    /// nearly coincide).
    pub fn optimism_ratio(&self) -> f64 {
        self.schedule.period / self.phase1.period
    }
}

/// Reject instances the DP cannot even represent, with a message naming
/// the failed precondition instead of a panic deep inside the recursion.
fn validate(chain: &Chain, platform: &Platform) -> Result<(), PlanError> {
    // `Chain::new` guarantees every layer time is finite and
    // non-negative, but sums of huge finite values can still overflow to
    // `∞`; catch that here so no non-finite target ever reaches the DP,
    // the schedule search or the event heap.
    if !chain.total_compute_time().is_finite() {
        return Err(PlanError::Infeasible(
            "chain total compute time overflows to infinity".into(),
        ));
    }
    if !platform.total_cut_time(chain).is_finite() {
        return Err(PlanError::Infeasible(
            "total communication time overflows to infinity \
             (activations too large for the bandwidth)"
                .into(),
        ));
    }
    // Even individually finite totals can break the search arithmetic:
    // the bisection's `(lo + hi) / 2` and Algorithm 1's upper bound
    // `U(1,L) + ΣC(k)` must themselves stay finite. 10^300 seconds is
    // far beyond any physical profile, so reject rather than risk an
    // intermediate infinity reaching a DP probe.
    if chain.total_compute_time() + platform.total_cut_time(chain) > 1e300 {
        return Err(PlanError::Infeasible(
            "instance timing magnitudes are large enough to overflow period arithmetic".into(),
        ));
    }
    if chain.total_compute_time() <= 0.0 {
        return Err(PlanError::Infeasible(
            "chain has zero total compute time (all layers are zero-cost)".into(),
        ));
    }
    if chain.len() >= 1 << 16 {
        return Err(PlanError::Infeasible(format!(
            "chain has {} layers; the packed DP key indexes at most 65535 (coarsen first)",
            chain.len()
        )));
    }
    if platform.n_gpus >= 256 {
        return Err(PlanError::Infeasible(format!(
            "platform has {} GPUs; the packed DP key indexes at most 255",
            platform.n_gpus
        )));
    }
    Ok(())
}

/// Schedule each candidate allocation (contiguous ones exactly via 1F1B*,
/// the rest through the branch-and-bound solver) on up to `threads`
/// workers. Results keep the input order; each solve is a pure function
/// of its allocation, so the outcome is thread-count independent.
fn schedule_batch(
    chain: &Chain,
    platform: &Platform,
    candidates: &[(Allocation, Vec<StagePolicy>)],
    place: &PlaceConfig,
    threads: usize,
) -> Vec<Result<SolvedSchedule, ScheduleError>> {
    let solve_one = |(alloc, policies): &(Allocation, Vec<StagePolicy>)| -> Result<SolvedSchedule, ScheduleError> {
        if alloc.is_contiguous() {
            madpipe_schedule::best_contiguous_period_with(chain, platform, alloc, policies).map(
                |b| SolvedSchedule {
                    period: b.period,
                    pattern: b.pattern,
                    report: b.report,
                },
            )
        } else {
            best_period_with(chain, platform, alloc, policies, place)
        }
    };

    let threads = threads.max(1).min(candidates.len().max(1));
    if threads == 1 || candidates.len() == 1 {
        return candidates.iter().map(solve_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<SolvedSchedule, ScheduleError>>> =
        (0..candidates.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let solve_one = &solve_one;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= candidates.len() {
                        break;
                    }
                    local.push((i, solve_one(&candidates[i])));
                }
                local
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("scheduling worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every candidate scheduled"))
        .collect()
}

/// Run the full MadPipe pipeline.
///
/// Phase 2 schedules every distinct allocation Algorithm 1 probed (best
/// estimate first) and keeps the smallest *achieved* period: the special
/// processor's deliberate `g−1` memory under-estimate makes individual
/// probes optimistic, and the probe that schedules closest to its
/// estimate is the right one to ship.
pub fn madpipe_plan(
    chain: &Chain,
    platform: &Platform,
    cfg: &PlannerConfig,
) -> Result<MadPipePlan, PlanError> {
    madpipe_plan_with_stats(chain, platform, cfg).0
}

/// [`madpipe_plan`] returning the planner instrumentation alongside the
/// result. Stats are populated even on failure — the counters say where
/// the time went and why nothing planned.
pub fn madpipe_plan_with_stats(
    chain: &Chain,
    platform: &Platform,
    cfg: &PlannerConfig,
) -> (Result<MadPipePlan, PlanError>, PlannerStats) {
    let total = madpipe_obs::timed("plan.total");
    let mut stats = PlannerStats {
        threads: cfg.threads.max(1),
        ..PlannerStats::default()
    };
    let result = match validate(chain, platform) {
        Err(e) => Err(e),
        Ok(()) => {
            let mut session = ProbeSession::new_with_policy(
                chain,
                platform,
                &cfg.algorithm1.discretization,
                cfg.policy,
            );
            plan_inner(&mut session, cfg, &mut stats)
        }
    };
    stats.total_seconds = total.finish();
    mirror_into_metrics(&mut stats);
    (result, stats)
}

/// Plan through a caller-owned [`ProbeSession`] — the entry point for
/// long-lived callers (the `madpipe serve` worker pool) that plan the
/// same `(chain, platform)` instance repeatedly. Revisited DP targets
/// are answered from the session's outcome cache, so a warm session
/// skips every solve while producing a plan **bit-identical** to a
/// fresh one (the probes are pure functions of the session inputs).
///
/// The returned [`PlannerStats`] snapshot the session's *cumulative*
/// counters: on a reused session, DP counters include earlier plans.
pub fn madpipe_plan_with_session(
    session: &mut ProbeSession<'_>,
    cfg: &PlannerConfig,
) -> (Result<MadPipePlan, PlanError>, PlannerStats) {
    let total = madpipe_obs::timed("plan.total");
    let mut stats = PlannerStats {
        threads: cfg.threads.max(1),
        ..PlannerStats::default()
    };
    let result = if session.policy() != cfg.policy {
        // Reusing a session across policy specs would answer probes
        // under the wrong axes/memory model; refuse loudly.
        Err(PlanError::PolicyMismatch {
            session: session.policy(),
            requested: cfg.policy,
        })
    } else {
        match validate(session.chain(), session.platform()) {
            Err(e) => Err(e),
            Ok(()) => plan_inner(session, cfg, &mut stats),
        }
    };
    stats.total_seconds = total.finish();
    mirror_into_metrics(&mut stats);
    (result, stats)
}

/// Mirror the planner-level counters and phase clocks into the frozen
/// registry, so machine consumers (`--metrics-out`, `--stats-json`)
/// see one namespace alongside the DP counters.
fn mirror_into_metrics(stats: &mut PlannerStats) {
    if stats.schedules_attempted > 0 {
        stats.metrics.bump_counter(
            counters::SCHEDULES_ATTEMPTED,
            stats.schedules_attempted as u64,
        );
    }
    if stats.schedules_solved > 0 {
        stats
            .metrics
            .bump_counter(counters::SCHEDULES_SOLVED, stats.schedules_solved as u64);
    }
    for source in [
        ProbeSource::Bisection,
        ProbeSource::ContiguousFallback,
        ProbeSource::Refinement,
        ProbeSource::Bridge,
    ] {
        let n = stats.probes.iter().filter(|p| p.source == source).count();
        if n > 0 {
            stats
                .metrics
                .bump_counter(&format!("planner.probes.{source}"), n as u64);
        }
    }
    stats
        .metrics
        .set_gauge("plan.phase1.seconds", stats.phase1_seconds);
    stats
        .metrics
        .set_gauge("plan.fallback.seconds", stats.fallback_seconds);
    stats
        .metrics
        .set_gauge("plan.refine.seconds", stats.refine_seconds);
    stats
        .metrics
        .set_gauge("plan.schedule.seconds", stats.schedule_seconds);
    stats
        .metrics
        .set_gauge("plan.total.seconds", stats.total_seconds);
}

fn plan_inner(
    session: &mut ProbeSession<'_>,
    cfg: &PlannerConfig,
    stats: &mut PlannerStats,
) -> Result<MadPipePlan, PlanError> {
    let chain = session.chain();
    let platform = session.platform();
    let threads = cfg.threads.max(1);

    // Phase 1: Algorithm 1's bisection.
    let clock = madpipe_obs::timed("plan.phase1.bisect");
    let phase1 = madpipe_allocation_session(
        chain,
        platform,
        &cfg.algorithm1,
        session,
        cfg.algorithm1.use_special,
    );
    stats.phase1_seconds = clock.finish();

    // Memory-aware contiguous fallback: the same DP without the special
    // processor, through the same session. Its allocations schedule
    // exactly at their 1F1B* optimum, so it rescues instances where every
    // special-processor probe is over-optimistic; it is also the ablation
    // baseline.
    let clock = madpipe_obs::timed("plan.fallback.contiguous");
    let fallback = if cfg.algorithm1.use_special {
        madpipe_allocation_session(chain, platform, &cfg.algorithm1, session, false)
    } else {
        None
    };
    stats.fallback_seconds = clock.finish();

    let finalize = |stats: &mut PlannerStats, session: &mut ProbeSession<'_>| {
        stats.dp = session.stats();
        stats.metrics = session.registry().snapshot();
        stats.probes = session.take_records();
    };

    let Some(phase1) = phase1 else {
        finalize(stats, session);
        return Err(PlanError::Phase1Infeasible);
    };

    // Candidates from both bisections, deduplicated up front (best
    // phase-1 estimate first, fallback after) so the parallel scheduler
    // never solves the same (allocation, policies) pair twice.
    let mut candidates: Vec<(Allocation, Vec<StagePolicy>)> = Vec::new();
    let push_candidates = |candidates: &mut Vec<(Allocation, Vec<StagePolicy>)>,
                           outcome: &Algorithm1Outcome| {
        for (alloc, policies) in outcome.candidate_allocations() {
            let pair = (alloc.clone(), policies.to_vec());
            if !candidates.contains(&pair) {
                candidates.push(pair);
            }
        }
    };
    push_candidates(&mut candidates, &phase1);
    if let Some(f) = &fallback {
        push_candidates(&mut candidates, f);
    }

    // Phase 2: schedule every candidate; fold in submission order with a
    // strict `<` so ties keep the earlier (better-estimate) candidate.
    let mut best: Option<(Allocation, Vec<StagePolicy>, SolvedSchedule)> = None;
    let mut last_err: Option<ScheduleError> = None;
    let clock = madpipe_obs::timed("plan.phase2.schedule");
    let solved = schedule_batch(chain, platform, &candidates, &cfg.place, threads);
    stats.schedules_attempted += candidates.len();
    for ((alloc, policies), res) in candidates.iter().zip(solved) {
        match res {
            Ok(s) => {
                stats.schedules_solved += 1;
                if best.as_ref().is_none_or(|(_, _, b)| s.period < b.period) {
                    best = Some((alloc.clone(), policies.clone(), s));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    stats.schedule_seconds += clock.finish();

    // Refinement: probe extra targets between the load lower bound and
    // the best achieved period, selecting by achieved period. The grid
    // targets are independent, so they fan out in one parallel batch.
    if let Some((_, _, s)) = &best {
        let lb = chain.total_compute_time() / platform.n_gpus as f64;
        let hi = s.period * 1.02;
        if cfg.refine_probes > 0 && hi > lb {
            let clock = madpipe_obs::timed("plan.refine.grid");
            let ratio = (hi / lb).powf(1.0 / cfg.refine_probes as f64);
            let seen: Vec<f64> = phase1.probes.iter().map(|p| p.t_hat).collect();
            let mut targets: Vec<f64> = Vec::new();
            for i in 0..=cfg.refine_probes {
                let t_hat = lb * ratio.powi(i as i32);
                let dup = |&t: &f64| (t - t_hat).abs() < 1e-6 * t_hat.max(1e-12);
                if !seen.iter().any(dup) && !targets.iter().any(dup) {
                    targets.push(t_hat);
                }
            }
            let outcomes = session.probe_many(
                &targets,
                cfg.algorithm1.use_special,
                ProbeSource::Refinement,
                threads,
            );
            stats.refine_seconds = clock.finish();

            let mut fresh: Vec<(Allocation, Vec<StagePolicy>)> = Vec::new();
            for out in outcomes {
                if let Some(alloc) = out.allocation {
                    let pair = (alloc, out.policies);
                    if !candidates.contains(&pair) && !fresh.contains(&pair) {
                        fresh.push(pair);
                    }
                }
            }
            let clock = madpipe_obs::timed("plan.phase2.schedule");
            let solved = schedule_batch(chain, platform, &fresh, &cfg.place, threads);
            stats.schedules_attempted += fresh.len();
            for ((alloc, policies), res) in fresh.iter().zip(solved) {
                match res {
                    Ok(s) => {
                        stats.schedules_solved += 1;
                        if best.as_ref().is_none_or(|(_, _, b)| s.period < b.period) {
                            best = Some((alloc.clone(), policies.clone(), s));
                        }
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            stats.schedule_seconds += clock.finish();
        }
    }

    finalize(stats, session);
    match best {
        Some((allocation, policies, schedule)) => Ok(MadPipePlan {
            phase1,
            allocation,
            policies,
            schedule,
        }),
        None => Err(PlanError::Phase2(
            last_err.expect("candidate_allocations is non-empty when phase 1 succeeds"),
        )),
    }
}

/// Both planners on one instance (one cell of the paper's figures).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// MadPipe plan (or failure).
    pub madpipe: Result<MadPipePlan, PlanError>,
    /// PipeDream baseline plan (or failure).
    pub pipedream: Result<madpipe_pipedream::PipeDreamPlan, madpipe_pipedream::PlanError>,
    /// MadPipe planner instrumentation (populated even on failure).
    pub stats: PlannerStats,
}

impl Comparison {
    /// PipeDream period / MadPipe period (> 1 means MadPipe wins), when
    /// both produced plans.
    pub fn ratio(&self) -> Option<f64> {
        match (&self.madpipe, &self.pipedream) {
            (Ok(m), Ok(p)) => Some(p.period() / m.period()),
            _ => None,
        }
    }
}

/// Run MadPipe and PipeDream side by side.
pub fn compare(chain: &Chain, platform: &Platform, cfg: &PlannerConfig) -> Comparison {
    let (madpipe, stats) = madpipe_plan_with_stats(chain, platform, cfg);
    Comparison {
        madpipe,
        pipedream: madpipe_pipedream::pipedream_plan(chain, platform),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn plan_produces_a_valid_schedule() {
        let c = chain(
            &[(1.0, 2.0), (2.0, 1.0), (3.0, 2.0), (1.0, 1.0)],
            1 << 10,
            1 << 8,
        );
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let plan = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap();
        assert!(plan.period() > 0.0);
        assert!(plan.throughput() > 0.0);
        // The valid schedule can be slower but never faster than the
        // load bound of its own allocation.
        let lb = plan.phase1.allocation.load_bound(&c, &platform);
        assert!(plan.period() + 1e-9 >= lb);
    }

    #[test]
    fn madpipe_not_worse_than_pipedream_on_imbalanced_chain() {
        // The {0,2} vs {1} balance needs the special processor.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 16, 0);
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let cmp = compare(&c, &platform, &PlannerConfig::default());
        let ratio = cmp.ratio().expect("both must plan");
        assert!(
            ratio >= 1.0 - 1e-6,
            "PipeDream/MadPipe ratio {ratio} < 1 on a special-friendly instance"
        );
        assert!(ratio > 1.2, "expected a clear MadPipe win, ratio {ratio}");
    }

    #[test]
    fn infeasible_instances_error_cleanly() {
        let c = chain(&[(1.0, 1.0)], 1 << 30, 1 << 28);
        let platform = Platform::new(2, 1 << 12, 1e6).unwrap();
        let err = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap_err();
        assert_eq!(err, PlanError::Phase1Infeasible);
    }

    #[test]
    fn parallel_planning_is_bit_identical_to_sequential() {
        let c = chain(
            &[
                (1.0, 2.0),
                (3.0, 1.0),
                (2.0, 2.0),
                (1.0, 1.0),
                (2.0, 3.0),
                (1.5, 0.5),
            ],
            1 << 14,
            1 << 9,
        );
        let platform = Platform::new(3, 4 << 20, 1e7).unwrap();
        let serial_cfg = PlannerConfig::default();
        let parallel_cfg = PlannerConfig {
            threads: 4,
            ..serial_cfg
        };
        let (a, sa) = madpipe_plan_with_stats(&c, &platform, &serial_cfg);
        let (b, sb) = madpipe_plan_with_stats(&c, &platform, &parallel_cfg);
        let a = a.unwrap();
        let b = b.unwrap();
        assert_eq!(a.period().to_bits(), b.period().to_bits());
        assert_eq!(a.phase1.period.to_bits(), b.phase1.period.to_bits());
        assert_eq!(a.allocation, b.allocation);
        // Everything but wall-clock agrees: same probes, same counters.
        assert_eq!(sa.dp, sb.dp);
        assert_eq!(sa.schedules_attempted, sb.schedules_attempted);
        assert_eq!(sa.schedules_solved, sb.schedules_solved);
        assert_eq!(sa.probes.len(), sb.probes.len());
        for (x, y) in sa.probes.iter().zip(&sb.probes) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.t_hat.to_bits(), y.t_hat.to_bits());
            assert_eq!(x.period.to_bits(), y.period.to_bits());
            assert_eq!(
                (x.cached, x.pruned, x.states),
                (y.cached, y.pruned, y.states)
            );
        }
    }

    #[test]
    fn stats_expose_cross_probe_reuse() {
        // The bisection converges within its 10 iterations here, so the
        // last targets repeat exactly and are served from the cache.
        let c = chain(&[(1.0, 1.0); 6], 1 << 19, 0);
        let platform = Platform::new(3, 6 << 20, 1e9).unwrap();
        let (plan, stats) = madpipe_plan_with_stats(&c, &platform, &PlannerConfig::default());
        plan.unwrap();
        assert_eq!(
            stats.probes.len(),
            stats.dp.solves + stats.dp.probes_saved()
        );
        assert!(stats.dp.solves > 0);
        assert!(
            stats.dp.probes_saved() > 0,
            "low refinement targets must be answered by the infeasibility bound: {stats:?}"
        );
        assert!(stats.schedules_attempted >= stats.schedules_solved);
        assert!(stats.schedules_solved > 0);
        assert!(stats.total_seconds > 0.0);
        assert!(stats
            .probes
            .iter()
            .any(|p| p.source == ProbeSource::Bisection));
        assert!(stats
            .probes
            .iter()
            .any(|p| p.source == ProbeSource::ContiguousFallback));
    }

    #[test]
    fn zero_compute_chain_is_infeasible_not_a_panic() {
        let c = chain(&[(0.0, 0.0), (0.0, 0.0)], 1 << 10, 1 << 8);
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let err = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap_err();
        assert!(matches!(err, PlanError::Infeasible(_)), "got {err:?}");
        assert!(err.to_string().contains("zero total compute"));
    }

    #[test]
    fn single_layer_chains_plan_or_fail_cleanly() {
        // L = 1: the DP has exactly one stage to place. Must not panic,
        // on either a single GPU or several.
        let c = chain(&[(1.0, 2.0)], 1 << 10, 1 << 8);
        for gpus in [1usize, 2, 4] {
            let platform = Platform::new(gpus, 1 << 20, 1e6).unwrap();
            let plan = madpipe_plan(&c, &platform, &PlannerConfig::default());
            let plan = plan.unwrap_or_else(|e| panic!("L=1 on {gpus} GPUs: {e}"));
            assert_eq!(plan.allocation.stages().len(), 1);
        }
    }

    #[test]
    fn sub_minimum_memory_is_reported_not_panicked() {
        // Even one layer at g = 1 exceeds this platform's memory.
        let c = chain(&[(1.0, 1.0), (2.0, 2.0)], 1 << 24, 1 << 22);
        let platform = Platform::new(2, 1 << 16, 1e6).unwrap();
        let err = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap_err();
        assert_eq!(err, PlanError::Phase1Infeasible);
        // Stats still explain the failure: probes ran, none feasible.
        let (res, stats) = madpipe_plan_with_stats(&c, &platform, &PlannerConfig::default());
        assert!(res.is_err());
        assert!(!stats.probes.is_empty());
        assert!(stats.probes.iter().all(|p| p.period.is_infinite()));
    }

    #[test]
    fn session_reuse_under_a_different_policy_is_rejected() {
        use madpipe_model::{RecomputeMode, WeightPolicy};
        let c = chain(&[(1.0, 1.0); 4], 1 << 10, 1 << 8);
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let cfg = PlannerConfig {
            policy: PolicySpec {
                recompute: RecomputeMode::Always,
                weights: WeightPolicy::TwoBw,
            },
            ..PlannerConfig::default()
        };
        // Session built under the default policy, plan requested under a
        // different one: must refuse with a structured error rather than
        // silently answering probes under the wrong memory model.
        let mut session = ProbeSession::new(&c, &platform, &cfg.algorithm1.discretization);
        let (res, _) = madpipe_plan_with_session(&mut session, &cfg);
        match res.unwrap_err() {
            PlanError::PolicyMismatch { session, requested } => {
                assert_eq!(session, PolicySpec::default());
                assert_eq!(requested, cfg.policy);
            }
            other => panic!("expected PolicyMismatch, got {other:?}"),
        }
        // A session built with the matching policy plans fine.
        let mut session = ProbeSession::new_with_policy(
            &c,
            &platform,
            &cfg.algorithm1.discretization,
            cfg.policy,
        );
        let (res, _) = madpipe_plan_with_session(&mut session, &cfg);
        res.unwrap();
    }

    #[test]
    fn non_default_policy_plans_carry_per_stage_policies() {
        use madpipe_model::{ActivationPolicy, RecomputeMode, WeightPolicy};
        let c = chain(
            &[(1.0, 2.0), (2.0, 1.0), (3.0, 2.0), (1.0, 1.0)],
            1 << 10,
            1 << 8,
        );
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();

        let default_plan = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap();
        assert_eq!(
            default_plan.policies.len(),
            default_plan.allocation.stages().len()
        );
        assert!(default_plan.policies.iter().all(|p| p.is_default()));

        let cfg = PlannerConfig {
            policy: PolicySpec {
                recompute: RecomputeMode::Always,
                weights: WeightPolicy::TwoBw,
            },
            ..PlannerConfig::default()
        };
        let plan = madpipe_plan(&c, &platform, &cfg).unwrap();
        assert_eq!(plan.policies.len(), plan.allocation.stages().len());
        assert!(plan.policies.iter().all(
            |p| p.activation == ActivationPolicy::Recompute && p.weights == WeightPolicy::TwoBw
        ));
    }

    /// Alternating activation sizes — big internal activations, tiny
    /// stage boundaries — so recompute pins only the boundary input per
    /// in-flight batch while storing pins the big internals `g` times.
    fn alternating_chain(w: u64) -> Chain {
        let s = 64u64 << 10;
        let b = 4u64 << 20;
        let layers: Vec<Layer> = [b, s, b, s, b, s]
            .iter()
            .enumerate()
            .map(|(i, &a)| Layer::new(format!("l{i}"), 1.0, 1.0, w, a))
            .collect();
        Chain::new("alt", s, layers).unwrap()
    }

    #[test]
    fn auto_recompute_beats_the_default_on_memory_tight_instances() {
        use madpipe_model::RecomputeMode;
        // At 5 MiB the default only fits at loose targets (g = 1, deep
        // pipeline impossible), while auto recompute unlocks g ≥ 2 stages
        // and roughly halves the achieved period.
        let c = alternating_chain(0);
        let platform = Platform::new(3, 5 << 20, 1e9).unwrap();

        let default_plan = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap();
        let cfg = PlannerConfig {
            policy: PolicySpec {
                recompute: RecomputeMode::Auto,
                ..PolicySpec::default()
            },
            ..PlannerConfig::default()
        };
        let auto_plan = madpipe_plan(&c, &platform, &cfg).unwrap();
        assert!(
            auto_plan.period() < default_plan.period() * 0.75,
            "auto {} vs default {}",
            auto_plan.period(),
            default_plan.period()
        );
        assert!(
            auto_plan.policies.iter().any(|p| p.recomputes()),
            "auto must actually use recompute on this instance: {:?}",
            auto_plan.policies
        );
    }

    #[test]
    fn auto_recompute_with_2bw_plans_instances_the_default_cannot() {
        use madpipe_model::{RecomputeMode, WeightPolicy};
        // With 1 MiB weights per layer at 9 MiB memory, every store
        // partition exceeds memory even at g = 1 (3·W per stage plus the
        // stored activations), and the whole-chain fallback needs 3·6 MiB
        // of weight versions alone. Double-buffered weights plus
        // recompute fit a 3-deep pipeline.
        let c = alternating_chain(1 << 20);
        let platform = Platform::new(3, 9 << 20, 1e9).unwrap();

        let err = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap_err();
        assert_eq!(err, PlanError::Phase1Infeasible);

        let cfg = PlannerConfig {
            policy: PolicySpec {
                recompute: RecomputeMode::Auto,
                weights: WeightPolicy::TwoBw,
            },
            ..PlannerConfig::default()
        };
        let plan = madpipe_plan(&c, &platform, &cfg).unwrap();
        assert!(plan.period().is_finite());
        assert!(
            plan.policies.iter().any(|p| p.recomputes()),
            "auto must actually use recompute on this instance: {:?}",
            plan.policies
        );
    }

    #[test]
    fn oversized_platform_is_rejected_with_a_message() {
        let c = chain(&[(1.0, 1.0); 4], 1 << 10, 0);
        let platform = Platform::new(300, 1 << 30, 1e9).unwrap();
        let err = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap_err();
        assert!(matches!(err, PlanError::Infeasible(_)));
        assert!(err.to_string().contains("255"));
    }
}
