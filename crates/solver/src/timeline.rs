//! Modular occupancy timeline of one resource.
//!
//! A [`Timeline`] tracks the busy intervals of one resource within the
//! period `[0, T)` and answers the core scheduling query: *the earliest
//! absolute time `z ≥ ready` whose modular interval `[z mod T, z mod T + d)`
//! is free*. Occupied intervals never overlap (the placer only inserts
//! what `earliest_fit` returned), so free time forms circular gaps.

use madpipe_model::util::EPS;

/// Busy/free bookkeeping of one resource over the cyclic period.
#[derive(Debug, Clone)]
pub struct Timeline {
    period: f64,
    /// Sorted, non-overlapping busy segments within `[0, T)`; an op
    /// wrapping the period boundary contributes two segments.
    busy: Vec<(f64, f64)>,
}

impl Timeline {
    /// Empty timeline of period `T`.
    pub fn new(period: f64) -> Self {
        Self {
            period,
            busy: Vec::new(),
        }
    }

    /// Total busy time.
    pub fn load(&self) -> f64 {
        self.busy.iter().map(|(s, e)| e - s).sum()
    }

    /// Earliest absolute `z ≥ ready` such that the (possibly wrapping)
    /// modular interval of length `d` starting at `z mod T` is free.
    /// Returns `None` when no gap of length `d` exists.
    pub fn earliest_fit(&self, ready: f64, d: f64) -> Option<f64> {
        let t = self.period;
        if d <= EPS {
            return Some(ready);
        }
        if d > t + EPS {
            return None;
        }
        if self.busy.is_empty() {
            return Some(ready);
        }
        // Circular gaps between consecutive busy segments. Gap after the
        // last segment wraps to the first segment of the next lap.
        let mut gaps: Vec<(f64, f64)> = Vec::with_capacity(self.busy.len());
        for w in self.busy.windows(2) {
            gaps.push((w[0].1, w[1].0));
        }
        let last = self.busy[self.busy.len() - 1].1;
        let first = self.busy[0].0;
        gaps.push((last, first + t)); // wrap gap, end may exceed T

        let rp = modp(ready, t);
        let rbase = ready - rp;
        let mut best: Option<f64> = None;
        for &(gs, ge) in &gaps {
            if ge - gs + EPS < d {
                continue;
            }
            // Allowed phases: φ ∈ [gs, ge - d] (φ taken in [0, 2T)).
            for lap in 0..3 {
                let z0 = rbase + (lap as f64 - 1.0) * t;
                let lo = z0 + gs;
                let hi = z0 + ge - d;
                let cand = if ready > lo { ready } else { lo };
                if cand <= hi + EPS && cand + EPS >= ready {
                    best = Some(best.map_or(cand, |b: f64| b.min(cand)));
                    break;
                }
            }
        }
        best
    }

    /// Up to `max_n` distinct feasible absolute times `≥ ready` for an op
    /// of length `d`, smallest first — the minimal candidate of each
    /// circular gap (plus later laps of the earliest gap when fewer gaps
    /// than `max_n` exist). Used by the placer to branch.
    pub fn candidate_fits(&self, ready: f64, d: f64, max_n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(max_n.max(1));
        let Some(first) = self.earliest_fit(ready, d) else {
            return out;
        };
        out.push(first);
        // Subsequent candidates: restart the query just past each found
        // slot; `d + EPS*2` offset guarantees progress into another gap
        // or another lap.
        let mut probe = first;
        while out.len() < max_n {
            let Some(next) = self.earliest_fit(probe + d.max(EPS) + 2.0 * EPS, d) else {
                break;
            };
            if next <= probe + EPS {
                break;
            }
            out.push(next);
            probe = next;
            // Avoid unbounded lap enumeration on an empty resource.
            if self.busy.is_empty() {
                break;
            }
        }
        out
    }

    /// Latest absolute `z ∈ [lo, hi]` whose modular interval of length
    /// `d` is free. Returns `None` when no such placement exists.
    pub fn latest_fit(&self, lo: f64, hi: f64, d: f64) -> Option<f64> {
        let t = self.period;
        if hi < lo - EPS {
            return None;
        }
        if d <= EPS {
            return Some(hi);
        }
        if d > t + EPS {
            return None;
        }
        if self.busy.is_empty() {
            return Some(hi);
        }
        let mut gaps: Vec<(f64, f64)> = Vec::with_capacity(self.busy.len());
        for w in self.busy.windows(2) {
            gaps.push((w[0].1, w[1].0));
        }
        let last = self.busy[self.busy.len() - 1].1;
        let first = self.busy[0].0;
        gaps.push((last, first + t));

        let hp = modp(hi, t);
        let hbase = hi - hp;
        let mut best: Option<f64> = None;
        for &(gs, ge) in &gaps {
            if ge - gs + EPS < d {
                continue;
            }
            // Allowed phases: φ ∈ [gs, ge − d]; try laps around hi, from
            // the latest downwards.
            for lap in (0..3).rev() {
                let z0 = hbase + (lap as f64 - 1.0) * t;
                let lo_cand = z0 + gs;
                let hi_cand = z0 + ge - d;
                let cand = if hi < hi_cand { hi } else { hi_cand };
                if cand + EPS >= lo_cand && cand + EPS >= lo && cand <= hi + EPS {
                    best = Some(best.map_or(cand, |b: f64| b.max(cand)));
                    break;
                }
            }
        }
        best
    }

    /// Mark `[z mod T, z mod T + d)` busy. The caller must have obtained
    /// `z` from [`Timeline::earliest_fit`] (debug-asserted).
    pub fn insert(&mut self, z: f64, d: f64) {
        let t = self.period;
        if d <= EPS {
            return;
        }
        let phase = modp(z, t);
        let end = phase + d;
        if end <= t + EPS {
            self.push_segment(phase, end.min(t));
        } else {
            self.push_segment(phase, t);
            self.push_segment(0.0, end - t);
        }
    }

    fn push_segment(&mut self, s: f64, e: f64) {
        if e - s <= EPS {
            return;
        }
        debug_assert!(
            self.busy
                .iter()
                .all(|&(bs, be)| e <= bs + EPS || be <= s + EPS),
            "segment [{s}, {e}) overlaps existing busy time"
        );
        let idx = self.busy.partition_point(|&(bs, _)| bs < s);
        self.busy.insert(idx, (s, e));
    }
}

/// `x mod p` into `[0, p)`, robust to `x` within EPS of a multiple of `p`.
fn modp(x: f64, p: f64) -> f64 {
    let r = x - p * (x / p).floor();
    if p - r <= EPS || r < 0.0 {
        0.0
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_places_at_ready() {
        let tl = Timeline::new(10.0);
        assert_eq!(tl.earliest_fit(3.5, 2.0), Some(3.5));
        assert_eq!(tl.earliest_fit(3.5, 11.0), None);
    }

    #[test]
    fn fits_after_existing_segment() {
        let mut tl = Timeline::new(10.0);
        tl.insert(0.0, 4.0);
        // ready 1: phase 1 is busy until 4 → earliest 4
        assert_eq!(tl.earliest_fit(1.0, 3.0), Some(4.0));
        // fits exactly in the wrap gap [4, 10)
        assert_eq!(tl.earliest_fit(1.0, 6.0), Some(4.0));
        // too big for the gap
        assert_eq!(tl.earliest_fit(1.0, 7.0), None);
    }

    #[test]
    fn ready_inside_gap_is_kept() {
        let mut tl = Timeline::new(10.0);
        tl.insert(0.0, 2.0);
        tl.insert(8.0, 2.0);
        assert_eq!(tl.earliest_fit(3.0, 4.0), Some(3.0));
        // needs the next lap: gap [2,8) again at z=12
        assert_eq!(tl.earliest_fit(9.0, 4.0), Some(12.0));
    }

    #[test]
    fn wrap_gap_accepts_wrapping_ops() {
        let mut tl = Timeline::new(10.0);
        tl.insert(2.0, 4.0); // busy [2,6)
                             // gap is [6, 12): an op of 5 at phase 6 wraps to 1
        let z = tl.earliest_fit(6.0, 5.0).unwrap();
        assert_eq!(z, 6.0);
        tl.insert(z, 5.0);
        // now only [1,2) free
        assert_eq!(tl.earliest_fit(0.0, 1.0), Some(1.0));
        assert_eq!(tl.earliest_fit(0.0, 1.5), None);
    }

    #[test]
    fn insert_splits_wrapping_segments() {
        let mut tl = Timeline::new(10.0);
        tl.insert(8.0, 4.0); // [8,10) + [0,2)
        assert!((tl.load() - 4.0).abs() < 1e-9);
        assert_eq!(tl.earliest_fit(0.0, 6.0), Some(2.0));
    }

    #[test]
    fn zero_duration_ops_are_free() {
        let mut tl = Timeline::new(10.0);
        tl.insert(0.0, 10.0 - 1e-12);
        assert_eq!(tl.earliest_fit(5.0, 0.0), Some(5.0));
    }

    #[test]
    fn ready_far_in_the_future_lands_on_same_phases() {
        let mut tl = Timeline::new(10.0);
        tl.insert(0.0, 9.0);
        // only [9,10) free; ready = 35.5 (phase 5.5) → next free phase 9 → z = 39
        assert_eq!(tl.earliest_fit(35.5, 1.0), Some(39.0));
    }
}
