//! Differential suite: the production dense-memo DP solver against an
//! independent hashed-memo reference implementation of the same
//! recurrence.
//!
//! The reference solver below is deliberately naive: a `HashMap` memo
//! keyed by the full state tuple, direct calls into the chain accessors
//! (no hoisted stage tables), and **no optimization pruning** — every
//! stage candidate of every state is evaluated (only the memory
//! *feasibility* checks remain, because they are part of the recurrence
//! itself). If the dense layout, the hoisted [`StageTables`], the load
//! prune or the branch-and-bound bound changed any DP value by even one
//! ulp, these tests catch it: periods must match **bit for bit** and the
//! reconstructed stage lists must be identical.
//!
//! Coverage: real profiled networks over a fig6-style platform slice,
//! plus proptest-generated chains/platforms/targets.

use std::collections::HashMap;
use std::ops::Range;

use madpipe_core::{madpipe_dp_with, oplus, Discretization};
use madpipe_dnn::{networks, GpuModel};
use madpipe_model::util::ceil_div;
use madpipe_model::{Chain, Layer, Platform};

/// Mirror of `core::discrete::Axis` (not public API): `n` points
/// uniformly covering `[0, max]`, round-up indexing with the relative
/// 1e-9 guard. Kept textually independent so an accidental change to
/// the production axis arithmetic shows up as a differential failure.
struct RefAxis {
    max: f64,
    n: usize,
}

impl RefAxis {
    fn new(max: f64, n: usize) -> Self {
        assert!(n >= 2 && max >= 0.0 && max.is_finite());
        Self { max, n }
    }

    fn index_up(&self, x: f64) -> u16 {
        if self.max <= 0.0 || x <= 0.0 {
            return 0;
        }
        let step = self.max / (self.n - 1) as f64;
        let idx = ((x / step) * (1.0 - 1e-9)).ceil() as isize;
        idx.clamp(0, (self.n - 1) as isize) as u16
    }

    fn value(&self, idx: u16) -> f64 {
        if self.max <= 0.0 {
            return 0.0;
        }
        let step = self.max / (self.n - 1) as f64;
        step * idx as f64
    }

    fn overflows(&self, x: f64) -> bool {
        x > self.max + 1e-9
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RefChoice {
    Infeasible,
    Done,
    Normal(usize),
    Special(usize),
}

/// Memo key `(l, p, it, im, iv)` — the five DP grid coordinates.
type RefKey = (usize, usize, u16, u16, u16);

/// The hashed-memo reference solver.
struct RefSolver<'a> {
    chain: &'a Chain,
    platform: &'a Platform,
    t_hat: f64,
    use_special: bool,
    t_axis: RefAxis,
    m_axis: RefAxis,
    v_axis: RefAxis,
    cut_times: Vec<f64>,
    memo: HashMap<RefKey, (f64, RefChoice)>,
}

impl<'a> RefSolver<'a> {
    fn new(
        chain: &'a Chain,
        platform: &'a Platform,
        t_hat: f64,
        disc: &Discretization,
        use_special: bool,
    ) -> Self {
        let total_u = chain.total_compute_time();
        let cut_times: Vec<f64> = (0..=chain.len())
            .map(|k| platform.cut_time(chain, k))
            .collect();
        let v_max = total_u + cut_times.iter().sum::<f64>();
        Self {
            chain,
            platform,
            t_hat,
            use_special,
            t_axis: RefAxis::new(total_u, disc.t_points),
            m_axis: RefAxis::new(platform.memory_bytes as f64, disc.m_points),
            v_axis: RefAxis::new(v_max.max(t_hat), disc.v_points),
            cut_times,
            memo: HashMap::new(),
        }
    }

    fn solve(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        if let Some(&(v, _)) = self.memo.get(&(l, p, it, im, iv)) {
            return v;
        }
        if l == 0 {
            let v = self.t_axis.value(it);
            self.memo.insert((l, p, it, im, iv), (v, RefChoice::Done));
            return v;
        }

        let t_val = self.t_axis.value(it);
        let m_val = self.m_axis.value(im);
        let v_val = self.v_axis.value(iv);
        let memory = self.platform.memory_bytes;

        let mut best = f64::INFINITY;
        let mut choice = RefChoice::Infeasible;

        // Full scan over every split point — no load prune, no
        // branch-and-bound, no memory early-break. Same scan direction
        // and the same strict `<` incumbent update as the production
        // solver, so choices (not just values) must agree.
        for k in (0..l).rev() {
            let u = self.chain.compute_time(k..l);
            let g = ceil_div(v_val + u, self.t_hat).max(1);
            let cut = self.cut_times[k];
            let v_next = oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat);
            let iv_next = self.v_axis.index_up(v_next);

            if p >= 1 && self.chain.stage_memory(k..l, g) <= memory {
                let sub = self.solve(k, p - 1, it, im, iv_next);
                let t_n = u.max(cut).max(sub);
                if t_n < best {
                    best = t_n;
                    choice = RefChoice::Normal(k);
                }
            }

            // The special processor pins `g - 1` copies (the deliberate
            // under-estimate), i.e. exactly `stage_memory` at `g - 1`.
            let m_next = m_val + self.chain.stage_memory(k..l, g - 1) as f64;
            if self.use_special && !self.m_axis.overflows(m_next) && m_next <= memory as f64 {
                let it_next = self.t_axis.index_up(t_val + u);
                let im_next = self.m_axis.index_up(m_next);
                let t_next_val = self.t_axis.value(it_next);
                let sub = self.solve(k, p, it_next, im_next, iv_next);
                let t_s = t_next_val.max(cut).max(sub);
                if t_s < best {
                    best = t_s;
                    choice = RefChoice::Special(k);
                }
            }
        }

        self.memo.insert((l, p, it, im, iv), (best, choice));
        best
    }

    /// Run from the root; returns the period and the stage list in
    /// chain order as `(layers, gpu)` with the production numbering
    /// (special = GPU 0, normal GPUs counting down from the back).
    #[allow(clippy::type_complexity)] // one-off test-local return shape
    fn run(&mut self) -> (f64, Option<Vec<(Range<usize>, usize)>>) {
        let p0 = if self.use_special {
            self.platform.n_gpus - 1
        } else {
            self.platform.n_gpus
        };
        let l0 = self.chain.len();
        let period = self.solve(l0, p0, 0, 0, 0);
        if !period.is_finite() {
            return (period, None);
        }

        let mut stages_rev: Vec<(Range<usize>, usize)> = Vec::new();
        let (mut l, mut p, mut it, mut im, mut iv) = (l0, p0, 0u16, 0u16, 0u16);
        let mut next_normal_gpu = self.platform.n_gpus - 1;
        loop {
            let (_, choice) = self.memo[&(l, p, it, im, iv)];
            match choice {
                RefChoice::Infeasible => return (period, None),
                RefChoice::Done => break,
                RefChoice::Normal(k) => {
                    stages_rev.push((k..l, next_normal_gpu));
                    next_normal_gpu = next_normal_gpu.saturating_sub(1);
                    let u = self.chain.compute_time(k..l);
                    let v_val = self.v_axis.value(iv);
                    iv = self.v_axis.index_up(oplus(
                        oplus(v_val, u, self.t_hat),
                        self.cut_times[k],
                        self.t_hat,
                    ));
                    l = k;
                    p -= 1;
                }
                RefChoice::Special(k) => {
                    stages_rev.push((k..l, 0));
                    let u = self.chain.compute_time(k..l);
                    let v_val = self.v_axis.value(iv);
                    let t_val = self.t_axis.value(it);
                    let m_val = self.m_axis.value(im);
                    let g = ceil_div(v_val + u, self.t_hat).max(1);
                    it = self.t_axis.index_up(t_val + u);
                    im = self
                        .m_axis
                        .index_up(m_val + self.chain.stage_memory(k..l, g - 1) as f64);
                    iv = self.v_axis.index_up(oplus(
                        oplus(v_val, u, self.t_hat),
                        self.cut_times[k],
                        self.t_hat,
                    ));
                    l = k;
                }
            }
        }
        stages_rev.reverse();
        (period, Some(stages_rev))
    }
}

/// Assert the production solver and the reference agree bit-for-bit on
/// one `(chain, platform, T̂, use_special)` instance.
fn assert_differential(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
    use_special: bool,
) {
    let dense = madpipe_dp_with(chain, platform, t_hat, disc, use_special);
    let (ref_period, ref_stages) = RefSolver::new(chain, platform, t_hat, disc, use_special).run();
    assert_eq!(
        dense.period.to_bits(),
        ref_period.to_bits(),
        "period diverged at T̂ = {t_hat}, special = {use_special}: \
         dense {} vs reference {ref_period}",
        dense.period
    );
    let dense_stages = dense.allocation.map(|a| {
        a.stages()
            .iter()
            .map(|s| (s.layers.clone(), s.gpu))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        dense_stages, ref_stages,
        "stage lists diverged at T̂ = {t_hat}, special = {use_special}"
    );
}

fn synthetic(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
    let layers = costs
        .iter()
        .enumerate()
        .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
        .collect();
    Chain::new("t", act, layers).unwrap()
}

#[test]
fn profiled_network_cells_match_bit_for_bit() {
    // A fig6-style slice on a real profiled network: resnet50 over
    // several platform shapes and target periods, both DP variants.
    let chain = networks::by_name("resnet50")
        .unwrap()
        .profile(1, 100, &GpuModel::default())
        .unwrap();
    let disc = Discretization::coarse();
    let total = chain.total_compute_time();
    for (p, m_gb) in [(2usize, 4u64), (4, 2), (4, 8)] {
        let platform = Platform::gb(p, m_gb, 12.0).unwrap();
        for factor in [0.6, 1.0, 1.8] {
            let t_hat = total / p as f64 * factor;
            for special in [true, false] {
                assert_differential(&chain, &platform, t_hat, &disc, special);
            }
        }
    }
}

#[test]
fn imbalanced_synthetic_chains_match_bit_for_bit() {
    // Hand-built shapes that exercise the special processor, memory
    // pressure and infeasibility in one sweep.
    let cases = [
        (
            synthetic(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 1, 0),
            2usize,
            1u64 << 30,
        ),
        (synthetic(&[(1.0, 1.0); 8], 1 << 18, 1 << 10), 4, 3 << 20),
        (
            synthetic(
                &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
                1 << 18,
                1 << 10,
            ),
            3,
            3 << 20,
        ),
        // Memory-hopeless at tight targets: the infeasible path must
        // also agree (both sides report ∞, no allocation).
        (synthetic(&[(1.0, 1.0); 6], 1 << 20, 0), 3, 4 << 20),
    ];
    let disc = Discretization::default();
    for (chain, p, mem) in &cases {
        let platform = Platform::new(*p, *mem, 1e8).unwrap();
        let total = chain.total_compute_time();
        for factor in [0.5, 0.9, 1.4, 3.0] {
            let t_hat = total / *p as f64 * factor;
            for special in [true, false] {
                assert_differential(chain, &platform, t_hat, &disc, special);
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    #[test]
    fn random_chains_match_bit_for_bit(
        seed in (
            2usize..7,        // layers
            2usize..5,        // gpus
            1u64..64,         // activation KiB
            0u64..16,         // weight KiB
            1u32..40,         // T̂ scale (tenths of per-GPU load)
        ),
        costs in proptest::prop::collection::vec((0.1f64..4.0, 0.1f64..4.0), 7),
    ) {
        let (n_layers, gpus, act_kib, w_kib, t_tenths) = seed;
        let chain = synthetic(&costs[..n_layers], act_kib << 10, w_kib << 10);
        let platform = Platform::new(gpus, 2 << 20, 1e8).unwrap();
        let t_hat = chain.total_compute_time() / gpus as f64 * (t_tenths as f64 / 10.0);
        let disc = Discretization::coarse();
        for special in [true, false] {
            assert_differential(&chain, &platform, t_hat, &disc, special);
        }
    }
}
