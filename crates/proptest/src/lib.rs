//! Workspace-internal property-testing shim.
//!
//! The build environment has no registry access, so the real `proptest`
//! crate cannot be vendored; this crate re-implements the (small) API
//! surface our test suites use with deterministic seeded sampling:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, multiple
//!   `#[test]` functions and `pattern in strategy` arguments;
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, ranges,
//!   tuples, [`strategy::Just`], `prop::collection::vec`,
//!   `prop::bool::ANY`, `prop::sample::Index` and [`arbitrary::any`];
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (the failing seed is printed
//! instead, and re-runs are deterministic), and rejection sampling is
//! capped rather than configurable.

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// `prop::...` namespace mirroring the upstream layout.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Boolean strategies (`prop::bool::ANY`).
    pub mod bool {
        pub use crate::strategy::bool_any::ANY;
    }
    /// Sampling helpers (`prop::sample::Index`).
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0usize..10, (a, b) in strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::Runner::new(&config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), __proptest_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert inside a property test; failures report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skip the current case unless `cond` holds (counted as a rejection, not
/// a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.5f64..2.5, n in 2usize..=6) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((2..=6).contains(&n));
        }

        #[test]
        fn tuples_and_vec((a, b) in (0u32..5, 1u32..=3), v in prop::collection::vec(0u64..10, 2..=5)) {
            prop_assert!(a < 5 && (1..=3).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_flat_map_and_index(
            v in prop::collection::vec(prop::bool::ANY, 4)
                .prop_map(|mask| mask.into_iter().filter(|&b| b).count())
                .prop_flat_map(|n| (Just(n), 0usize..5)),
            pick in any::<prop::sample::Index>(),
        ) {
            let (count, extra) = v;
            prop_assert!(count <= 4 && extra < 5);
            prop_assert!(pick.index(7) < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::with_cases(8);
        let collect = || {
            let mut out = Vec::new();
            let mut runner = crate::test_runner::Runner::new(&cfg, "determinism");
            runner.run(|rng| {
                out.push(Strategy::sample(&(0u64..1000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_seed() {
        let cfg = ProptestConfig::with_cases(4);
        let mut runner = crate::test_runner::Runner::new(&cfg, "failing");
        runner.run(|_rng| Err(TestCaseError::fail("boom".to_string())));
    }
}
