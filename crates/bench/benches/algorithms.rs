//! Microbenchmarks of the individual algorithms: 1F1B* construction, the
//! exact pattern checker, PipeDream's DP, one MadPipe-DP run, the
//! phase-2 solver and the discrete-event simulator.
//!
//! These back the paper's runtime claims (§5.1: "the first step of
//! MadPipe takes several seconds for the smaller networks … significantly
//! slower than the dynamic program of PipeDream").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use madpipe_core::{madpipe_dp, Discretization};
use madpipe_dnn::{networks, GpuModel};
use madpipe_model::{Allocation, Platform, UnitSequence};
use madpipe_pipedream::{pipedream_partition, pipedream_plan};
use madpipe_schedule::{best_contiguous_period, check_pattern, one_f1b_star};
use madpipe_sim::{simulate_eager, EagerConfig};
use madpipe_solver::{best_period, PlaceConfig};

fn bench(c: &mut Criterion) {
    let gpu = GpuModel::default();
    let chains: Vec<_> = networks::all_networks()
        .iter()
        .map(|n| n.profile(8, 1000, &gpu).unwrap())
        .collect();
    let platform = Platform::gb(4, 8, 12.0).unwrap();

    // 1F1B* and the checker on a fixed contiguous allocation.
    {
        let chain = &chains[0];
        let plan = pipedream_plan(chain, &platform).unwrap();
        let seq = UnitSequence::from_allocation(chain, &platform, &plan.allocation);
        let t = seq.total_load();
        let mut group = c.benchmark_group("primitives");
        group.bench_function("one_f1b_star/resnet50", |b| {
            b.iter(|| one_f1b_star(&seq, t))
        });
        let pattern = one_f1b_star(&seq, t);
        group.bench_function("check_pattern/resnet50", |b| {
            b.iter(|| check_pattern(chain, &platform, &plan.allocation, &seq, &pattern).unwrap())
        });
        group.bench_function("best_contiguous_period/resnet50", |b| {
            b.iter(|| {
                best_contiguous_period(chain, &platform, &plan.allocation)
                    .unwrap()
                    .period
            })
        });
        group.finish();
    }

    // Partitioners across all four networks.
    {
        let mut group = c.benchmark_group("partitioners");
        group.sample_size(10);
        for chain in &chains {
            group.bench_with_input(
                BenchmarkId::new("pipedream_dp", chain.name()),
                chain,
                |b, chain| {
                    b.iter(|| {
                        pipedream_partition(chain, &platform)
                            .unwrap()
                            .predicted_period
                    })
                },
            );
            let t_hat = chain.total_compute_time() / platform.n_gpus as f64;
            group.bench_with_input(
                BenchmarkId::new("madpipe_dp_single", chain.name()),
                chain,
                |b, chain| {
                    b.iter(|| {
                        madpipe_dp(chain, &platform, t_hat * 1.3, &Discretization::default()).period
                    })
                },
            );
        }
        group.finish();
    }

    // Phase-2 solver and the simulator on a MadPipe allocation.
    {
        let chain = &chains[0];
        let plan = madpipe_core::madpipe_plan(chain, &platform, &Default::default()).unwrap();
        let alloc: &Allocation = &plan.allocation;
        let mut group = c.benchmark_group("scheduling");
        group.sample_size(10);
        group.bench_function("solver_best_period/resnet50", |b| {
            b.iter(|| {
                best_period(chain, &platform, alloc, &PlaceConfig::default())
                    .unwrap()
                    .period
            })
        });
        group.bench_function("simulate_eager_100_batches/resnet50", |b| {
            b.iter(|| {
                simulate_eager(
                    chain,
                    &platform,
                    alloc,
                    &EagerConfig {
                        batches: 100,
                        depth: None,
                    },
                )
                .period
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
