//! Visualize a MadPipe schedule: the periodic Gantt chart (the paper's
//! Figure 2/3 style) plus the per-GPU memory step profile over one
//! steady-state period.
//!
//! ```sh
//! cargo run --release --example gantt [network] [P] [M_gb]
//! ```

use madpipe::core::{madpipe_plan, PlannerConfig};
use madpipe::dnn::{networks, GpuModel};
use madpipe::model::{Platform, UnitSequence};
use madpipe::schedule::check::memory_profile;
use madpipe::schedule::gantt;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let m: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);

    let net = networks::by_name(net_name).expect("unknown network");
    let chain = net.profile(8, 1000, &GpuModel::default()).unwrap();
    let platform = Platform::gb(p, m, 12.0).unwrap();
    let plan = madpipe_plan(&chain, &platform, &PlannerConfig::default())
        .expect("planning failed — try a larger memory limit");

    let seq = UnitSequence::from_allocation(&chain, &platform, &plan.allocation);
    print!("{}", gantt::render(&seq, &plan.schedule.pattern, 100));

    println!("\nper-GPU memory over one period (GB):");
    const GIB: f64 = (1u64 << 30) as f64;
    for gpu in 0..platform.n_gpus {
        let profile = memory_profile(&chain, &plan.allocation, &seq, &plan.schedule.pattern, gpu);
        let peak = profile.peak();
        print!(
            "  gpu{gpu}: peak {:.2} / {:.0} GB |",
            peak as f64 / GIB,
            platform.memory_bytes as f64 / GIB
        );
        for (phase, bytes) in profile.steps.iter().take(8) {
            print!(" t={:.0}ms:{:.2}", phase * 1e3, *bytes as f64 / GIB);
        }
        if profile.steps.len() > 8 {
            print!(" …");
        }
        println!();
    }
    println!(
        "\npipeline depth (max index shift): {} mini-batches in flight",
        plan.schedule.pattern.max_shift() + 1
    );
}
