//! Scalability study: how far does pipelined model parallelism scale as
//! GPUs are added, and how does the memory limit cap it? (The paper's
//! Figure 8 view, for one network.)
//!
//! ```sh
//! cargo run --release --example scalability [network] [beta_gb]
//! ```

use madpipe::core::{compare, PlannerConfig};
use madpipe::dnn::{networks, GpuModel};
use madpipe::model::Platform;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let beta: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(12.0);

    let net = networks::by_name(net_name).expect("unknown network");
    let chain = net.profile(8, 1000, &GpuModel::default()).unwrap();
    let sequential = chain.total_compute_time();
    println!(
        "{} | beta = {beta} GB/s | sequential U(1,L) = {:.1} ms",
        chain.name(),
        sequential * 1e3
    );
    println!("speedup = U(1,L)/period  (MadPipe / PipeDream; '-' = infeasible)");
    print!("{:>6} |", "M(GB)");
    let ps = [2usize, 3, 4, 6, 8];
    for p in ps {
        print!(" {:>12} |", format!("P={p}"));
    }
    println!();

    for m in [3u64, 6, 12, 16] {
        print!("{m:>6} |");
        for p in ps {
            let platform = Platform::gb(p, m, beta).unwrap();
            let cmp = compare(&chain, &platform, &PlannerConfig::default());
            let fmt = |period: Option<f64>| {
                period
                    .map(|t| format!("{:.2}", sequential / t))
                    .unwrap_or_else(|| "-".into())
            };
            print!(
                " {:>5}/{:<6} |",
                fmt(cmp.madpipe.as_ref().ok().map(|x| x.period())),
                fmt(cmp.pipedream.as_ref().ok().map(|x| x.period()))
            );
        }
        println!();
    }
    println!(
        "\nReading guide: with plenty of memory the speedup tracks P; at 3 GB\n\
         the early layers' activation copies dominate and both planners\n\
         plateau — MadPipe later than PipeDream (§5.2 of the paper)."
    );
}
