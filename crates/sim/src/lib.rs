//! Discrete-event simulation of pipelined model-parallel training.
//!
//! The paper's evaluation is itself a simulation; this crate provides the
//! event-level substrate and uses it two ways:
//!
//! * [`replay`] — execute a periodic [`madpipe_schedule::Pattern`] for
//!   many periods and *measure* throughput and per-GPU memory peaks,
//!   cross-validating the analytic checker event by event;
//! * [`eager`] — the eager 1F1B policy PipeDream actually runs (start
//!   every operation as soon as its inputs are ready and its resource is
//!   free, backwards preferred, bounded pipeline depth), which §4.1
//!   criticizes for its unpredictable memory behaviour — the simulator
//!   lets us observe exactly that;
//! * [`perturb`] — fault-injected replay: the same pattern executed
//!   under multiplicative compute/communication jitter and bandwidth
//!   degradation, the measurement behind `madpipe certify`'s robustness
//!   margins;
//! * [`chaos`] — deterministic chaos schedules (worker panics, killed
//!   connections, partial writes, mid-stream GPU-loss replans) that the
//!   serve daemon's fault drill replays from a fixed seed.

pub mod chaos;
pub mod eager;
pub mod event;
pub mod perturb;
pub mod replay;
pub mod report;
pub mod trace;

pub use chaos::{ChaosEvent, ChaosStream, ClientEvent, ClusterEvent};
pub use eager::{simulate_eager, EagerConfig};
pub use perturb::{replay_perturbed, replay_perturbed_with, FaultSpec};
pub use replay::{replay_pattern, replay_pattern_with, replay_with};
pub use report::SimReport;
pub use trace::{chrome_trace, schedule_trace, schedule_trace_with};
