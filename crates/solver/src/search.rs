//! Period minimization for arbitrary allocations.

use madpipe_model::{Allocation, Chain, Platform, Resource, StagePolicy, UnitKind, UnitSequence};
use madpipe_schedule::{check_pattern, Pattern, PatternReport, ScheduleError};

use crate::place::{schedule_at_period, PlaceConfig};

/// A valid schedule found by the solver.
#[derive(Debug, Clone)]
pub struct SolvedSchedule {
    /// The achieved period.
    pub period: f64,
    /// The valid pattern.
    pub pattern: Pattern,
    /// Exact report from the checker.
    pub report: PatternReport,
}

/// Find (approximately) the smallest period at which `alloc` admits a
/// valid pattern, and build it.
///
/// The candidate ladder contains the load lower bound, every sum of
/// consecutive unit loads (the breakpoints of group-structure changes —
/// exact for contiguous allocations), and a 5% geometric grid to cover
/// interleaving effects on multi-stage GPUs; candidates are probed with a
/// first-feasible binary search (feasibility is monotone in the period:
/// any pattern remains valid verbatim when `T` grows, since slack only
/// increases — and memory needs only shrink).
pub fn best_period(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    cfg: &PlaceConfig,
) -> Result<SolvedSchedule, ScheduleError> {
    let policies = vec![StagePolicy::default(); alloc.stages().len()];
    best_period_with(chain, platform, alloc, &policies, cfg)
}

/// Policy-aware variant of [`best_period`]: stage units carry `policies`
/// (recompute extends backward durations; memory checks use the
/// per-policy static/live bytes).
pub fn best_period_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
    cfg: &PlaceConfig,
) -> Result<SolvedSchedule, ScheduleError> {
    let seq = UnitSequence::from_allocation_with(chain, platform, alloc, policies);
    let t_lo = alloc.load_bound(chain, platform).max(seq.max_unit_load());
    let t_hi = seq.total_load().max(t_lo);

    let mut candidates = vec![t_lo];
    // Window sums of consecutive unit loads.
    let loads: Vec<f64> = seq.units().iter().map(|u| u.total_time()).collect();
    for i in 0..loads.len() {
        let mut acc = 0.0;
        for load in &loads[i..] {
            acc += load;
            if acc >= t_lo && acc <= t_hi {
                candidates.push(acc);
            }
        }
    }
    // Geometric grid (multi-stage GPUs create breakpoints that are not
    // plain window sums).
    let mut g = t_lo;
    while g < t_hi {
        candidates.push(g);
        g *= 1.05;
    }
    candidates.push(t_hi);
    candidates.sort_by(f64::total_cmp);
    candidates.dedup_by(|a, b| madpipe_model::util::feq(*a, *b));

    let try_t = |t: f64| schedule_at_period(chain, platform, alloc, &seq, t, cfg);

    // Most relaxed candidate first: if the sequential period fails, the
    // allocation does not fit in memory at all.
    let Some(relaxed) = try_t(t_hi) else {
        // Produce the precise error by checking the sequential pattern of
        // a contiguous-style relaxation; fall back to a generic error.
        return Err(diagnose_infeasible(chain, platform, alloc, &seq, t_hi, cfg));
    };

    let mut best_pattern = relaxed;
    let mut lo = 0usize;
    let mut hi = candidates.len() - 1;
    if let Some(p) = try_t(candidates[0]) {
        best_pattern = p;
        hi = 0;
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if let Some(p) = try_t(candidates[mid]) {
            best_pattern = p;
            hi = mid;
        } else {
            lo = mid;
        }
    }

    let report = check_pattern(chain, platform, alloc, &seq, &best_pattern)
        .expect("pattern was validated during placement");
    Ok(SolvedSchedule {
        period: best_pattern.period,
        pattern: best_pattern,
        report,
    })
}

/// Build a descriptive error for an allocation that has no valid pattern
/// even at the sequential period.
fn diagnose_infeasible(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    seq: &UnitSequence,
    t_hi: f64,
    cfg: &PlaceConfig,
) -> ScheduleError {
    // Retry with a large budget and surface the checker's error if the
    // placement itself succeeds structurally.
    let big = PlaceConfig {
        node_budget: cfg.node_budget.max(1 << 14),
        ..*cfg
    };
    if schedule_at_period(chain, platform, alloc, seq, t_hi * 2.0, &big).is_some() {
        // Feasible at a larger period: report the memory ceiling at t_hi.
        return ScheduleError::ResourceOverloaded {
            resource: madpipe_model::Resource::Gpu(0),
            load: t_hi,
            period: t_hi,
        };
    }
    // Memory-infeasible even sequentially: estimate the binding GPU —
    // static bytes plus one live batch of every hosted stage.
    let static_bytes = madpipe_schedule::check::static_memory(chain, alloc, seq);
    let mut need = static_bytes.clone();
    for unit in seq.units() {
        if let (UnitKind::Stage { layers, .. }, Resource::Gpu(gpu)) = (&unit.kind, unit.resource) {
            need[gpu] += chain.stage_live_batch_bytes(layers.clone(), unit.policy);
        }
    }
    let worst = need
        .iter()
        .copied()
        .enumerate()
        .max_by_key(|&(_, bytes)| bytes)
        .expect("at least one GPU");
    ScheduleError::MemoryExceeded {
        gpu: worst.0,
        peak: worst.1,
        limit: platform.memory_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Layer, Partition, Stage};
    use madpipe_schedule::best_contiguous_period;

    fn chain(costs: &[(f64, f64)], act: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, 0, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn matches_one_f1b_star_on_contiguous_allocations() {
        let c = chain(&[(2.0, 3.0), (1.0, 1.0), (4.0, 2.0)], 500);
        let platform = Platform::new(3, 6_000, 500.0).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        let reference = best_contiguous_period(&c, &platform, &alloc).unwrap();
        let solved = best_period(&c, &platform, &alloc, &PlaceConfig::default()).unwrap();
        assert!(
            solved.period <= reference.period + 1e-6,
            "solver {} vs 1F1B* {}",
            solved.period,
            reference.period
        );
    }

    #[test]
    fn special_gpu_allocation_beats_forced_contiguity() {
        // Heterogeneous chain where layers 0 and 2 together balance
        // against layer 1; only a non-contiguous allocation achieves it.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 1);
        let platform = Platform::new(2, 1 << 40, 1e9).unwrap();
        let noncontig = Allocation::new(
            vec![
                Stage {
                    layers: 0..1,
                    gpu: 0,
                },
                Stage {
                    layers: 1..2,
                    gpu: 1,
                },
                Stage {
                    layers: 2..3,
                    gpu: 0,
                },
            ],
            3,
            2,
        )
        .unwrap();
        let solved = best_period(&c, &platform, &noncontig, &PlaceConfig::default()).unwrap();
        // GPU loads are 8 and 8; comm negligible → period ≈ 8.
        assert!(solved.period < 8.5, "got {}", solved.period);

        // Best contiguous split on 2 GPUs: {0},{1,2} or {0,1},{2} → 12.
        let best_contig = [1usize, 2]
            .iter()
            .map(|&cut| {
                let part = Partition::from_cuts(&[cut], 3).unwrap();
                let a = Allocation::contiguous(&part, 2).unwrap();
                best_contiguous_period(&c, &platform, &a).unwrap().period
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best_contig >= 12.0 - 1e-9);
        assert!(solved.period < best_contig);
    }

    #[test]
    fn memory_infeasible_allocation_errors() {
        let c = chain(&[(1.0, 1.0), (1.0, 1.0)], 1_000_000);
        let platform = Platform::new(2, 100, 1e9).unwrap();
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let err = best_period(&c, &platform, &alloc, &PlaceConfig::default()).unwrap_err();
        assert!(matches!(err, ScheduleError::MemoryExceeded { .. }));
    }

    #[test]
    fn period_never_below_load_bound() {
        let c = chain(&[(3.0, 3.0), (1.0, 1.0), (1.0, 1.0)], 10);
        let platform = Platform::new(2, 1 << 40, 100.0).unwrap();
        let alloc = Allocation::new(
            vec![
                Stage {
                    layers: 0..1,
                    gpu: 0,
                },
                Stage {
                    layers: 1..3,
                    gpu: 1,
                },
            ],
            3,
            2,
        )
        .unwrap();
        let solved = best_period(&c, &platform, &alloc, &PlaceConfig::default()).unwrap();
        assert!(solved.period + 1e-9 >= alloc.load_bound(&c, &platform));
    }
}
