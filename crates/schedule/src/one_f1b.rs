//! The 1F1B* algorithm (§4.1): the memory-optimal periodic pattern for a
//! contiguous allocation and a given period `T`.
//!
//! The algorithm works on the transformed chain of units (stages
//! interleaved with communication pseudo-stages, see
//! [`madpipe_model::UnitSequence`]) in two phases:
//!
//! 1. **group formation** — walk the units from the *last* one backwards,
//!    greedily packing consecutive units into groups of total load
//!    `Σ U(s) ≤ T`; the group containing the last unit is group 1;
//! 2. **schedule construction** — forward operations of all units are
//!    packed back-to-back in chain order (each group's first forward
//!    starts right after the previous group's last forward, with the same
//!    index shift); each group's backward operations run in reverse order
//!    immediately after its last forward. Forward ops carry shift `0`
//!    and the backwards of group `g` carry shift `g − 1`; wrapping an
//!    absolute time `z` into the period then adds `⌊z/T⌋` to the shift.
//!
//! Proposition 1 of the paper shows the resulting pattern stores the
//! minimum possible number of live mini-batches per stage among all valid
//! patterns of period `T`; a stage of group `g` stores exactly `g`.

use madpipe_model::util::{ceil_div, group_step};
use madpipe_model::UnitSequence;

use crate::pattern::{Dir, Op, Pattern};

/// Group index (1-based, group 1 holds the last unit) for every unit,
/// following the greedy backward packing of §4.1.
///
/// The packing is driven by the same `⊕` delay-propagation step the DP
/// uses ([`madpipe_model::util::group_step`]): fold each unit's load into
/// the accumulated delay and read the group off `⌈delay/T⌉`. This makes
/// the schedule's group count agree *by construction* with the DP's
/// `g = ⌈(V + U)/T̂⌉` memory estimate — in particular when a group's
/// load lands exactly on the period, where the two previously applied
/// their boundary tolerances independently.
///
/// `period` should be at least the largest unit load; an oversized unit
/// still gets its own group so callers can inspect the assignment (the
/// clamp below keeps group indices consecutive), but no valid pattern
/// exists for such a period.
pub fn group_assignment(seq: &UnitSequence, period: f64) -> Vec<usize> {
    let n = seq.len();
    let mut groups = vec![0usize; n];
    let mut delay = 0.0f64;
    let mut prev = 0usize;
    for u in (0..n).rev() {
        let load = seq.units()[u].total_time();
        if load <= 0.0 {
            // Zero-cost units never open a group.
            groups[u] = prev.max(1);
            continue;
        }
        delay = group_step(delay, load, period);
        let g = (ceil_div(delay, period).max(1) as usize).clamp(prev.max(1), prev + 1);
        groups[u] = g;
        prev = g;
    }
    groups
}

/// Build the 1F1B* pattern for `seq` at period `period`.
///
/// The caller must ensure `period ≥ max unit load` for the result to be
/// valid (checked by [`crate::check::check_pattern`] in any case).
pub fn one_f1b_star(seq: &UnitSequence, period: f64) -> Pattern {
    let n = seq.len();
    let groups = group_assignment(seq, period);

    // Absolute start of every forward: forwards are packed back-to-back
    // across the whole chain (group connections preserve the shift).
    let mut z_f = vec![0.0f64; n];
    let mut z = 0.0;
    for (u, zf) in z_f.iter_mut().enumerate() {
        *zf = z;
        z += seq.units()[u].forward_time;
    }

    // Absolute starts of backwards: per group, packed in reverse order
    // right after the group's last forward.
    let mut z_b = vec![0.0f64; n];
    let mut u = n;
    while u > 0 {
        // The group is a maximal run of equal group indices.
        let end = u; // exclusive
        let g = groups[end - 1];
        let mut start = end - 1;
        while start > 0 && groups[start - 1] == g {
            start -= 1;
        }
        let last = end - 1;
        let mut zb = z_f[last] + seq.units()[last].forward_time;
        for v in (start..end).rev() {
            z_b[v] = zb;
            zb += seq.units()[v].backward_time;
        }
        u = start;
    }

    let mut ops = Vec::with_capacity(2 * n);
    for v in 0..n {
        let unit = &seq.units()[v];
        ops.push(wrap_op(
            v,
            Dir::Forward,
            z_f[v],
            unit.forward_time,
            0,
            unit,
            period,
        ));
        ops.push(wrap_op(
            v,
            Dir::Backward,
            z_b[v],
            unit.backward_time,
            (groups[v] - 1) as u64,
            unit,
            period,
        ));
    }
    Pattern { period, ops }
}

/// Fold an absolute start time into `[0, T)`, accumulating the extra laps
/// into the shift.
fn wrap_op(
    unit_idx: usize,
    dir: Dir,
    z: f64,
    duration: f64,
    base_shift: u64,
    unit: &madpipe_model::Unit,
    period: f64,
) -> Op {
    let laps = (z / period).floor();
    // Guard against z being within EPS below a multiple of T, which
    // would otherwise leave start == period.
    let mut start = z - laps * period;
    let mut shift = base_shift + laps as u64;
    if period - start <= madpipe_model::util::EPS {
        start = 0.0;
        shift += 1;
    }
    Op {
        unit: unit_idx,
        dir,
        start,
        duration,
        shift,
        resource: unit.resource,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_pattern;
    use madpipe_model::{Allocation, Chain, Layer, Partition, Platform};

    fn setup(
        layer_costs: &[(f64, f64)],
        cuts: &[usize],
        n_gpus: usize,
        bandwidth: f64,
        act: u64,
    ) -> (Chain, Platform, Allocation, UnitSequence) {
        let layers = layer_costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, 0, act))
            .collect();
        let chain = Chain::new("t", act, layers).unwrap();
        let platform = Platform::new(n_gpus, u64::MAX / 4, bandwidth).unwrap();
        let part = Partition::from_cuts(cuts, layer_costs.len()).unwrap();
        let alloc = Allocation::contiguous(&part, n_gpus).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        (chain, platform, alloc, seq)
    }

    #[test]
    fn group_assignment_packs_from_the_back() {
        // 4 units of load 2 each, period 5 → groups [2,2,1,1]
        let (_, _, _, seq) = setup(
            &[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0)],
            &[1, 2, 3],
            4,
            1e12, // comm negligible but still a unit of ~0 load
            1,
        );
        // 7 units: s c s c s c s with stage loads 2 and tiny comm loads
        let groups = group_assignment(&seq, 5.0);
        // from the back: s(2) c s(2) → 4+ε > 5? 2+ε+2 ≤ 5 yes, + ε + 2 = 6+ > 5
        assert_eq!(groups[6], 1);
        assert_eq!(groups[4], 1);
        assert_eq!(groups[3], 1); // comm between units 4 and 6... index 5 comm
        assert_eq!(groups[0], 2);
    }

    #[test]
    fn single_group_when_period_huge() {
        let (_, _, _, seq) = setup(&[(1.0, 1.0), (1.0, 1.0)], &[1], 2, 1e12, 1);
        let groups = group_assignment(&seq, 1e9);
        assert!(groups.iter().all(|&g| g == 1));
    }

    #[test]
    fn each_unit_its_own_group_when_period_tight() {
        let (_, _, _, seq) = setup(&[(2.0, 2.0), (2.0, 2.0)], &[1], 2, 1.0, 2);
        // units: stage(4), comm(2+2=4 total), stage(4); period 4 → 3 groups
        let groups = group_assignment(&seq, 4.0);
        assert_eq!(groups, vec![3, 2, 1]);
    }

    #[test]
    fn pattern_is_valid_and_stores_group_count() {
        // Mirror of the paper's construction: 3 stages, tight period.
        let (chain, platform, alloc, seq) =
            setup(&[(2.0, 2.0), (2.0, 2.0), (2.0, 2.0)], &[1, 2], 3, 4.0, 4);
        // comm one-way = 4/4 = 1 → each comm unit load 2; six... 5 units:
        // s(4) c(2) s(4) c(2) s(4); period 6 → groups from back:
        // s(4)+c(2)=6 ≤ 6 → group1 = {c,s}, +s(4) = 10 > 6 → group2 = {s,c}? 4+2=6 → {c,s}, group3={s}
        let t = 6.0;
        let groups = group_assignment(&seq, t);
        assert_eq!(groups, vec![3, 2, 2, 1, 1]);
        let pattern = one_f1b_star(&seq, t);
        let report = check_pattern(&chain, &platform, &alloc, &seq, &pattern).unwrap();
        // Stage units are 0, 2, 4 → live batches = their group indices.
        assert_eq!(report.unit_live_batches[0], 3);
        assert_eq!(report.unit_live_batches[2], 2);
        assert_eq!(report.unit_live_batches[4], 1);
    }

    #[test]
    fn sequential_period_gives_one_live_batch_everywhere() {
        let (chain, platform, alloc, seq) =
            setup(&[(2.0, 2.0), (2.0, 2.0), (2.0, 2.0)], &[1, 2], 3, 4.0, 4);
        let t = seq.total_load();
        let pattern = one_f1b_star(&seq, t);
        let report = check_pattern(&chain, &platform, &alloc, &seq, &pattern).unwrap();
        for (u, unit) in seq.units().iter().enumerate() {
            if !unit.is_comm() {
                assert_eq!(report.unit_live_batches[u], 1, "unit {u}");
            }
        }
        assert_eq!(report.max_shift, 0);
    }

    #[test]
    fn heterogeneous_chain_valid_at_load_bound() {
        let (chain, platform, alloc, seq) = setup(
            &[(1.0, 2.0), (5.0, 6.0), (0.5, 0.5), (2.0, 3.0)],
            &[1, 2, 3],
            4,
            8.0,
            16,
        );
        let t = seq.max_unit_load();
        let pattern = one_f1b_star(&seq, t);
        check_pattern(&chain, &platform, &alloc, &seq, &pattern).unwrap();
    }

    #[test]
    fn single_stage_single_gpu() {
        let (chain, platform, alloc, seq) = setup(&[(1.0, 2.0), (3.0, 4.0)], &[], 1, 1.0, 8);
        assert_eq!(seq.len(), 1);
        let pattern = one_f1b_star(&seq, 10.0);
        let report = check_pattern(&chain, &platform, &alloc, &seq, &pattern).unwrap();
        assert_eq!(report.unit_live_batches, vec![1]);
    }

    #[test]
    fn grouping_matches_the_shared_delay_algebra() {
        // Regression for the DP/1F1B* boundary split: the group index of
        // the *first* unit must equal ⌈delay/T⌉ where delay is the shared
        // ⊕ fold of all unit loads — including periods the loads divide
        // exactly, where independently applied tolerances used to be able
        // to disagree on the group count (and hence the memory estimate).
        let (_, _, _, seq) = setup(
            &[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0)],
            &[1, 2, 3],
            4,
            1e12,
            1,
        );
        for period in [2.0, 4.0, 6.0, 8.0, 3.0, 5.0] {
            let groups = group_assignment(&seq, period);
            let mut delay = 0.0;
            for u in (0..seq.len()).rev() {
                delay = group_step(delay, seq.units()[u].total_time(), period);
            }
            assert_eq!(
                groups[0] as u64,
                ceil_div(delay, period).max(1),
                "period {period}: groups {groups:?}, delay {delay}"
            );
        }
    }

    #[test]
    fn exact_period_multiples_group_like_their_ideal() {
        // Stage loads exactly equal to the period: each stage is its own
        // group, with no off-by-one from float noise on either side.
        let (_, _, _, seq) = setup(&[(2.0, 2.0); 3], &[1, 2], 3, 1e12, 1);
        let exact = group_assignment(&seq, 4.0);
        assert_eq!(exact, vec![3, 2, 2, 1, 1]);
        // The same chain with EPS-scale drift on the loads groups
        // identically (the snap in ceil_div/group_step absorbs it).
        let (_, _, _, noisy) = setup(
            &[
                (2.0 + 1e-13, 2.0 - 1e-13),
                (2.0 - 1e-13, 2.0 + 1e-13),
                (2.0, 2.0),
            ],
            &[1, 2],
            3,
            1e12,
            1,
        );
        assert_eq!(group_assignment(&noisy, 4.0), exact);
    }
}
