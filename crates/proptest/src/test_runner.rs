//! Deterministic case runner and RNG.

/// How many cases a [`crate::proptest!`] block runs per test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of *passing* cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another sample.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// SplitMix64: tiny, fast, good enough for test-input generation, and —
/// crucially here — fully deterministic across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; the modulo bias of a 64-bit
        // state over test-sized ranges is far below anything observable.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Runs the sampled cases of one `proptest!` test function.
pub struct Runner {
    cases: u32,
    base_seed: u64,
}

impl Runner {
    /// `name` keys the deterministic seed sequence so distinct tests see
    /// distinct inputs.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        Self {
            cases: config.cases,
            base_seed: seed,
        }
    }

    /// Run until `cases` samples pass; panic on the first failure with
    /// the seed that reproduces it. Rejections (`prop_assume!`) do not
    /// count as passes and are capped to avoid livelock on vacuous
    /// assumptions.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let max_attempts = (self.cases as u64).saturating_mul(64).max(4096);
        let mut passed = 0u32;
        let mut attempts = 0u64;
        while passed < self.cases {
            if attempts >= max_attempts {
                assert!(
                    passed > 0,
                    "proptest: every one of {attempts} sampled cases was rejected by prop_assume!"
                );
                // Assumptions are just too tight to reach the requested
                // case count; accept what we have rather than spin.
                return;
            }
            let seed = self
                .base_seed
                .wrapping_add(attempts.wrapping_mul(0x2545f4914f6cdd1d));
            let mut rng = TestRng::from_seed(seed);
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed (seed {seed:#018x}, attempt {attempts}): {msg}")
                }
            }
        }
    }
}
