//! Every planner obeys the allocation-independent bounds.

use proptest::prelude::*;

use madpipe::core::{madpipe_plan, PlannerConfig};
use madpipe::model::{Chain, Layer, Platform};
use madpipe::pipedream::{gpipe_plan, pipedream_plan, GPipeConfig};
use madpipe::schedule::{period_lower_bound, period_upper_bound, trivially_infeasible};

fn arb_chain() -> impl Strategy<Value = Chain> {
    prop::collection::vec((0.2f64..3.0, 0.2f64..3.0, 0u64..5_000, 1u64..50_000), 2..=7).prop_map(
        |specs| {
            let layers = specs
                .iter()
                .enumerate()
                .map(|(i, &(f, b, w, a))| Layer::new(format!("l{i}"), f, b, w, a))
                .collect();
            Chain::new("bnd", 2_000, layers).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_planners_respect_the_period_bounds(
        chain in arb_chain(),
        p in 2usize..=4,
        mem_exp in 18u32..=30,
    ) {
        let platform = Platform::new(p, 1u64 << mem_exp, 5_000.0).unwrap();
        let lb = period_lower_bound(&chain, &platform);
        let ub = period_upper_bound(&chain, &platform);

        if let Ok(plan) = madpipe_plan(&chain, &platform, &PlannerConfig::default()) {
            prop_assert!(plan.period() + 1e-9 >= lb, "MadPipe below the lower bound");
            prop_assert!(plan.period() <= ub + 1e-9, "MadPipe above sequential");
        }
        if let Ok(plan) = pipedream_plan(&chain, &platform) {
            prop_assert!(plan.period() + 1e-9 >= lb);
            prop_assert!(plan.period() <= ub + 1e-9);
        }
        if let Some(plan) = gpipe_plan(&chain, &platform, &GPipeConfig::default()) {
            // GPipe recomputes forwards, so its upper bound includes the
            // extra forward pass; the lower bound still holds.
            prop_assert!(plan.period + 1e-9 >= lb);
        }
    }

    #[test]
    fn trivial_infeasibility_implies_planner_failure(
        chain in arb_chain(),
        p in 2usize..=4,
    ) {
        // Shrink memory just below the aggregate requirement.
        let need = madpipe::schedule::aggregate_memory_required(&chain);
        let per_gpu = (need / p as u64).saturating_sub(1).max(1);
        let platform = Platform::new(p, per_gpu, 5_000.0).unwrap();
        prop_assume!(trivially_infeasible(&chain, &platform));
        prop_assert!(madpipe_plan(&chain, &platform, &PlannerConfig::default()).is_err());
        prop_assert!(pipedream_plan(&chain, &platform).is_err());
    }
}
