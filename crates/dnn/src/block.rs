//! Blocks: the linearization granularity.
//!
//! A [`Block`] is a (possibly branchy) sub-graph collapsed into a single
//! node of the chain — the "classic linearization approach, also used
//! for PipeDream" the paper mentions: residual sums and inception/dense
//! concatenations never split across stages, so each block becomes one
//! layer of the linearized chain, aggregating the FLOPs and parameters
//! of its internal operators.
//!
//! A [`BranchPath`] may additionally fan out into sub-branches after a
//! shared prefix (Inception-E computes one `1×1` and then both a `1×3`
//! and a `3×1` from its output); the sub-branch outputs concatenate.

use madpipe_model::Layer;

use crate::cost::GpuModel;
use crate::ops::Op;
use crate::tensor::{TensorShape, ELEM_BYTES};

/// How a block's parallel paths merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Merge {
    /// Single path (plain sequence).
    Single,
    /// Element-wise sum of all path outputs (residual connection); all
    /// paths must produce the same shape. An empty path is the identity
    /// shortcut.
    Add,
    /// Channel concatenation of all path outputs (inception / dense
    /// connectivity); spatial dims must agree.
    Concat,
}

/// One parallel path of a block: a shared op prefix, optionally fanning
/// out into concatenated sub-branches.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchPath {
    /// Shared op sequence (empty = identity).
    pub ops: Vec<Op>,
    /// Sub-branches evaluated from the prefix output and concatenated;
    /// empty means the prefix output is the path output.
    pub splits: Vec<Vec<Op>>,
}

impl BranchPath {
    /// Plain sequential path.
    pub fn seq(ops: Vec<Op>) -> Self {
        Self {
            ops,
            splits: Vec::new(),
        }
    }

    /// Path with a shared prefix and concatenated sub-branches.
    pub fn with_splits(ops: Vec<Op>, splits: Vec<Vec<Op>>) -> Self {
        Self { ops, splits }
    }
}

/// A linearization unit: parallel paths merged at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Name of the block in the produced chain.
    pub name: String,
    /// The parallel paths (an empty path = identity shortcut).
    pub paths: Vec<BranchPath>,
    /// How the path outputs merge.
    pub merge: Merge,
}

/// Aggregate profile of one evaluated block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockProfile {
    /// Output activation shape.
    pub output: TensorShape,
    /// Total forward FLOPs of all internal ops (+ merge cost).
    pub flops: u64,
    /// Total trainable parameters.
    pub params: u64,
    /// Bytes touched (all intermediate activations read+written plus
    /// parameters) — drives the roofline memory term.
    pub bytes_touched: u64,
}

/// Running accumulator shared by path evaluation.
#[derive(Default)]
struct Acc {
    flops: u64,
    params: u64,
    bytes: u64,
}

impl Acc {
    fn run_ops(&mut self, ops: &[Op], mut shape: TensorShape) -> TensorShape {
        for op in ops {
            self.flops += op.flops(shape);
            self.params += op.params(shape);
            let out = op.output_shape(shape);
            self.bytes += out.bytes() + op.params(shape) * ELEM_BYTES;
            shape = out;
        }
        shape
    }
}

impl Block {
    /// A single-path block.
    pub fn seq(name: impl Into<String>, ops: Vec<Op>) -> Self {
        Self {
            name: name.into(),
            paths: vec![BranchPath::seq(ops)],
            merge: Merge::Single,
        }
    }

    /// A residual block: `main` plus a shortcut (empty = identity).
    pub fn residual(name: impl Into<String>, main: Vec<Op>, shortcut: Vec<Op>) -> Self {
        Self {
            name: name.into(),
            paths: vec![BranchPath::seq(main), BranchPath::seq(shortcut)],
            merge: Merge::Add,
        }
    }

    /// A concatenation block over plain paths.
    pub fn concat(name: impl Into<String>, paths: Vec<Vec<Op>>) -> Self {
        Self {
            name: name.into(),
            paths: paths.into_iter().map(BranchPath::seq).collect(),
            merge: Merge::Concat,
        }
    }

    /// A concatenation block over paths that may carry sub-branch splits.
    pub fn concat_paths(name: impl Into<String>, paths: Vec<BranchPath>) -> Self {
        Self {
            name: name.into(),
            paths,
            merge: Merge::Concat,
        }
    }

    /// Propagate `input` through the block, accumulating FLOPs, params
    /// and bytes touched.
    pub fn evaluate(&self, input: TensorShape) -> BlockProfile {
        assert!(!self.paths.is_empty(), "block {} has no paths", self.name);
        let mut acc = Acc {
            bytes: input.bytes(), // reading the block input
            ..Acc::default()
        };
        let mut outputs = Vec::with_capacity(self.paths.len());
        for path in &self.paths {
            let prefix_out = acc.run_ops(&path.ops, input);
            if path.splits.is_empty() {
                outputs.push(prefix_out);
            } else {
                let mut c = 0;
                let mut spatial = None;
                for split in &path.splits {
                    let out = acc.run_ops(split, prefix_out);
                    let s = (out.h, out.w);
                    assert!(
                        spatial.is_none_or(|sp| sp == s),
                        "split branches of {} disagree on spatial dims",
                        self.name
                    );
                    spatial = Some(s);
                    c += out.c;
                }
                let (h, w) = spatial.expect("non-empty splits");
                outputs.push(TensorShape::new(prefix_out.n, c, h, w));
            }
        }
        let output = match self.merge {
            Merge::Single => {
                assert_eq!(self.paths.len(), 1, "Single merge requires one path");
                outputs[0]
            }
            Merge::Add => {
                let first = outputs[0];
                for o in &outputs {
                    assert_eq!(
                        (o.c, o.h, o.w),
                        (first.c, first.h, first.w),
                        "Add merge with mismatched shapes in {}",
                        self.name
                    );
                }
                // Element-wise sum of k tensors: (k-1)·elements FLOPs.
                acc.flops += (outputs.len() as u64 - 1) * first.elements();
                first
            }
            Merge::Concat => {
                let first = outputs[0];
                let mut c = 0;
                for o in &outputs {
                    assert_eq!(
                        (o.h, o.w),
                        (first.h, first.w),
                        "Concat merge with mismatched spatial dims in {}",
                        self.name
                    );
                    c += o.c;
                }
                first.with_channels(c)
            }
        };
        acc.bytes += output.bytes(); // writing the block output
        BlockProfile {
            output,
            flops: acc.flops,
            params: acc.params,
            bytes_touched: acc.bytes,
        }
    }

    /// Turn the block into one layer of the linearized chain.
    pub fn to_layer(&self, input: TensorShape, gpu: &GpuModel) -> (Layer, TensorShape) {
        let p = self.evaluate(input);
        let layer = Layer::new(
            self.name.clone(),
            gpu.forward_time(p.flops, p.bytes_touched),
            gpu.backward_time(p.flops, p.bytes_touched),
            p.params * ELEM_BYTES,
            p.output.bytes(),
        );
        (layer, p.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_accumulates_flops_and_params() {
        let b = Block::seq("stem", vec![Op::conv(64, 7, 2, 3), Op::BatchNorm, Op::Relu]);
        let input = TensorShape::image(8, 224, 224);
        let p = b.evaluate(input);
        assert_eq!(p.output, TensorShape::new(8, 64, 112, 112));
        let conv_flops = Op::conv(64, 7, 2, 3).flops(input);
        let post = TensorShape::new(8, 64, 112, 112);
        assert_eq!(
            p.flops,
            conv_flops + Op::BatchNorm.flops(post) + Op::Relu.flops(post)
        );
        assert_eq!(
            p.params,
            Op::conv(64, 7, 2, 3).params(input) + Op::BatchNorm.params(post)
        );
    }

    #[test]
    fn residual_identity_shortcut_keeps_shape() {
        let b = Block::residual(
            "res",
            vec![Op::conv1x1(64), Op::conv3x3(64, 1), Op::conv1x1(256)],
            vec![Op::conv1x1(256)],
        );
        let input = TensorShape::new(8, 256, 56, 56);
        let p = b.evaluate(input);
        assert_eq!(p.output, input.with_channels(256));
        let identity = Block::residual(
            "res2",
            vec![Op::conv1x1(64), Op::conv3x3(64, 1), Op::conv1x1(256)],
            vec![],
        );
        let q = identity.evaluate(input);
        assert_eq!(q.output, input);
        assert!(q.params < p.params);
    }

    #[test]
    #[should_panic(expected = "Add merge with mismatched shapes")]
    fn mismatched_residual_panics() {
        let b = Block::residual("bad", vec![Op::conv1x1(64)], vec![]);
        b.evaluate(TensorShape::new(1, 32, 8, 8));
    }

    #[test]
    fn concat_sums_channels() {
        let b = Block::concat(
            "inc",
            vec![
                vec![Op::conv1x1(64)],
                vec![Op::conv1x1(48), Op::conv(64, 5, 1, 2)],
                vec![Op::conv3x3(96, 1)],
            ],
        );
        let input = TensorShape::new(8, 192, 35, 35);
        let p = b.evaluate(input);
        assert_eq!(p.output.c, 64 + 64 + 96);
        assert_eq!((p.output.h, p.output.w), (35, 35));
    }

    #[test]
    fn split_paths_share_their_prefix() {
        // prefix 1×1(384), then 1×3 and 3×1 sub-branches → 768 channels,
        // with the prefix parameters counted exactly once.
        let split = Block::concat_paths(
            "e",
            vec![BranchPath::with_splits(
                vec![Op::conv1x1(384)],
                vec![
                    vec![Op::conv_rect(384, 1, 3, 0, 1)],
                    vec![Op::conv_rect(384, 3, 1, 1, 0)],
                ],
            )],
        );
        let input = TensorShape::new(1, 1280, 17, 17);
        let p = split.evaluate(input);
        assert_eq!(p.output.c, 768);
        let prefix_params = Op::conv1x1(384).params(input);
        let mid = input.with_channels(384);
        let split_params =
            Op::conv_rect(384, 1, 3, 0, 1).params(mid) + Op::conv_rect(384, 3, 1, 1, 0).params(mid);
        assert_eq!(p.params, prefix_params + split_params);

        // The flattened (duplicated-prefix) encoding counts more.
        let flattened = Block::concat(
            "e_flat",
            vec![
                vec![Op::conv1x1(384), Op::conv_rect(384, 1, 3, 0, 1)],
                vec![Op::conv1x1(384), Op::conv_rect(384, 3, 1, 1, 0)],
            ],
        );
        assert!(flattened.evaluate(input).params > p.params);
    }

    #[test]
    fn to_layer_reports_positive_costs() {
        let gpu = GpuModel::default();
        let b = Block::seq("c", vec![Op::conv3x3(32, 1)]);
        let (layer, out) = b.to_layer(TensorShape::image(8, 64, 64), &gpu);
        assert!(layer.forward_time > 0.0);
        assert!(layer.backward_time > layer.forward_time);
        assert_eq!(layer.activation_bytes, out.bytes());
        assert!(layer.weight_bytes > 0);
    }
}
