//! Planner observability: counters and timings collected while MadPipe
//! plans, exposed to the CLI (`--stats`, `--stats-json`) and the bench
//! CSV writers.
//!
//! The source of truth is the [`madpipe_obs::Registry`] owned by the DP
//! session — every counter below is a *view* over it:
//!
//! * [`DpStats`] — the named counters of the cross-probe DP session
//!   ([`crate::dp::ProbeSession`]), derived from the registry with
//!   [`DpStats::from_registry`]: how many DP solves actually ran, how
//!   many probes were answered from the outcome cache or the monotone
//!   infeasibility bound, and the memoization/prune behaviour inside the
//!   solves that did run;
//! * [`PlannerStats`] — the end-to-end picture: the probe timeline (every
//!   target period evaluated, tagged with the planner stage that asked
//!   for it), phase wall-clock times, phase-2 scheduling counts, and the
//!   full frozen registry ([`PlannerStats::metrics`]) for machine
//!   consumers ([`PlannerStats::to_json`], the Prometheus dump).

use madpipe_json::Value;
use madpipe_obs::{MetricsSnapshot, Registry};

/// Registry counter names of the DP session (the [`DpStats`] fields).
pub mod counters {
    pub const DP_SOLVES: &str = "dp.solves";
    pub const DP_OUTCOME_HITS: &str = "dp.outcome_hits";
    pub const DP_BOUND_PRUNES: &str = "dp.bound_prunes";
    pub const DP_STATES_CREATED: &str = "dp.states_created";
    pub const DP_STATES_REUSED: &str = "dp.states_reused";
    pub const DP_STATES_SEEDED: &str = "dp.states_seeded";
    pub const DP_MEMO_HITS: &str = "dp.memo_hits";
    pub const DP_LOAD_PRUNES: &str = "dp.load_prunes";
    pub const DP_MEMORY_PRUNES: &str = "dp.memory_prunes";
    pub const DP_BRANCH_PRUNES: &str = "dp.branch_prunes";
    /// Log₂ histogram of per-solve wall time (seconds).
    pub const DP_SOLVE_SECONDS: &str = "dp.solve.seconds";
    /// Log₂ histogram of per-solve memoized state counts.
    pub const DP_SOLVE_STATES: &str = "dp.solve.states";
    pub const SCHEDULES_ATTEMPTED: &str = "planner.schedules_attempted";
    pub const SCHEDULES_SOLVED: &str = "planner.schedules_solved";
    pub const CERTIFY_PASSED: &str = "planner.certifications_passed";
    pub const CERTIFY_FAILED: &str = "planner.certifications_failed";
}

/// Aggregate counters of one [`crate::dp::ProbeSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpStats {
    /// DP solves that actually ran (memo built from scratch).
    pub solves: usize,
    /// Probes answered from the cross-probe outcome cache.
    pub outcome_hits: usize,
    /// Probes answered by the monotone infeasibility bound (a target no
    /// larger than one already proven infeasible).
    pub bound_prunes: usize,
    /// Distinct memoized states created across all solves.
    pub states_created: u64,
    /// States served again from retained shards by outcome-cache hits.
    pub states_reused: u64,
    /// States pre-filled from a parent session's slabs on derived
    /// sessions (incremental replans) instead of being recomputed.
    pub states_seeded: u64,
    /// Intra-solve memo lookups that hit an existing state.
    pub memo_hits: u64,
    /// Times the exact load prune (`u ≥ best`) cut a stage scan short.
    pub load_prunes: u64,
    /// Times the monotone memory-overflow break cut a stage scan short.
    pub memory_prunes: u64,
    /// Candidate recursions skipped because the 1F1B* subtree lower
    /// bound already met the incumbent (branch-and-bound, exact).
    pub branch_prunes: u64,
}

impl DpStats {
    /// The counter view over a DP session's registry.
    pub fn from_registry(registry: &Registry) -> Self {
        use counters::*;
        Self {
            solves: registry.counter(DP_SOLVES) as usize,
            outcome_hits: registry.counter(DP_OUTCOME_HITS) as usize,
            bound_prunes: registry.counter(DP_BOUND_PRUNES) as usize,
            states_created: registry.counter(DP_STATES_CREATED),
            states_reused: registry.counter(DP_STATES_REUSED),
            states_seeded: registry.counter(DP_STATES_SEEDED),
            memo_hits: registry.counter(DP_MEMO_HITS),
            load_prunes: registry.counter(DP_LOAD_PRUNES),
            memory_prunes: registry.counter(DP_MEMORY_PRUNES),
            branch_prunes: registry.counter(DP_BRANCH_PRUNES),
        }
    }

    /// Fold another set of counters into this one.
    pub fn merge(&mut self, other: &DpStats) {
        self.solves += other.solves;
        self.outcome_hits += other.outcome_hits;
        self.bound_prunes += other.bound_prunes;
        self.states_created += other.states_created;
        self.states_reused += other.states_reused;
        self.states_seeded += other.states_seeded;
        self.memo_hits += other.memo_hits;
        self.load_prunes += other.load_prunes;
        self.memory_prunes += other.memory_prunes;
        self.branch_prunes += other.branch_prunes;
    }

    /// Probes answered without running a DP solve.
    pub fn probes_saved(&self) -> usize {
        self.outcome_hits + self.bound_prunes
    }
}

/// Which planner stage requested a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSource {
    /// Algorithm 1's bisection over `T̂`.
    Bisection,
    /// The memory-aware contiguous ablation (special processor off).
    ContiguousFallback,
    /// The post-bisection refinement grid.
    Refinement,
    /// A degraded-mode bridge probe: the survivor evaluated at the
    /// baseline plan's chosen target, seeded from the baseline session's
    /// surviving DP slabs ([`crate::replan_with_session`]).
    Bridge,
}

impl std::fmt::Display for ProbeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeSource::Bisection => write!(f, "bisection"),
            ProbeSource::ContiguousFallback => write!(f, "contiguous"),
            ProbeSource::Refinement => write!(f, "refinement"),
            ProbeSource::Bridge => write!(f, "bridge"),
        }
    }
}

/// One entry of the probe timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// Stage that asked for this probe.
    pub source: ProbeSource,
    /// Target period `T̂`.
    pub t_hat: f64,
    /// Whether the special processor was enabled.
    pub use_special: bool,
    /// Raw DP period (infinite when infeasible).
    pub period: f64,
    /// Memoized states of the solve that answered this probe.
    pub states: usize,
    /// Answered from the cross-probe outcome cache (no solve ran).
    pub cached: bool,
    /// Answered by the monotone infeasibility bound (no solve ran).
    pub pruned: bool,
    /// Wall-clock seconds spent answering (≈ 0 for cached/pruned).
    pub seconds: f64,
}

/// End-to-end planner instrumentation for one [`crate::madpipe_plan`]
/// run, also available on failure (the counters explain *why* planning
/// failed, e.g. every probe infeasible).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlannerStats {
    /// Aggregate DP counters of the shared probe session.
    pub dp: DpStats,
    /// Every probe in evaluation order (parallel batches keep their
    /// submission order, so the timeline is deterministic).
    pub probes: Vec<ProbeRecord>,
    /// Distinct allocations handed to phase 2.
    pub schedules_attempted: usize,
    /// Of those, how many produced a valid schedule.
    pub schedules_solved: usize,
    /// Wall time of the phase-1 bisection (including its DP solves).
    pub phase1_seconds: f64,
    /// Wall time of the contiguous-fallback bisection.
    pub fallback_seconds: f64,
    /// Wall time of the refinement-grid probes.
    pub refine_seconds: f64,
    /// Wall time of phase-2 scheduling (all candidate allocations).
    pub schedule_seconds: f64,
    /// Wall time of differential certification, folded in by
    /// [`crate::certify::Certificate::record`] (0 when no plan was
    /// certified).
    pub certify_seconds: f64,
    /// Total wall time: the plan call plus any certification recorded
    /// afterwards, so the phase times always sum to at most this.
    pub total_seconds: f64,
    /// Worker threads used for independent probes and scheduling.
    pub threads: usize,
    /// Plans that passed differential certification
    /// ([`crate::certify::Certificate::record`]).
    pub certifications_passed: usize,
    /// Plans that failed it.
    pub certifications_failed: usize,
    /// The frozen metrics registry: every counter above plus the
    /// log₂ timing/state histograms, exportable as Prometheus text or
    /// JSON.
    pub metrics: MetricsSnapshot,
}

impl PlannerStats {
    /// One-line summary suitable for CLI output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "probes {} ({} solved, {} cached, {} pruned), states {} (+{} reused), \
             schedules {}/{}, {:.3}s total ({} thread{})",
            self.probes.len(),
            self.dp.solves,
            self.dp.outcome_hits,
            self.dp.bound_prunes,
            self.dp.states_created,
            self.dp.states_reused,
            self.schedules_solved,
            self.schedules_attempted,
            self.total_seconds,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        );
        let certs = self.certifications_passed + self.certifications_failed;
        if certs > 0 {
            s.push_str(&format!(", certify {}/{certs}", self.certifications_passed));
        }
        s
    }

    /// Sum of the per-phase wall clocks (each phase is timed inside the
    /// total clock, so this never exceeds [`total_seconds`]).
    ///
    /// [`total_seconds`]: PlannerStats::total_seconds
    pub fn phase_seconds_sum(&self) -> f64 {
        self.phase1_seconds
            + self.fallback_seconds
            + self.refine_seconds
            + self.schedule_seconds
            + self.certify_seconds
    }

    /// Machine-readable export: every field, the probe timeline and the
    /// full metrics snapshot (the `--stats-json` payload).
    pub fn to_json(&self) -> Value {
        let probe = |p: &ProbeRecord| {
            Value::Object(vec![
                ("source".into(), Value::Str(p.source.to_string())),
                ("t_hat".into(), Value::Float(p.t_hat)),
                ("use_special".into(), Value::Bool(p.use_special)),
                (
                    "period".into(),
                    if p.period.is_finite() {
                        Value::Float(p.period)
                    } else {
                        Value::Null
                    },
                ),
                ("states".into(), Value::UInt(p.states as u64)),
                ("cached".into(), Value::Bool(p.cached)),
                ("pruned".into(), Value::Bool(p.pruned)),
                ("seconds".into(), Value::Float(p.seconds)),
            ])
        };
        Value::Object(vec![
            (
                "dp".into(),
                Value::Object(vec![
                    ("solves".into(), Value::UInt(self.dp.solves as u64)),
                    (
                        "outcome_hits".into(),
                        Value::UInt(self.dp.outcome_hits as u64),
                    ),
                    (
                        "bound_prunes".into(),
                        Value::UInt(self.dp.bound_prunes as u64),
                    ),
                    ("states_created".into(), Value::UInt(self.dp.states_created)),
                    ("states_reused".into(), Value::UInt(self.dp.states_reused)),
                    ("states_seeded".into(), Value::UInt(self.dp.states_seeded)),
                    ("memo_hits".into(), Value::UInt(self.dp.memo_hits)),
                    ("load_prunes".into(), Value::UInt(self.dp.load_prunes)),
                    ("memory_prunes".into(), Value::UInt(self.dp.memory_prunes)),
                    ("branch_prunes".into(), Value::UInt(self.dp.branch_prunes)),
                ]),
            ),
            (
                "probes".into(),
                Value::Array(self.probes.iter().map(probe).collect()),
            ),
            (
                "schedules_attempted".into(),
                Value::UInt(self.schedules_attempted as u64),
            ),
            (
                "schedules_solved".into(),
                Value::UInt(self.schedules_solved as u64),
            ),
            (
                "phase_seconds".into(),
                Value::Object(vec![
                    ("phase1".into(), Value::Float(self.phase1_seconds)),
                    ("fallback".into(), Value::Float(self.fallback_seconds)),
                    ("refine".into(), Value::Float(self.refine_seconds)),
                    ("schedule".into(), Value::Float(self.schedule_seconds)),
                    ("certify".into(), Value::Float(self.certify_seconds)),
                    ("total".into(), Value::Float(self.total_seconds)),
                ]),
            ),
            ("threads".into(), Value::UInt(self.threads as u64)),
            (
                "certifications_passed".into(),
                Value::UInt(self.certifications_passed as u64),
            ),
            (
                "certifications_failed".into(),
                Value::UInt(self.certifications_failed as u64),
            ),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = DpStats {
            solves: 2,
            outcome_hits: 1,
            bound_prunes: 0,
            states_created: 100,
            states_reused: 40,
            states_seeded: 5,
            memo_hits: 7,
            load_prunes: 3,
            memory_prunes: 1,
            branch_prunes: 11,
        };
        let b = DpStats {
            solves: 1,
            outcome_hits: 2,
            bound_prunes: 3,
            states_created: 10,
            states_reused: 0,
            states_seeded: 2,
            memo_hits: 1,
            load_prunes: 1,
            memory_prunes: 0,
            branch_prunes: 4,
        };
        a.merge(&b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.outcome_hits, 3);
        assert_eq!(a.bound_prunes, 3);
        assert_eq!(a.states_created, 110);
        assert_eq!(a.states_seeded, 7);
        assert_eq!(a.branch_prunes, 15);
        assert_eq!(a.probes_saved(), 6);
    }

    #[test]
    fn summary_mentions_the_key_counters() {
        let stats = PlannerStats {
            threads: 4,
            schedules_attempted: 5,
            schedules_solved: 4,
            ..PlannerStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("4/5"));
        assert!(s.contains("4 threads"));
    }

    #[test]
    fn dp_stats_derive_from_the_registry() {
        let r = Registry::new();
        r.add(counters::DP_SOLVES, 3);
        r.add(counters::DP_STATES_CREATED, 1000);
        r.add(counters::DP_OUTCOME_HITS, 2);
        r.add(counters::DP_BOUND_PRUNES, 1);
        let dp = DpStats::from_registry(&r);
        assert_eq!(dp.solves, 3);
        assert_eq!(dp.states_created, 1000);
        assert_eq!(dp.probes_saved(), 3);
        assert_eq!(dp.memo_hits, 0);
    }

    #[test]
    fn json_export_round_trips_and_encodes_infinity_as_null() {
        let stats = PlannerStats {
            probes: vec![
                ProbeRecord {
                    source: ProbeSource::Bisection,
                    t_hat: 0.5,
                    use_special: true,
                    period: 0.75,
                    states: 12,
                    cached: false,
                    pruned: false,
                    seconds: 0.01,
                },
                ProbeRecord {
                    source: ProbeSource::Refinement,
                    t_hat: 0.1,
                    use_special: true,
                    period: f64::INFINITY,
                    states: 0,
                    cached: false,
                    pruned: true,
                    seconds: 0.0,
                },
            ],
            schedules_attempted: 2,
            schedules_solved: 1,
            total_seconds: 1.5,
            threads: 2,
            ..PlannerStats::default()
        };
        let v = stats.to_json();
        let text = v.to_string_pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        let probes = back.field("probes").unwrap().as_array().unwrap();
        assert_eq!(probes[0].field("period").unwrap().as_f64().unwrap(), 0.75);
        assert_eq!(probes[1].field("period").unwrap(), &Value::Null);
        assert_eq!(
            back.field("phase_seconds")
                .unwrap()
                .field("total")
                .unwrap()
                .as_f64()
                .unwrap(),
            1.5
        );
    }
}
