//! Stitch per-daemon trace artifacts into one cluster-wide Chrome
//! trace (`madpipe trace-merge`).
//!
//! Inputs are flight-recorder JSONL dumps or Chrome documents, one per
//! process (router, each daemon, a client). Every input becomes one
//! Chrome process in the merged view — pid = input order, named by its
//! label — and every event keeps its `args` untouched, so the
//! distributed `trace`/`span`/`parent` ids survive and the merged
//! document carries cross-process parent/child edges that
//! [`crate::validate::validate_chrome`] checks.
//!
//! Flight events are stamped with wall-clock UNIX-epoch microseconds
//! precisely so this merge is possible without clock coordination; the
//! merged trace is rebased to its earliest event, putting t=0 at the
//! start of the run (and keeping Perfetto's UI away from year-2026
//! timestamp offsets).

use madpipe_json::Value;

/// Parse one input artifact (Chrome document or JSONL) into its event
/// objects.
fn events_of_text(label: &str, text: &str) -> Result<Vec<Value>, String> {
    if let Ok(doc) = Value::parse(text) {
        if let Some(events) = doc.get("traceEvents") {
            let events = events
                .as_array()
                .map_err(|e| format!("{label}: traceEvents is not an array: {e}"))?;
            return Ok(events.to_vec());
        }
    }
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .enumerate()
        .map(|(i, line)| {
            Value::parse(line).map_err(|e| format!("{label}: line {}: bad JSON: {e}", i + 1))
        })
        .collect()
}

fn set_field(v: &mut Value, key: &str, value: Value) {
    if let Value::Object(fields) = v {
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    }
}

/// Merge `(label, artifact text)` inputs into one Chrome trace value.
/// Input order is identity: input `i` becomes Chrome pid `i + 1`, its
/// process named `label`. Timestamps are rebased so the earliest timed
/// event across all inputs lands at t = 0.
pub fn merge_traces(inputs: &[(String, String)]) -> Result<Value, String> {
    if inputs.is_empty() {
        return Err("trace-merge needs at least one input artifact".into());
    }
    let mut parsed: Vec<(String, Vec<Value>)> = Vec::with_capacity(inputs.len());
    let mut min_ts = f64::INFINITY;
    for (label, text) in inputs {
        let events = events_of_text(label, text)?;
        for e in &events {
            if let Some(ts) = e.get("ts").and_then(|t| t.as_f64().ok()) {
                min_ts = min_ts.min(ts);
            }
        }
        parsed.push((label.clone(), events));
    }
    if !min_ts.is_finite() {
        min_ts = 0.0;
    }
    let mut out: Vec<Value> = Vec::new();
    for (i, (label, events)) in parsed.into_iter().enumerate() {
        let pid = (i + 1) as u64;
        out.push(Value::Object(vec![
            ("name".into(), Value::Str("process_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::UInt(pid)),
            ("tid".into(), Value::UInt(0)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str(label))]),
            ),
        ]));
        for mut e in events {
            set_field(&mut e, "pid", Value::UInt(pid));
            if let Some(ts) = e.get("ts").and_then(|t| t.as_f64().ok()) {
                set_field(&mut e, "ts", Value::Float(ts - min_ts));
            }
            out.push(e);
        }
    }
    Ok(Value::Object(vec![
        ("traceEvents".into(), Value::Array(out)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_chrome;

    fn jsonl(events: &[&str]) -> String {
        events.join("\n")
    }

    #[test]
    fn merges_jsonl_dumps_with_rebasing_and_per_input_pids() {
        let router = jsonl(&[concat!(
            r#"{"name":"router.forward","ph":"X","pid":900,"tid":0,"ts":1000100.0,"dur":50.0,"#,
            r#""cat":"flight","args":{"trace":"00000000000000aa","span":"0000000000000001"}}"#
        )]);
        let daemon = jsonl(&[
            concat!(
                r#"{"name":"serve.request","ph":"X","pid":901,"tid":3,"ts":1000110.0,"dur":30.0,"#,
                r#""cat":"flight","args":{"trace":"00000000000000aa","span":"0000000000000002","parent":"0000000000000001"}}"#
            ),
            r#"{"name":"serve.cache.miss","ph":"i","pid":901,"tid":3,"ts":1000112.0,"cat":"flight"}"#,
        ]);
        let merged = merge_traces(&[
            ("router".to_string(), router),
            ("daemon1".to_string(), daemon),
        ])
        .unwrap();
        let text = merged.to_string_pretty();
        let summary = validate_chrome(&text).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.linked_spans, 2);
        assert_eq!(
            summary.pids.iter().copied().collect::<Vec<u64>>(),
            vec![1, 2],
            "each input becomes its own Chrome process"
        );
        // Rebased: the earliest event now starts at 0.
        let events = merged.field("traceEvents").unwrap().as_array().unwrap();
        let router_span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str().ok()) == Some("router.forward"))
            .unwrap();
        assert_eq!(router_span.field("ts").unwrap().as_f64(), Ok(0.0));
        assert_eq!(
            summary.max_ts_us, 50.0,
            "router span ends latest: 0 + 50 µs"
        );
    }

    #[test]
    fn merged_traces_fail_validation_on_broken_parent_links() {
        let orphan = concat!(
            r#"{"name":"serve.worker","ph":"X","pid":1,"tid":0,"ts":5.0,"dur":1.0,"#,
            r#""cat":"flight","args":{"span":"000000000000000b","parent":"00000000000000ff"}}"#
        )
        .to_string();
        let merged = merge_traces(&[("daemon".to_string(), orphan)]).unwrap();
        let err = validate_chrome(&merged.to_string_pretty()).unwrap_err();
        assert!(err.contains("no event defines"), "{err}");
    }

    #[test]
    fn rejects_empty_input_sets_and_garbage() {
        assert!(merge_traces(&[]).is_err());
        assert!(merge_traces(&[("x".into(), "not json".into())]).is_err());
    }
}
