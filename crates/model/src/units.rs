//! The `P → 2P-1` transformation of §4.1: interleaving stages with
//! communication pseudo-stages.
//!
//! The 1F1B* optimality argument treats every communication between
//! consecutive stages on different GPUs as if it were a computation layer
//! of its own, on its own resource (the link). A [`UnitSequence`] is the
//! resulting alternating sequence of *units*; group formation and the
//! schedule constructions all operate on it.

use std::ops::Range;

use crate::allocation::Allocation;
use crate::chain::Chain;
use crate::platform::Platform;
use crate::policy::StagePolicy;

/// An exclusive resource of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// GPU `p`.
    Gpu(usize),
    /// The link between GPUs `a < b` (a single exclusive channel per GPU
    /// pair, shared by forward and backward transfers, as in PipeDream).
    Link(usize, usize),
}

impl Resource {
    /// Normalized link constructor (`a < b`).
    pub fn link(a: usize, b: usize) -> Self {
        Resource::Link(a.min(b), a.max(b))
    }
}

/// What a unit stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitKind {
    /// Stage `stage` of the allocation, covering `layers`.
    Stage { stage: usize, layers: Range<usize> },
    /// The communication crossing the cut before layer `cut_layer`
    /// (carrying `a^{(cut_layer-1)}` forward and the same-size gradient
    /// backward), between stages `stage_before` and `stage_before + 1`.
    Comm {
        cut_layer: usize,
        stage_before: usize,
    },
}

/// One unit of the transformed chain: either a stage or a communication,
/// with its own forward/backward durations and exclusive resource.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    pub kind: UnitKind,
    /// Forward duration (stage: `U_F(s)`; comm: `a/β`).
    pub forward_time: f64,
    /// Backward duration (stage: `U_B(s)`, plus the recompute forward
    /// pass when the stage policy recomputes; comm: `a/β`).
    pub backward_time: f64,
    /// Resource the unit occupies.
    pub resource: Resource,
    /// Execution policy of the stage (default for comm units).
    pub policy: StagePolicy,
}

impl Unit {
    /// Total load of the unit, the paper's `U(s)` (or `C(k)` for comms).
    pub fn total_time(&self) -> f64 {
        self.forward_time + self.backward_time
    }

    /// True for communication units.
    pub fn is_comm(&self) -> bool {
        matches!(self.kind, UnitKind::Comm { .. })
    }
}

/// The transformed chain: stages interleaved with the communications that
/// their placement induces, in chain order.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSequence {
    units: Vec<Unit>,
}

impl UnitSequence {
    /// Build the unit sequence for `alloc`. A communication unit is
    /// inserted between consecutive stages exactly when they live on
    /// different GPUs.
    pub fn from_allocation(chain: &Chain, platform: &Platform, alloc: &Allocation) -> Self {
        let policies = vec![StagePolicy::default(); alloc.stages().len()];
        Self::from_allocation_with(chain, platform, alloc, &policies)
    }

    /// Build the unit sequence for `alloc` with a per-stage policy.
    /// A recomputing stage's backward duration includes the recompute
    /// forward pass (`U_B + U_F`), so every schedule construction and
    /// checker downstream accounts for recompute time automatically.
    ///
    /// Panics if `policies.len()` differs from the number of stages.
    pub fn from_allocation_with(
        chain: &Chain,
        platform: &Platform,
        alloc: &Allocation,
        policies: &[StagePolicy],
    ) -> Self {
        let stages = alloc.stages();
        assert_eq!(
            policies.len(),
            stages.len(),
            "one policy per stage required"
        );
        let mut units = Vec::with_capacity(2 * stages.len());
        for (i, s) in stages.iter().enumerate() {
            let policy = policies[i];
            let forward_time = chain.forward_time(s.layers.clone());
            let mut backward_time = chain.backward_time(s.layers.clone());
            if policy.recomputes() {
                backward_time += forward_time;
            }
            units.push(Unit {
                kind: UnitKind::Stage {
                    stage: i,
                    layers: s.layers.clone(),
                },
                forward_time,
                backward_time,
                resource: Resource::Gpu(s.gpu),
                policy,
            });
            if i + 1 < stages.len() && alloc.cut_is_remote(i) {
                let cut_layer = stages[i + 1].layers.start;
                let one_way = platform.one_way_cut_time(chain, cut_layer);
                units.push(Unit {
                    kind: UnitKind::Comm {
                        cut_layer,
                        stage_before: i,
                    },
                    forward_time: one_way,
                    backward_time: one_way,
                    resource: Resource::link(s.gpu, stages[i + 1].gpu),
                    policy: StagePolicy::default(),
                });
            }
        }
        Self { units }
    }

    /// The units in chain order.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True iff the sequence contains no unit.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Max unit load — a lower bound on the period of any schedule of
    /// this allocation when each unit has a dedicated resource.
    pub fn max_unit_load(&self) -> f64 {
        self.units.iter().map(Unit::total_time).fold(0.0, f64::max)
    }

    /// Total load of all units — the period of a one-batch-at-a-time
    /// schedule, an upper bound for feasible periods of interest.
    pub fn total_load(&self) -> f64 {
        self.units.iter().map(Unit::total_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Stage;
    use crate::layer::Layer;
    use crate::partition::Partition;

    fn chain4() -> Chain {
        Chain::new(
            "t",
            10,
            vec![
                Layer::new("a", 1.0, 2.0, 0, 100),
                Layer::new("b", 3.0, 4.0, 0, 200),
                Layer::new("c", 5.0, 6.0, 0, 300),
                Layer::new("d", 7.0, 8.0, 0, 400),
            ],
        )
        .unwrap()
    }

    #[test]
    fn contiguous_allocation_yields_2p_minus_1_units() {
        let c = chain4();
        let platform = Platform::new(2, 1 << 30, 100.0).unwrap();
        let part = Partition::from_cuts(&[2], 4).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        assert_eq!(seq.len(), 3);
        assert!(seq.units()[1].is_comm());
        // comm carries a^{(1)} = 200 bytes each way → 2s one-way at β=100
        assert_eq!(seq.units()[1].forward_time, 2.0);
        assert_eq!(seq.units()[1].backward_time, 2.0);
        assert_eq!(seq.units()[1].resource, Resource::Link(0, 1));
        assert_eq!(seq.units()[0].forward_time, 4.0); // u_F of layers 0..2
        assert_eq!(seq.units()[2].backward_time, 14.0); // u_B of layers 2..4
    }

    #[test]
    fn no_comm_between_co_located_stages() {
        let c = chain4();
        let platform = Platform::new(2, 1 << 30, 100.0).unwrap();
        let alloc = Allocation::new(
            vec![
                Stage {
                    layers: 0..1,
                    gpu: 0,
                },
                Stage {
                    layers: 1..2,
                    gpu: 0,
                },
                Stage {
                    layers: 2..4,
                    gpu: 1,
                },
            ],
            4,
            2,
        )
        .unwrap();
        let seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        // stage, stage (same gpu → no comm), comm, stage
        assert_eq!(seq.len(), 4);
        assert!(!seq.units()[1].is_comm());
        assert!(seq.units()[2].is_comm());
    }

    #[test]
    fn load_summaries() {
        let c = chain4();
        let platform = Platform::new(2, 1 << 30, 100.0).unwrap();
        let part = Partition::from_cuts(&[2], 4).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        assert_eq!(seq.max_unit_load(), 26.0); // second stage 5+6+7+8
        assert_eq!(seq.total_load(), 10.0 + 4.0 + 26.0);
    }

    #[test]
    fn resource_link_normalizes() {
        assert_eq!(Resource::link(3, 1), Resource::Link(1, 3));
    }

    #[test]
    fn recompute_policy_extends_backward_time() {
        use crate::policy::{ActivationPolicy, StagePolicy};
        let c = chain4();
        let platform = Platform::new(2, 1 << 30, 100.0).unwrap();
        let part = Partition::from_cuts(&[2], 4).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let rec = StagePolicy {
            activation: ActivationPolicy::Recompute,
            ..StagePolicy::default()
        };
        let seq = UnitSequence::from_allocation_with(
            &c,
            &platform,
            &alloc,
            &[StagePolicy::default(), rec],
        );
        // Stage 0 stores: unchanged. Stage 1 recomputes: U_B + U_F.
        assert_eq!(seq.units()[0].backward_time, 6.0);
        assert_eq!(seq.units()[2].forward_time, 12.0);
        assert_eq!(seq.units()[2].backward_time, 14.0 + 12.0);
        assert_eq!(seq.units()[2].policy, rec);
        // Comm units carry the default policy.
        assert_eq!(seq.units()[1].policy, StagePolicy::default());
        // The default constructor is the all-default special case.
        let default_seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        let all_store =
            UnitSequence::from_allocation_with(&c, &platform, &alloc, &[StagePolicy::default(); 2]);
        assert_eq!(default_seq, all_store);
    }
}
