//! Scoped worker pool fanning grid cells over CPU cores.
//!
//! The planners are pure CPU-bound functions of `(chain, cell)`, so the
//! sweep parallelizes embarrassingly: a shared atomic cursor hands out
//! cell indices, each worker owns nothing mutable but its slot in the
//! results vector, and a scoped spawn keeps all borrows on the stack —
//! no `Arc`, no channels, no locks on the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};

use madpipe_core::PlannerConfig;
use madpipe_model::Chain;

use crate::grid::{run_cell, Cell, CellResult};

/// Evaluate `cells` with up to `threads` workers (0 ⇒ available
/// parallelism). `chains` must contain one profiled chain per distinct
/// network name referenced by the cells. Results keep the input order.
pub fn run_cells(
    chains: &[Chain],
    cells: &[Cell],
    planner: &PlannerConfig,
    threads: usize,
    progress: bool,
) -> Vec<CellResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(cells.len().max(1));

    let chain_for = |name: &str| -> &Chain {
        chains
            .iter()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("no profiled chain for network {name}"))
    };

    let mut results: Vec<Option<CellResult>> = vec![None; cells.len()];
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    // Each worker pulls cell indices from a shared atomic cursor,
    // collects its (index, result) pairs locally, and merges at join
    // time — no `Arc`, no channels, no locks on the hot path.
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let done = &done;
            let chain_for = &chain_for;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, CellResult)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell = &cells[i];
                    let chain = chain_for(&cell.network);
                    let result = run_cell(chain, cell, planner);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress && (finished.is_multiple_of(10) || finished == cells.len()) {
                        eprintln!("  [{finished}/{}] cells evaluated", cells.len());
                    }
                    local.push((i, result));
                }
                local
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                results[i] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every cell evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{paper_chains, GridConfig};

    #[test]
    fn parallel_matches_serial_and_keeps_order() {
        let cfg = GridConfig {
            networks: vec!["resnet50".into()],
            p_values: vec![2, 3],
            m_values: vec![8, 16],
            beta_values: vec![12.0],
            batch: 1,
            image_size: 100,
        };
        let chains = paper_chains(&cfg);
        let cells = cfg.cells();
        let planner = PlannerConfig {
            algorithm1: madpipe_core::Algorithm1Config {
                iterations: 4,
                discretization: madpipe_core::Discretization::coarse(),
                use_special: true,
            },
            refine_probes: 0,
            ..PlannerConfig::default()
        };
        let serial = run_cells(&chains, &cells, &planner, 1, false);
        let parallel = run_cells(&chains, &cells, &planner, 4, false);
        assert_eq!(serial.len(), cells.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.cell, p.cell);
            assert_eq!(s.madpipe, p.madpipe);
            assert_eq!(s.pipedream, p.pipedream);
        }
    }
}
