//! A single layer of a linearized DNN.

use madpipe_json::{FromJson, JsonError, ToJson, Value};

/// One layer of the linearized chain (the paper's layer `l`).
///
/// A layer bundles the profiled (or synthesized) costs of one node of the
/// chain of Figure 1: the forward operation `F_l`, the backward operation
/// `B_l`, its parameter weights `W_l` and the activation tensor `a^{(l)}`
/// that `F_l` outputs. The gradient `b^{(l)}` consumed by `B_l` has the
/// same size as `a^{(l)}` (each gradient matches the activation it is
/// taken with respect to), so it is not stored separately.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable identifier (e.g. `"conv2_block1"`).
    pub name: String,
    /// Duration of the forward task `F_l` for one mini-batch, in seconds
    /// (the paper's `u_{F_l}`).
    pub forward_time: f64,
    /// Duration of the backward task `B_l` for one mini-batch, in seconds
    /// (the paper's `u_{B_l}`).
    pub backward_time: f64,
    /// Size of the parameter weights `W_l`, in bytes.
    pub weight_bytes: u64,
    /// Size of the output activation tensor `a^{(l)}` for one mini-batch,
    /// in bytes.
    pub activation_bytes: u64,
    /// Extra bytes pinned per live mini-batch *inside* the layer, beyond
    /// its input activation — non-zero only for layers produced by
    /// grouping several original layers (see `madpipe_dnn::coarsen`):
    /// the inputs of the interior layers stay resident until the
    /// grouped backward runs, but never cross a cut.
    pub internal_stored_bytes: u64,
}

impl Layer {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        forward_time: f64,
        backward_time: f64,
        weight_bytes: u64,
        activation_bytes: u64,
    ) -> Self {
        Self {
            name: name.into(),
            forward_time,
            backward_time,
            weight_bytes,
            activation_bytes,
            internal_stored_bytes: 0,
        }
    }

    /// Builder: set the internal stored bytes of a grouped layer.
    pub fn with_internal_stored(mut self, bytes: u64) -> Self {
        self.internal_stored_bytes = bytes;
        self
    }

    /// Total compute time of the layer (`u_{F_l} + u_{B_l}`).
    pub fn compute_time(&self) -> f64 {
        self.forward_time + self.backward_time
    }

    /// Memory footprint of hosting this layer's parameters: `3·W_l`
    /// (two weight versions plus one accumulated gradient, following the
    /// PipeDream-2BW convention adopted in §3 of the paper).
    pub fn weight_footprint(&self) -> u64 {
        3 * self.weight_bytes
    }

    /// True when all costs are finite and non-negative — the validity
    /// requirement enforced by [`crate::Chain::new`].
    pub fn is_well_formed(&self) -> bool {
        self.validate().is_ok()
    }

    /// Check every cost field, naming the first offending one — the
    /// descriptive form of [`Layer::is_well_formed`] used by
    /// [`crate::Chain::new`] so a bad profile (or a bad planning-service
    /// request) is rejected with a message instead of letting a NaN or
    /// infinity flow into the DP and the event heap.
    pub fn validate(&self) -> Result<(), String> {
        let check = |field: &str, v: f64| -> Result<(), String> {
            if !v.is_finite() {
                return Err(format!("{field} must be finite, got {v}"));
            }
            if v < 0.0 {
                return Err(format!("{field} must be non-negative, got {v}"));
            }
            Ok(())
        };
        check("forward_time (u_F)", self.forward_time)?;
        check("backward_time (u_B)", self.backward_time)?;
        Ok(())
    }
}

impl ToJson for Layer {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".into(), self.name.to_json()),
            ("forward_time".into(), self.forward_time.to_json()),
            ("backward_time".into(), self.backward_time.to_json()),
            ("weight_bytes".into(), self.weight_bytes.to_json()),
            ("activation_bytes".into(), self.activation_bytes.to_json()),
            (
                "internal_stored_bytes".into(),
                self.internal_stored_bytes.to_json(),
            ),
        ])
    }
}

impl FromJson for Layer {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            forward_time: v.field("forward_time")?.as_f64()?,
            backward_time: v.field("backward_time")?.as_f64()?,
            weight_bytes: v.field("weight_bytes")?.as_u64()?,
            activation_bytes: v.field("activation_bytes")?.as_u64()?,
            // Older profile files omit the field; it defaults to zero.
            internal_stored_bytes: match v.get("internal_stored_bytes") {
                Some(b) => b.as_u64()?,
                None => 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_sums_forward_and_backward() {
        let l = Layer::new("l", 1.5, 3.0, 10, 20);
        assert_eq!(l.compute_time(), 4.5);
    }

    #[test]
    fn weight_footprint_is_three_copies() {
        let l = Layer::new("l", 0.0, 0.0, 7, 0);
        assert_eq!(l.weight_footprint(), 21);
    }

    #[test]
    fn well_formedness_rejects_nan_and_negative() {
        let mut l = Layer::new("l", 1.0, 1.0, 0, 0);
        assert!(l.is_well_formed());
        l.forward_time = f64::NAN;
        assert!(!l.is_well_formed());
        l.forward_time = -1.0;
        assert!(!l.is_well_formed());
        l.forward_time = f64::INFINITY;
        assert!(!l.is_well_formed());
    }

    #[test]
    fn json_roundtrip_and_default_internal_bytes() {
        let l = Layer::new("l", 0.25, 0.5, 10, 20).with_internal_stored(7);
        let back = Layer::from_json(&Value::parse(&l.to_json().to_string_compact()).unwrap());
        assert_eq!(back, Ok(l));
        // `internal_stored_bytes` may be absent in older files.
        let legacy = Value::parse(
            r#"{"name":"x","forward_time":1.0,"backward_time":2.0,
                "weight_bytes":3,"activation_bytes":4}"#,
        )
        .unwrap();
        assert_eq!(Layer::from_json(&legacy).unwrap().internal_stored_bytes, 0);
    }
}
