//! Optimal period search for contiguous allocations.
//!
//! For a fixed contiguous allocation, the 1F1B* pattern at period `T`
//! uses the least memory among all valid patterns of period `T`
//! (Proposition 1), and that memory usage is non-increasing in `T`
//! (larger periods make groups coarser). The smallest feasible period is
//! therefore found by searching the *breakpoints* of the group structure:
//! group formation only compares `T` against sums of consecutive unit
//! loads, so the optimum is either the load lower bound or one of the
//! `O(N²)` window sums.

use madpipe_model::{Allocation, Chain, Platform, StagePolicy, UnitSequence};

use crate::check::{check_pattern, PatternReport, ScheduleError};
use crate::one_f1b::one_f1b_star;
use crate::pattern::Pattern;

/// Result of the optimal-period search.
#[derive(Debug, Clone)]
pub struct BestPeriod {
    /// The smallest feasible period.
    pub period: f64,
    /// The 1F1B* pattern realizing it.
    pub pattern: Pattern,
    /// Exact check report (memory peaks, live batches, pipeline depth).
    pub report: PatternReport,
}

/// Find the smallest period at which the contiguous allocation `alloc`
/// admits a valid (memory-feasible) periodic pattern, and build it.
///
/// Returns the [`ScheduleError`] of the most relaxed attempt (one live
/// batch everywhere) when the allocation cannot fit in memory at any
/// period.
pub fn best_contiguous_period(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
) -> Result<BestPeriod, ScheduleError> {
    let policies = vec![StagePolicy::default(); alloc.stages().len()];
    best_contiguous_period_with(chain, platform, alloc, &policies)
}

/// Policy-aware variant of [`best_contiguous_period`]: stage units carry
/// `policies` (recompute extends backward durations; memory checks use
/// the per-policy static/live bytes).
pub fn best_contiguous_period_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
) -> Result<BestPeriod, ScheduleError> {
    debug_assert!(
        alloc.is_contiguous(),
        "1F1B* requires a contiguous allocation"
    );
    let seq = UnitSequence::from_allocation_with(chain, platform, alloc, policies);

    let t_lo = seq.max_unit_load();
    let candidates = window_sums(&seq, t_lo);

    let try_period = |t: f64| -> Result<(Pattern, PatternReport), ScheduleError> {
        let pattern = one_f1b_star(&seq, t);
        let report = check_pattern(chain, platform, alloc, &seq, &pattern)?;
        Ok((pattern, report))
    };

    // The most relaxed candidate: a single group, one live batch per
    // stage. If even this fails, the allocation is infeasible.
    let t_hi = *candidates.last().expect("at least the load bound");
    try_period(t_hi)?;

    // Feasibility is monotone in T: binary search the first feasible
    // candidate.
    let mut lo = 0usize; // may be infeasible
    let mut hi = candidates.len() - 1; // feasible
    if try_period(candidates[0]).is_ok() {
        hi = 0;
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if try_period(candidates[mid]).is_ok() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // `hi` is the first feasible index unless index 0 was already feasible.
    let t_best = candidates[hi];
    let (pattern, report) = try_period(t_best).expect("feasible by search invariant");
    Ok(BestPeriod {
        period: t_best,
        pattern,
        report,
    })
}

/// Sorted, deduplicated candidate periods: the load lower bound plus
/// every sum of consecutive unit loads that is at least the bound (group
/// formation breakpoints), ending at the total load (single group).
fn window_sums(seq: &UnitSequence, t_lo: f64) -> Vec<f64> {
    let loads: Vec<f64> = seq.units().iter().map(|u| u.total_time()).collect();
    let mut out = vec![t_lo];
    for i in 0..loads.len() {
        let mut acc = 0.0;
        for load in &loads[i..] {
            acc += load;
            if acc >= t_lo {
                out.push(acc);
            }
        }
    }
    out.sort_by(f64::total_cmp);
    out.dedup_by(|a, b| madpipe_model::util::feq(*a, *b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Layer, Partition};

    fn setup(memory: u64) -> (Chain, Platform, Allocation) {
        // Two stages of load 4 each, comm load 2, activations of 100 B.
        let chain = Chain::new(
            "t",
            100,
            vec![
                Layer::new("a", 2.0, 2.0, 0, 100),
                Layer::new("b", 2.0, 2.0, 0, 100),
            ],
        )
        .unwrap();
        let platform = Platform::new(2, memory, 100.0).unwrap();
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        (chain, platform, alloc)
    }

    #[test]
    fn unconstrained_memory_reaches_the_load_bound() {
        let (chain, platform, alloc) = setup(1 << 40);
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        assert!((best.period - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tight_memory_forces_a_larger_period() {
        // Static on gpu0: 2·100 buffer = 200; ā(stage0) = 100.
        // At T = 4 (load bound) stage0 is in group 2 → 200 + 2·100 = 400.
        // Memory 350 only allows one live batch → need a single group:
        // total load = 4 + 2 + 4 = 10.
        let (chain, _p, alloc) = setup(1);
        let platform = Platform::new(2, 350, 100.0).unwrap();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        assert!(best.period > 4.0 + 1e-9);
        assert!(best.report.unit_live_batches[0] <= 1);
        // And the found period is exactly a window sum making stage0
        // share a group with everything after it: 4 + 2 + 4 = 10.
        assert!((best.period - 10.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_memory_reports_error() {
        let (chain, _p, alloc) = setup(1);
        let platform = Platform::new(2, 250, 100.0).unwrap(); // < static+ā
        let err = best_contiguous_period(&chain, &platform, &alloc).unwrap_err();
        assert!(matches!(err, ScheduleError::MemoryExceeded { .. }));
    }

    #[test]
    fn intermediate_memory_picks_an_intermediate_breakpoint() {
        // Memory 450 allows 2 live batches on stage0 (200 + 2·100 = 400)
        // but not 3; at T = 4, how many groups? units loads 4,2,4:
        // back: 4 → g1; 2: 6 > 4 → g2; 4: g3 → stage0 stores 3 → 500 > 450.
        // T = 6: g(4)=1, +2 = 6 ≤ 6 g1, +4 > 6 → g2 → stage0 stores 2 → 400 ≤ 450.
        let (chain, _p, alloc) = setup(1);
        let platform = Platform::new(2, 450, 100.0).unwrap();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        assert!((best.period - 6.0).abs() < 1e-9);
        assert_eq!(best.report.unit_live_batches[0], 2);
    }

    #[test]
    fn monotone_feasibility_assumption_holds_exhaustively() {
        // Sanity net for the binary search: on this instance, scan all
        // candidates linearly and confirm feasibility is monotone.
        let (chain, _p, alloc) = setup(1);
        let platform = Platform::new(2, 450, 100.0).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let candidates = window_sums(&seq, seq.max_unit_load());
        let mut seen_feasible = false;
        for &t in &candidates {
            let ok = check_pattern(&chain, &platform, &alloc, &seq, &one_f1b_star(&seq, t)).is_ok();
            if seen_feasible {
                assert!(ok, "feasibility must be monotone in T");
            }
            seen_feasible |= ok;
        }
        assert!(seen_feasible);
    }
}
