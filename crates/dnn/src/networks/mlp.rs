//! A wide MLP stack: the weight-dominated memory regime.
//!
//! Not part of the paper's evaluation. The four CNNs all store far more
//! activation bytes than weight bytes (ResNet-50 at batch 8 is ~40:1),
//! which means the weight-versioning axis (`3·W` vs 2BW's `2·W`) can
//! never move their feasibility boundary by a whole grid step. Large
//! language models sit at the opposite end — PipeDream-2BW's motivating
//! workloads are stacks of wide matmuls whose memory is almost entirely
//! weight versions — and this network reproduces that regime with the
//! ops the profiler already has: a global pool into a stack of
//! 8192-wide fully connected blocks (≈268 MB of fp32 parameters each,
//! ≈256 KB of activations at batch 8). It is the tight-memory fixture
//! behind the bench grid's policy flip cell: with three weight versions
//! a 2 GB GPU cannot hold three blocks, with two it can.

use crate::block::Block;
use crate::ops::Op;

use super::NetworkSpec;

/// Hidden width of every fully connected block.
const WIDTH: u64 = 8192;

/// `mlp12`: global pool, an embedding into the hidden width, twelve
/// fully connected blocks, and a 1000-way head — ≈3.2 GB of parameters
/// against a few hundred KB of activations per batch.
pub fn mlp12() -> NetworkSpec {
    let mut blocks = vec![
        Block::seq("pool", vec![Op::GlobalAvgPool]),
        Block::seq(
            "embed",
            vec![
                Op::Linear {
                    out_features: WIDTH,
                },
                Op::Relu,
            ],
        ),
    ];
    for i in 0..12 {
        blocks.push(Block::seq(
            format!("fc{i}"),
            vec![
                Op::Linear {
                    out_features: WIDTH,
                },
                Op::Relu,
            ],
        ));
    }
    blocks.push(Block::seq("head", vec![Op::Linear { out_features: 1000 }]));
    NetworkSpec {
        name: "mlp12".to_string(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuModel;

    #[test]
    fn weights_dominate_activations() {
        let chain = mlp12().profile(8, 1000, &GpuModel::default()).unwrap();
        assert_eq!(chain.len(), 15);
        let weights = chain.weight_bytes(0..chain.len());
        // 12 full-width matmuls at 8192² fp32 parameters each (the
        // embed's input is the tiny pooled feature vector, so only the
        // fc blocks are full 8192 × 8192).
        assert!(weights > 12 * (WIDTH * WIDTH * 4), "weights = {weights}");
        // Stored activations past the pool are tiny: the whole chain
        // minus the image-sized pool input stays under one weight block.
        let acts = chain.stored_activation_bytes(1..chain.len());
        assert!(acts < WIDTH * WIDTH * 4, "activations = {acts}");
        // The classifier head outputs batch × 1000 logits like the CNNs.
        assert_eq!(chain.layer(chain.len() - 1).activation_bytes, 8 * 1000 * 4);
    }
}
