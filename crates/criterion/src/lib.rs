//! Workspace-internal benchmarking shim.
//!
//! The build environment has no registry access, so the real `criterion`
//! crate cannot be vendored. This shim keeps the bench sources compiling
//! unchanged and produces honest wall-clock numbers (min / median / mean
//! over adaptively chosen samples), without the statistical machinery.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level driver handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("f", "param")` renders as `f/param`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: Duration::from_millis(3000),
            max_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            eprintln!("  {}/{}: no samples", self.name, id.id);
            return;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        eprintln!(
            "  {}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            id.id,
            min,
            median,
            mean,
            samples.len()
        );
    }

    /// End the group (report output is already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// Collects timed samples of one routine.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly: one warm-up call, then samples until
    /// either the group's sample cap or a ~3 s time budget is reached.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, also primes caches/allocations
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 2); // warm-up + at least one sample
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "x").id, "f/x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
