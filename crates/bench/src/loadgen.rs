//! Closed-loop load generator for `madpipe serve`.
//!
//! N connections each fire M requests back-to-back (send, wait for the
//! response, send the next) over a deterministic pool of mixed
//! instances, and the report aggregates p50/p99 latency, error counts
//! and the cache hit rate observed in the responses. A closed loop
//! measures the service time distribution without coordinated omission
//! — every request's latency is recorded, including the ones that queue.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use madpipe_json::{ToJson, Value};
use madpipe_model::Platform;

const GIB: u64 = 1 << 30;

/// Load profile.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4835`.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_conn: usize,
    /// Distinct instances in the request mix.
    pub instances: usize,
    /// Seed of the instance pool.
    pub seed: u64,
    /// Per-response read timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4835".into(),
            connections: 4,
            requests_per_conn: 16,
            instances: 4,
            seed: 42,
            timeout: Duration::from_secs(60),
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    pub total: usize,
    pub ok: usize,
    pub errors: usize,
    pub cached: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub elapsed_seconds: f64,
}

impl LoadgenReport {
    /// Fraction of successful responses served from the plan cache.
    pub fn hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cached as f64 / self.ok as f64
        }
    }

    /// Completed requests per second over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.total as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests  : {} total, {} ok, {} errors",
            self.total, self.ok, self.errors
        )?;
        writeln!(
            f,
            "latency   : p50 {:.2} ms, p99 {:.2} ms",
            self.p50_ms, self.p99_ms
        )?;
        writeln!(
            f,
            "cache     : {} cached responses ({:.0}% hit rate)",
            self.cached,
            100.0 * self.hit_rate()
        )?;
        write!(
            f,
            "throughput: {:.1} req/s over {:.2} s",
            self.throughput(),
            self.elapsed_seconds
        )
    }
}

/// Deterministic pool of `n` request lines: small random chains (same
/// generator as the experiment harness) on a fixed 4-GPU platform,
/// sized so one plan takes milliseconds, not seconds.
pub fn request_lines(n: usize, seed: u64) -> Vec<String> {
    let platform = Platform::new(4, 2 * GIB, 12.0 * GIB as f64).expect("static platform");
    (0..n.max(1) as u64)
        .map(|i| {
            let cfg = madpipe_dnn::RandomChainConfig {
                layers: 8,
                forward_range: (0.5e-3, 5e-3),
                weight_range: (1 << 16, 1 << 20),
                activation_range: (1 << 20, 8 << 20),
                cnn_profile: false,
            };
            let chain = madpipe_dnn::random_chain(&cfg, seed.wrapping_add(i));
            Value::Object(vec![
                ("cmd".into(), Value::Str("plan".into())),
                ("chain".into(), chain.to_json()),
                (
                    "platform".into(),
                    Value::Object(vec![
                        ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                        ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                        ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
                    ]),
                ),
            ])
            .to_string_compact()
        })
        .collect()
}

/// One request/response exchange on an open connection.
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<Value, String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    if response.is_empty() {
        return Err("server closed the connection".into());
    }
    Value::parse(response.trim()).map_err(|e| format!("bad response JSON: {e}"))
}

/// Per-connection outcome: (latencies in ms, ok count, cached count).
type ConnStats = Result<(Vec<f64>, usize, usize), String>;

/// Run the closed loop and aggregate the report.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let lines = request_lines(cfg.instances, cfg.seed);
    let started = Instant::now();
    let per_conn: Vec<ConnStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|conn| {
                let lines = &lines;
                scope.spawn(move || -> ConnStats {
                    let mut stream =
                        TcpStream::connect(&cfg.addr).map_err(|e| format!("connect: {e}"))?;
                    // A closed loop of one-line exchanges would spend
                    // its time in Nagle/delayed-ACK stalls otherwise.
                    stream.set_nodelay(true).map_err(|e| e.to_string())?;
                    stream
                        .set_read_timeout(Some(cfg.timeout))
                        .map_err(|e| e.to_string())?;
                    let mut reader =
                        BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
                    let mut latencies = Vec::with_capacity(cfg.requests_per_conn);
                    let (mut ok, mut cached) = (0usize, 0usize);
                    for i in 0..cfg.requests_per_conn {
                        let line = &lines[(conn + i) % lines.len()];
                        let t0 = Instant::now();
                        let v = exchange(&mut stream, &mut reader, line)?;
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        if v.get("ok") == Some(&Value::Bool(true)) {
                            ok += 1;
                            if v.get("cached") == Some(&Value::Bool(true)) {
                                cached += 1;
                            }
                        }
                    }
                    Ok((latencies, ok, cached))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let (mut ok, mut cached, mut total) = (0usize, 0usize, 0usize);
    for outcome in per_conn {
        let (lat, o, c) = outcome?;
        total += lat.len();
        latencies.extend(lat);
        ok += o;
        cached += c;
    }
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    Ok(LoadgenReport {
        total,
        ok,
        errors: total - ok,
        cached,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        elapsed_seconds,
    })
}

/// Fetch the server's Prometheus dump via the `metrics` command.
pub fn fetch_metrics(addr: &str, timeout: Duration) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let v = exchange(&mut stream, &mut reader, r#"{"cmd":"metrics"}"#)?;
    v.field("metrics")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .map_err(|e| format!("metrics response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_pool_is_deterministic_and_parseable() {
        let a = request_lines(3, 7);
        let b = request_lines(3, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1], "instances differ");
        for line in &a {
            let v = Value::parse(line).unwrap();
            assert_eq!(v.field("cmd").unwrap().as_str(), Ok("plan"));
            assert!(v.get("chain").is_some() && v.get("platform").is_some());
        }
    }

    #[test]
    fn report_rates() {
        let r = LoadgenReport {
            total: 10,
            ok: 8,
            errors: 2,
            cached: 4,
            p50_ms: 1.0,
            p99_ms: 2.0,
            elapsed_seconds: 2.0,
        };
        assert_eq!(r.hit_rate(), 0.5);
        assert_eq!(r.throughput(), 5.0);
        let text = r.to_string();
        assert!(text.contains("p50 1.00 ms"), "{text}");
        assert!(text.contains("50% hit rate"), "{text}");
    }
}
