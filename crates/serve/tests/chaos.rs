//! Chaos drill: a live daemon driven through a fixed-seed fault
//! schedule — worker panics, killed connections, partial writes, and
//! mid-stream GPU-loss replans — asserting the supervision invariants:
//!
//! * the daemon never dies: every event is followed by a successfully
//!   served request;
//! * every panic is isolated into a structured `internal` error and the
//!   dead worker is respawned back to full strength;
//! * every plan served under chaos is f64-bit-identical to an offline
//!   `madpipe plan` of the same (possibly degraded) instance;
//! * the drill ends in a clean drain.
//!
//! The schedule comes from `madpipe_sim::ChaosStream` with a fixed
//! seed, so a failure here replays identically everywhere (CI runs this
//! as the `chaos-smoke` job).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_json::{FromJson, ToJson, Value};
use madpipe_model::{Chain, Layer, Platform, PlatformFault};
use madpipe_serve::{ServeConfig, Server};
use madpipe_sim::{ChaosEvent, ChaosStream};

/// The drill's seed. Changing it changes which faults land where, but
/// every invariant below must hold for any seed.
const SEED: u64 = 0x00AD_51BE;
const EVENTS: usize = 24;
/// The chain names that trigger a worker panic (must match the server's
/// `panic_marker` below).
const MARKER: &str = "poisoned";

fn platform() -> Platform {
    Platform::gb(4, 2, 12.0).unwrap()
}

/// Deterministic instance family, same shape as the integration tests.
fn chain(seed: u64) -> Chain {
    let layers = (0..6)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (4 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    Chain::new(format!("net{seed}"), 1 << 20, layers).unwrap()
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

fn replan_line(chain: &Chain, platform: &Platform, lost: usize) -> String {
    plan_line(chain, platform).replacen(
        r#""cmd":"plan""#,
        &format!(r#""cmd":"replan","fault":{{"kind":"gpu_loss","count":{lost}}}"#),
        1,
    )
}

fn roundtrip(addr: std::net::SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    assert!(!response.is_empty(), "daemon must answer, not hang up");
    Value::parse(response.trim()).expect("response is JSON")
}

/// Offline ground truth, memoized per (chain seed, surviving GPUs):
/// the f64 bits of the period `madpipe plan` computes for the instance.
struct Oracle {
    memo: HashMap<(u64, usize), u64>,
}

impl Oracle {
    fn period_bits(&mut self, chain_seed: u64, n_gpus: usize) -> u64 {
        *self.memo.entry((chain_seed, n_gpus)).or_insert_with(|| {
            let p = platform();
            let survivor = Platform::new(n_gpus, p.memory_bytes, p.bandwidth).unwrap();
            madpipe_plan(&chain(chain_seed), &survivor, &PlannerConfig::default())
                .expect("offline plan")
                .period()
                .to_bits()
        })
    }
}

fn served_period_bits(v: &Value) -> u64 {
    v.field("plan")
        .unwrap()
        .field("period")
        .unwrap()
        .as_f64()
        .unwrap()
        .to_bits()
}

#[test]
fn chaos_drill_never_kills_the_daemon_and_every_plan_is_bit_identical() {
    let dump_path = std::env::temp_dir()
        .join(format!("madpipe-chaos-flight-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&dump_path);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        panic_marker: Some(MARKER.into()),
        flight_dump: Some(dump_path.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let p = platform();
    let mut oracle = Oracle {
        memo: HashMap::new(),
    };

    // Losing at most 2 of 4 GPUs keeps the survivor plannable.
    let schedule = ChaosStream::events(SEED, EVENTS, 2);
    let mut panics_injected = 0u64;
    for (step, event) in schedule.iter().enumerate() {
        let chain_seed = (step % 3) as u64; // rotate a small instance pool
        let c = chain(chain_seed);
        match *event {
            ChaosEvent::WorkerPanic => {
                panics_injected += 1;
                // A unique marker name per injection: never cached, so
                // every one of these reaches (and kills) a worker.
                let mut doomed = chain(chain_seed);
                doomed = Chain::new(
                    format!("{MARKER}-{step}"),
                    1 << 20,
                    doomed.layers().to_vec(),
                )
                .unwrap();
                let v = roundtrip(addr, &plan_line(&doomed, &p));
                assert_eq!(v.field("ok").unwrap(), &Value::Bool(false), "step {step}");
                assert_eq!(
                    v.field("error").unwrap().field("kind").unwrap().as_str(),
                    Ok("internal"),
                    "a panic must surface as a structured internal error"
                );
            }
            ChaosEvent::KillConnection => {
                // Send a valid request and slam the connection shut
                // without reading; the worker's write lands on a dead
                // socket and must bother nobody.
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(plan_line(&c, &p).as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                drop(stream);
            }
            ChaosEvent::PartialWrite => {
                // The request dribbles in over several writes; the
                // server must reassemble the line and answer normally.
                let line = plan_line(&c, &p);
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let bytes = line.as_bytes();
                for chunk in bytes.chunks(bytes.len() / 3 + 1) {
                    stream.write_all(chunk).unwrap();
                    stream.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                }
                stream.write_all(b"\n").unwrap();
                let mut reader = BufReader::new(stream);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                let v = Value::parse(response.trim()).unwrap();
                assert_eq!(v.field("ok").unwrap(), &Value::Bool(true), "step {step}");
                assert_eq!(
                    served_period_bits(&v),
                    oracle.period_bits(chain_seed, p.n_gpus),
                    "step {step}: partial-write plan must be bit-identical"
                );
            }
            ChaosEvent::GpuLossReplan { lost } => {
                let v = roundtrip(addr, &replan_line(&c, &p, lost));
                assert_eq!(
                    v.field("ok").unwrap(),
                    &Value::Bool(true),
                    "step {step}: {}",
                    v.to_string_compact()
                );
                assert_eq!(
                    served_period_bits(&v),
                    oracle.period_bits(chain_seed, p.n_gpus - lost),
                    "step {step}: degraded plan must be bit-identical to \
                     offline planning on the survivor"
                );
                let fault =
                    PlatformFault::from_json(v.field("replan").unwrap().field("fault").unwrap())
                        .unwrap();
                assert_eq!(fault, PlatformFault::GpuLoss { count: lost });
            }
        }

        // After *every* event the daemon serves an ordinary request,
        // bit-identical to offline planning — chaos never degrades
        // correctness, only availability of single responses.
        let v = roundtrip(addr, &plan_line(&c, &p));
        assert_eq!(
            v.field("ok").unwrap(),
            &Value::Bool(true),
            "step {step} ({}): daemon must keep serving",
            event.kind()
        );
        assert_eq!(
            served_period_bits(&v),
            oracle.period_bits(chain_seed, p.n_gpus),
            "step {step}: served plan must be bit-identical"
        );
    }
    assert!(panics_injected > 0, "the schedule must include panics");

    // The supervisor restores the pool to full strength (give it a few
    // poll intervals after the last kill).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = roundtrip(addr, r#"{"cmd":"health"}"#);
        let h = v.field("health").unwrap();
        // Panics are counted synchronously, before the reply reaches the
        // client; respawns lag by a supervisor poll interval.
        assert_eq!(h.field("panics").unwrap(), &Value::UInt(panics_injected));
        if h.field("workers_alive").unwrap() == &Value::UInt(2)
            && h.field("respawns").unwrap() == &Value::UInt(panics_injected)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "workers not respawned in time: {}",
            v.to_string_compact()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        server.registry().counter("serve.panics"),
        panics_injected,
        "every injected panic is counted"
    );

    // Clean drain ends the drill.
    let ack = roundtrip(addr, r#"{"cmd":"shutdown"}"#);
    assert_eq!(ack.field("draining").unwrap(), &Value::Bool(true));
    server.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after the drill"
    );

    // Post-mortem: every worker panic dumped the flight ring at the
    // panic site and the drain appended the rest, so the accumulated
    // artifact is non-empty, carries one `serve.panic` marker per
    // injected panic, and replays through the trace validator — every
    // recorded span's parent resolves, even for requests whose
    // connections chaos killed mid-flight.
    let dump = std::fs::read_to_string(&dump_path).expect("flight dump written on drain");
    assert!(!dump.trim().is_empty(), "flight dump must not be empty");
    let panic_markers = dump
        .lines()
        .filter(|l| l.contains(r#""name":"serve.panic""#))
        .count() as u64;
    assert_eq!(
        panic_markers, panics_injected,
        "one panic instant per injected panic"
    );
    let summary = madpipe_obs::validate::validate_trace_text(&dump)
        .expect("flight dump replays through validate-trace");
    assert!(summary.span_names.contains("serve.request"));
    assert!(summary.span_names.contains("serve.worker"));
    let _ = std::fs::remove_file(&dump_path);
}
