//! `madpipe-serve`: a concurrent planning service over newline-delimited
//! JSON.
//!
//! The daemon turns the library planner into a long-lived service: an
//! event-driven connection [`reactor`] (one thread, nonblocking sockets,
//! readiness polling, pipelined requests answered in order), a bounded
//! worker pool whose workers each keep a warm
//! [`madpipe_core::ProbeSession`], and a sharded LRU cache keyed by the
//! *canonical* instance — key-sorted, unit-normalized JSON — so the same
//! problem asked twice (in any field order, in bytes or GiB) is answered
//! from memory, bit-identical to a cold `madpipe plan`.
//!
//! The daemon is supervised: worker panics are isolated per request
//! (structured `internal` error, `serve.panics` counter) and dead
//! workers are respawned; `{"cmd":"health"}` reports queue depth and
//! worker liveness, and `{"cmd":"replan"}` answers degraded-mode
//! replanning (GPU loss, memory reduction, link slowdown) through the
//! same cache and pool.
//!
//! Cluster mode scales the tier horizontally: N daemons gossip their
//! hottest cache entries to each other ([`gossip`]), and a
//! consistent-hash [`router`] keyed on the canonical instance string
//! routes each request to its owning daemon, fails over around dead
//! ones, and answers cluster-wide `health`/`metrics` rollups. Plans
//! gossip and route verbatim, so every served plan — warmed, routed or
//! direct — stays f64-bit-identical to offline planning.
//!
//! Every request is traceable end to end: a line carrying a `trace`
//! context field ([`protocol::TraceContext`]) gets per-hop spans —
//! `router.forward`, `serve.request`, `serve.queue.wait`,
//! `serve.worker`, `serve.dp` — stamped into the always-on
//! [`madpipe_obs::flight`] ring, the responses echo `trace`/`span` ids
//! back, and `madpipe trace-merge` stitches the per-process dumps into
//! one cluster-wide Chrome trace.
//!
//! See [`protocol`] for the wire format, [`cache`] for the keying and
//! eviction rules, [`server`] for the worker pool, supervision and
//! drain story, and [`reactor`] for the connection state machines.

pub mod cache;
pub mod gossip;
pub mod journal;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod server;

pub use cache::PlanCache;
pub use journal::{Journal, ReplayStats};
pub use protocol::{
    attach_trace, canonical_instance, inject_context, parse_line, parse_request, plan_to_json,
    PlanRequest, ReplanRequest, Request, ServeError, TraceContext, MAX_GOSSIP_ENTRIES,
};
pub use router::{Ring, Router, RouterConfig};
pub use server::{install_signal_handlers, term_requested, ServeConfig, Server};
