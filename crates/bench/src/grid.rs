//! The paper's experiment grid and single-cell evaluation.

use std::time::Instant;

use madpipe_core::{certify_plan, compare, CertifyConfig, PlannerConfig, PlannerStats};
use madpipe_dnn::{networks, GpuModel};
use madpipe_model::{Chain, Platform, PolicySpec};

/// Grid of instances to evaluate.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Network names (resolved through [`networks::by_name`]).
    pub networks: Vec<String>,
    /// GPU counts.
    pub p_values: Vec<usize>,
    /// Memory limits in GB.
    pub m_values: Vec<u64>,
    /// Bandwidths in GB/s.
    pub beta_values: Vec<f64>,
    /// Batch size (paper: 8).
    pub batch: u64,
    /// Square image size (paper: 1000).
    pub image_size: u64,
}

impl GridConfig {
    /// The paper's full grid: all four networks, `P ∈ 2..=8`,
    /// `M ∈ 3..=16` GB, `β ∈ {12, 24}` GB/s.
    pub fn full() -> Self {
        Self {
            networks: ["resnet50", "resnet101", "inception_v3", "densenet121"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            p_values: (2..=8).collect(),
            m_values: (3..=16).collect(),
            beta_values: vec![12.0, 24.0],
            batch: 8,
            image_size: 1000,
        }
    }

    /// A reduced grid with the same coverage pattern, sized for a laptop
    /// run: `P ∈ {2, 4, 8}`, `M ∈ {3, 4, 6, 8, 10, 12, 16}`.
    pub fn quick() -> Self {
        Self {
            p_values: vec![2, 4, 8],
            m_values: vec![3, 4, 6, 8, 10, 12, 16],
            ..Self::full()
        }
    }

    /// All cells of the grid.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for net in &self.networks {
            for &p in &self.p_values {
                for &beta in &self.beta_values {
                    for &m in &self.m_values {
                        out.push(Cell {
                            network: net.clone(),
                            p,
                            m_gb: m,
                            beta_gb: beta,
                            policy: PolicySpec::default(),
                        });
                    }
                }
            }
        }
        out
    }
}

/// One `(network, P, M, β, policy)` instance. The policy axis defaults
/// to the paper's model (store activations, three weight versions);
/// non-default cells evaluate the same platform point under a recompute
/// / weight-versioning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub network: String,
    pub p: usize,
    pub m_gb: u64,
    pub beta_gb: f64,
    pub policy: PolicySpec,
}

impl Cell {
    /// Human-readable cell identity (policy suffix only when set).
    pub fn describe(&self) -> String {
        let mut s = format!(
            "{} P={} M={}GB beta={}GB/s",
            self.network, self.p, self.m_gb, self.beta_gb
        );
        if !self.policy.is_default() {
            s.push_str(&format!(
                " policy={}/{}",
                self.policy.recompute.as_str(),
                self.policy.weights.as_str()
            ));
        }
        s
    }
}

/// Both planners' results on one cell. Periods are seconds per
/// mini-batch; `None` means the planner failed (memory-infeasible).
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    pub cell: Cell,
    /// Sequential time `U(1,L)` of the network (speedup baseline).
    pub sequential: f64,
    /// MadPipe phase-1 estimate (dashed line).
    pub madpipe_estimate: Option<f64>,
    /// MadPipe achieved valid period (solid line).
    pub madpipe: Option<f64>,
    /// PipeDream DP prediction (dashed line).
    pub pipedream_estimate: Option<f64>,
    /// PipeDream + 1F1B* achieved valid period (solid line).
    pub pipedream: Option<f64>,
    /// Wall-clock seconds spent planning (both planners).
    pub planning_seconds: f64,
    /// Full MadPipe planner instrumentation for this cell — DP counters,
    /// probe timeline, phase clocks and the frozen metrics registry
    /// (certification already folded in via `Certificate::record`).
    pub stats: PlannerStats,
    /// Differential certification verdict of the MadPipe plan (`None`
    /// when MadPipe failed to plan).
    pub certified: Option<bool>,
    /// Jitter robustness margin of the certified plan.
    pub jitter_margin: Option<f64>,
}

impl CellResult {
    /// PipeDream period / MadPipe period (> 1 ⇒ MadPipe wins).
    pub fn ratio(&self) -> Option<f64> {
        match (self.madpipe, self.pipedream) {
            (Some(m), Some(p)) => Some(p / m),
            _ => None,
        }
    }

    /// DP solves that actually ran inside MadPipe's probe session.
    pub fn dp_solves(&self) -> usize {
        self.stats.dp.solves
    }

    /// Probes answered without a solve (outcome cache + monotone bound).
    pub fn dp_probes_saved(&self) -> usize {
        self.stats.dp.probes_saved()
    }

    /// Memoized DP states created across this cell's solves.
    pub fn dp_states(&self) -> u64 {
        self.stats.dp.states_created
    }

    /// Speedup of MadPipe over sequential execution.
    pub fn madpipe_speedup(&self) -> Option<f64> {
        self.madpipe.map(|m| self.sequential / m)
    }

    /// Speedup of PipeDream over sequential execution.
    pub fn pipedream_speedup(&self) -> Option<f64> {
        self.pipedream.map(|p| self.sequential / p)
    }
}

/// Profile the four paper networks once (batch/image size from `cfg`).
pub fn paper_chains(cfg: &GridConfig) -> Vec<Chain> {
    chains_for(&cfg.networks, cfg.batch, cfg.image_size)
}

/// Profile each named network once at the given batch/image size.
pub fn chains_for(names: &[String], batch: u64, image_size: u64) -> Vec<Chain> {
    let gpu = GpuModel::default();
    names
        .iter()
        .map(|name| {
            networks::by_name(name)
                .unwrap_or_else(|| panic!("unknown network {name}"))
                .profile(batch, image_size, &gpu)
                .expect("bench networks profile cleanly")
        })
        .collect()
}

/// Evaluate one cell (the chain must match `cell.network`). The MadPipe
/// plan, when there is one, is differentially certified with a cheap
/// [`CertifyConfig::quick`] profile; the verdict and the jitter margin
/// land in the result's certification columns.
pub fn run_cell(chain: &Chain, cell: &Cell, planner: &PlannerConfig) -> CellResult {
    debug_assert_eq!(chain.name(), cell.network);
    let platform = Platform::gb(cell.p, cell.m_gb, cell.beta_gb).expect("valid grid platform");
    // The cell's policy axis overrides the shared planner config; a
    // default-policy cell reproduces the paper's planner bit for bit.
    let planner = PlannerConfig {
        policy: cell.policy,
        ..*planner
    };
    let planner = &planner;
    let start = Instant::now();
    let mut cmp = compare(chain, &platform, planner);
    let planning_seconds = start.elapsed().as_secs_f64();
    let cert = cmp
        .madpipe
        .as_ref()
        .ok()
        .map(|m| certify_plan(chain, &platform, m, &CertifyConfig::quick()));
    if let Some(c) = &cert {
        c.record(&mut cmp.stats);
    }
    CellResult {
        cell: cell.clone(),
        sequential: chain.total_compute_time(),
        madpipe_estimate: cmp.madpipe.as_ref().ok().map(|m| m.phase1.period),
        madpipe: cmp.madpipe.as_ref().ok().map(|m| m.period()),
        pipedream_estimate: cmp
            .pipedream
            .as_ref()
            .ok()
            .map(|p| p.outcome.predicted_period),
        pipedream: cmp.pipedream.as_ref().ok().map(|p| p.period()),
        planning_seconds,
        stats: cmp.stats,
        certified: cert.as_ref().map(|c| c.passed()),
        jitter_margin: cert.as_ref().map(|c| c.jitter_margin),
    }
}

/// Planner stats with just the DP counters set, for figure-module tests.
#[cfg(test)]
pub(crate) fn test_stats(solves: usize, probes_saved: usize, states: u64) -> PlannerStats {
    PlannerStats {
        dp: madpipe_core::DpStats {
            solves,
            outcome_hits: probes_saved,
            states_created: states,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Geometric mean helper (ignores `None`s; `None` when nothing remains).
pub fn geometric_mean(values: impl IntoIterator<Item = Option<f64>>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values.into_iter().flatten() {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_has_the_paper_dimensions() {
        let g = GridConfig::full();
        assert_eq!(g.cells().len(), 4 * 7 * 14 * 2);
    }

    #[test]
    fn quick_grid_is_a_subset_pattern() {
        let g = GridConfig::quick();
        assert_eq!(g.cells().len(), 4 * 3 * 7 * 2);
        let full = GridConfig::full();
        for p in &g.p_values {
            assert!(full.p_values.contains(p));
        }
        for m in &g.m_values {
            assert!(full.m_values.contains(m));
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean([Some(4.0), Some(1.0)]), Some(2.0));
        assert_eq!(geometric_mean([None, None]), None);
        let g = geometric_mean([Some(2.0), None, Some(8.0)]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn run_cell_on_a_small_instance() {
        let cfg = GridConfig {
            networks: vec!["resnet50".into()],
            p_values: vec![2],
            m_values: vec![8],
            beta_values: vec![12.0],
            batch: 1,
            image_size: 100,
        };
        let chains = paper_chains(&cfg);
        let cell = &cfg.cells()[0];
        let planner = PlannerConfig {
            algorithm1: madpipe_core::Algorithm1Config {
                iterations: 4,
                discretization: madpipe_core::Discretization::coarse(),
                use_special: true,
            },
            refine_probes: 0,
            ..PlannerConfig::default()
        };
        let r = run_cell(&chains[0], cell, &planner);
        assert!(r.sequential > 0.0);
        assert!(r.madpipe.is_some());
        assert!(r.pipedream.is_some());
        assert!(r.ratio().unwrap() > 0.5);
        assert!(r.dp_solves() > 0);
        assert!(r.dp_states() > 0);
        assert_eq!(r.stats.certifications_passed, 1);
        assert!(r.stats.certify_seconds > 0.0);
        assert!(r.madpipe.unwrap() + 1e-12 >= r.sequential / 2.0 * 0.99);
        assert_eq!(r.certified, Some(true), "grid plans must certify");
        assert!(r.jitter_margin.unwrap() > 0.0);
    }
}
