//! MadPipe-DP (§4.2.2): the dynamic program that builds a non-contiguous
//! allocation with one special processor.
//!
//! `T(l, p, t_P, m_P, V)` is the smallest period of an allocation of the
//! first `l` layers on `p` *normal* processors (one stage each) and the
//! single *special* processor (any number of stages), where
//!
//! * `V` lower-bounds the delay between the end of `F_l` and the start of
//!   the matching `B_l` (propagated with the `⊕` operator as stages and
//!   communications are peeled off the back of the chain),
//! * the special processor has already been assigned stages amounting to
//!   compute load `t_P` and (under-estimated) memory `m_P`,
//! * a stage `[k, l)` placed on a *normal* processor must satisfy the
//!   exact 1F1B* memory bound `M(k, l, g)` with
//!   `g = ⌈(V + U(k,l)) / T̂⌉` live activations,
//! * the same stage placed on the *special* processor contributes
//!   `M(k, l, g−1)` (at least `g−1` copies are pinned at all times,
//!   Figure 5) — an intentional under-estimate corrected in phase 2.
//!
//! The three continuous coordinates are discretized (rounded up) on the
//! grids of [`crate::discrete`]; the recursion is memoized on grid
//! indices and the chosen split points are kept for reconstruction.


use madpipe_model::util::ceil_div;
use madpipe_model::{Allocation, Chain, Platform, Stage};

use crate::discrete::{Axis, Discretization};
use crate::fxhash::FxHashMap;
use crate::oplus::oplus;

/// Result of one MadPipe-DP run at a fixed target period `T̂`.
#[derive(Debug, Clone)]
pub struct DpOutcome {
    /// The period of the produced allocation (`∞` when the memory
    /// constraints cannot be met at this `T̂`).
    pub period: f64,
    /// The reconstructed allocation: the special processor is GPU 0,
    /// normal stages occupy GPUs `1..P`. `None` iff `period` is infinite.
    pub allocation: Option<Allocation>,
    /// Number of distinct memoized states.
    pub states: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// No feasible decomposition from this state.
    Infeasible,
    /// `l == 0`: nothing left to place.
    Done,
    /// Stage `[k, l)` on a normal processor.
    Normal(u16),
    /// Stage `[k, l)` on the special processor.
    Special(u16),
}

/// Packed state key: `l` (16b) | `p` (8b) | `it` (16b) | `im` (8b) | `iv` (16b).
type Key = u64;

#[inline]
fn pack(l: usize, p: usize, it: u16, im: u16, iv: u16) -> Key {
    debug_assert!(im < 256 && p < 256);
    (l as u64) << 48 | (p as u64) << 40 | (it as u64) << 24 | (im as u64) << 16 | iv as u64
}

struct Dp<'a> {
    chain: &'a Chain,
    platform: &'a Platform,
    t_hat: f64,
    use_special: bool,
    t_axis: Axis,
    m_axis: Axis,
    v_axis: Axis,
    memo: FxHashMap<Key, (f64, Choice)>,
}

impl Dp<'_> {
    fn solve(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        let key = pack(l, p, it, im, iv);
        if let Some(&(v, _)) = self.memo.get(&key) {
            return v;
        }
        if l == 0 {
            let v = self.t_axis.value(it);
            self.memo.insert(key, (v, Choice::Done));
            return v;
        }

        let t_val = self.t_axis.value(it);
        let m_val = self.m_axis.value(im);
        let v_val = self.v_axis.value(iv);
        let memory = self.platform.memory_bytes;

        let mut best = f64::INFINITY;
        let mut choice = Choice::Infeasible;

        for k in (0..l).rev() {
            let u = self.chain.compute_time(k..l);
            // Both options cost at least the stage load `u`, and `u` only
            // grows as the stage extends towards the front — once it
            // reaches the best period found at this state, no larger
            // stage can improve it (exact prune).
            if u >= best {
                break;
            }
            let g = ceil_div(v_val + u, self.t_hat).max(1);
            let cut = self.platform.cut_time(self.chain, k);
            let v_next = oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat);
            let iv_next = self.v_axis.index_up(v_next);

            // Memory cores (without boundary buffers), monotone as k
            // decreases — used for the early break below.
            let weights = 3 * self.chain.weight_bytes(k..l);
            let stored = self.chain.stored_activation_bytes(k..l);
            let normal_core = weights + g * stored;
            let special_core = m_val as u64 + weights + (g - 1) * stored;

            // Normal processor option.
            if p >= 1 {
                let mem = self.chain.stage_memory(k..l, g);
                if mem <= memory {
                    let sub = self.solve(k, p - 1, it, im, iv_next);
                    let t_n = u.max(cut).max(sub);
                    if t_n < best {
                        best = t_n;
                        choice = Choice::Normal(k as u16);
                    }
                }
            }

            // Special processor option.
            let stage_mem = self.chain.stage_memory(k..l, g.saturating_sub(1));
            let m_next = m_val + stage_mem as f64;
            let t_next = t_val + u;
            if self.use_special && !self.m_axis.overflows(m_next) && m_next <= memory as f64 {
                let it_next = self.t_axis.index_up(t_next);
                let im_next = self.m_axis.index_up(m_next);
                let sub = self.solve(k, p, it_next, im_next, iv_next);
                let t_s = self.t_axis.value(it_next).max(cut).max(sub);
                if t_s < best {
                    best = t_s;
                    choice = Choice::Special(k as u16);
                }
            }

            // Early break: both cores already exceed memory; growing the
            // stage (smaller k) only increases weights, activations and g.
            if normal_core > memory && (special_core > memory || !self.use_special) {
                break;
            }
        }

        self.memo.insert(key, (best, choice));
        best
    }

    /// Walk the memoized choices from the root and emit the allocation.
    fn reconstruct(&self, l0: usize, p0: usize) -> Option<Allocation> {
        let n_gpus = self.platform.n_gpus;
        let mut stages_rev: Vec<Stage> = Vec::new();
        let (mut l, mut p, mut it, mut im, mut iv) = (l0, p0, 0u16, 0u16, 0u16);
        let mut next_normal_gpu = n_gpus - 1; // count down; GPU 0 is special
        loop {
            let key = pack(l, p, it, im, iv);
            let &(_, choice) = self.memo.get(&key)?;
            match choice {
                Choice::Infeasible => return None,
                Choice::Done => break,
                Choice::Normal(k16) => {
                    let k = k16 as usize;
                    stages_rev.push(Stage {
                        layers: k..l,
                        gpu: next_normal_gpu,
                    });
                    next_normal_gpu = next_normal_gpu.saturating_sub(1);
                    let v_val = self.v_axis.value(iv);
                    let u = self.chain.compute_time(k..l);
                    let cut = self.platform.cut_time(self.chain, k);
                    iv = self
                        .v_axis
                        .index_up(oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat));
                    l = k;
                    p -= 1;
                }
                Choice::Special(k16) => {
                    let k = k16 as usize;
                    stages_rev.push(Stage {
                        layers: k..l,
                        gpu: 0,
                    });
                    let v_val = self.v_axis.value(iv);
                    let t_val = self.t_axis.value(it);
                    let m_val = self.m_axis.value(im);
                    let u = self.chain.compute_time(k..l);
                    let g = ceil_div(v_val + u, self.t_hat).max(1);
                    let cut = self.platform.cut_time(self.chain, k);
                    let stage_mem = self.chain.stage_memory(k..l, g.saturating_sub(1));
                    it = self.t_axis.index_up(t_val + u);
                    im = self.m_axis.index_up(m_val + stage_mem as f64);
                    iv = self
                        .v_axis
                        .index_up(oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat));
                    l = k;
                }
            }
        }
        stages_rev.reverse();
        Allocation::new(stages_rev, self.chain.len(), n_gpus).ok()
    }
}

/// Run MadPipe-DP at target period `t_hat` and reconstruct the resulting
/// allocation (special processor = GPU 0).
pub fn madpipe_dp(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
) -> DpOutcome {
    madpipe_dp_with(chain, platform, t_hat, disc, true)
}

/// [`madpipe_dp`] with the special processor optionally disabled: with
/// `use_special = false` the DP degenerates to a *memory-aware contiguous*
/// partitioner (every GPU gets one stage, exact 1F1B* memory estimates) —
/// the ablation isolating the contribution of non-contiguous allocations.
pub fn madpipe_dp_with(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
    use_special: bool,
) -> DpOutcome {
    assert!(t_hat > 0.0 && t_hat.is_finite(), "T̂ must be positive");
    let total_u = chain.total_compute_time();
    let v_max = total_u + platform.total_cut_time(chain);
    let mut dp = Dp {
        chain,
        platform,
        t_hat,
        use_special,
        t_axis: Axis::new(total_u, disc.t_points),
        m_axis: Axis::new(platform.memory_bytes as f64, disc.m_points),
        v_axis: Axis::new(v_max.max(t_hat), disc.v_points),
        memo: FxHashMap::default(),
    };
    let p_normal = if use_special {
        platform.n_gpus - 1
    } else {
        platform.n_gpus
    };
    let period = dp.solve(chain.len(), p_normal, 0, 0, 0);
    let allocation = if period.is_finite() {
        dp.reconstruct(chain.len(), p_normal)
    } else {
        None
    };
    DpOutcome {
        period,
        allocation,
        states: dp.memo.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    fn disc() -> Discretization {
        Discretization::default()
    }

    #[test]
    fn single_gpu_takes_everything_on_special() {
        let c = chain(&[(1.0, 1.0), (2.0, 2.0)], 10, 0);
        let platform = Platform::new(1, 1 << 30, 100.0).unwrap();
        let out = madpipe_dp(&c, &platform, 6.0, &disc());
        assert!((out.period - 6.0).abs() < 0.2);
        let alloc = out.allocation.unwrap();
        assert!(alloc.stages().iter().all(|s| s.gpu == 0));
    }

    #[test]
    fn balanced_chain_splits_across_gpus() {
        let c = chain(&[(1.0, 1.0); 8], 1, 0);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 4.0, &disc());
        // 16 compute over 4 GPUs → period ≈ 4 (comm negligible).
        assert!(out.period <= 4.3, "period {}", out.period);
        let alloc = out.allocation.unwrap();
        assert_eq!(alloc.n_gpus(), 4);
        // Every GPU busy ≈ 4.
        for g in 0..4 {
            assert!(alloc.gpu_compute_load(&c, g) <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn uses_the_special_gpu_for_imbalanced_chains() {
        // Loads 4, 8, 4 on 2 GPUs: only {0,2} vs {1} balances at 8.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 1, 0);
        let platform = Platform::new(2, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 8.0, &disc());
        assert!(out.period <= 8.4, "period {}", out.period);
        let alloc = out.allocation.unwrap();
        // layers 0 and 2 on the special GPU 0, layer 1 on a normal GPU.
        assert_eq!(alloc.stages()[0].gpu, 0);
        assert_eq!(alloc.stages()[2].gpu, 0);
        assert_ne!(alloc.stages()[1].gpu, 0);
    }

    #[test]
    fn memory_pressure_blocks_tight_targets() {
        // Huge activations: at small T̂ the first stage needs many copies.
        let c = chain(&[(1.0, 1.0); 6], 1 << 20, 0);
        let tight = Platform::new(3, 4 << 20, 1e9).unwrap();
        let small = madpipe_dp(&c, &tight, 4.0, &disc());
        let large = madpipe_dp(&c, &tight, 12.0, &disc());
        // Larger targets relax memory → period cannot get worse.
        if small.period.is_finite() {
            assert!(large.period <= small.period + 1e-6);
        } else {
            assert!(large.period.is_finite());
        }
    }

    #[test]
    fn impossible_memory_is_reported_infeasible() {
        let c = chain(&[(1.0, 1.0)], 1 << 30, 1 << 28);
        let platform = Platform::new(2, 1 << 20, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 2.0, &disc());
        assert!(out.period.is_infinite());
        assert!(out.allocation.is_none());
    }

    #[test]
    fn dp_period_is_monotone_in_t_hat() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
            1 << 18,
            1 << 10,
        );
        let platform = Platform::new(3, 3 << 20, 1e8).unwrap();
        let mut last = f64::INFINITY;
        for t_hat in [2.0f64, 4.0, 8.0, 16.0, 32.0] {
            let out = madpipe_dp(&c, &platform, t_hat, &disc());
            assert!(
                out.period <= last + 0.35,
                "period should (weakly) improve as T̂ grows: {} then {}",
                last,
                out.period
            );
            last = out.period.min(last);
        }
    }

    #[test]
    fn allocation_covers_the_chain_in_order() {
        let c = chain(&[(1.0, 1.0); 10], 100, 10);
        let platform = Platform::new(4, 1 << 30, 1e6).unwrap();
        let out = madpipe_dp(&c, &platform, 5.0, &disc());
        let alloc = out.allocation.unwrap();
        let part = alloc.partition();
        assert_eq!(part.stages().first().unwrap().start, 0);
        assert_eq!(part.stages().last().unwrap().end, 10);
    }
}
