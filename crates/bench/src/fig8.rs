//! Figure 8: speedup vs number of GPUs, per network and memory limit.
//!
//! Speedup is `U(1,L) / period` — how much faster than sequential
//! execution the pipelined schedule trains. The paper's observations:
//! good scalability at `M ≥ 12` GB, MadPipe scaling further than
//! PipeDream, and both collapsing when memory is tight.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::csv::{ratio, Table};
use crate::grid::CellResult;

/// Build the Figure 8 table and text rendering from grid results.
/// Text shows the β = 12 GB/s panels; the CSV carries everything.
pub fn generate(results: &[CellResult]) -> (String, Table) {
    let mut table = Table::new(&[
        "network",
        "beta_gb",
        "M_gb",
        "P",
        "madpipe_speedup",
        "pipedream_speedup",
    ]);
    let networks: BTreeSet<&str> = results.iter().map(|r| r.cell.network.as_str()).collect();
    let memories: BTreeSet<u64> = results.iter().map(|r| r.cell.m_gb).collect();
    let ps: BTreeSet<usize> = results.iter().map(|r| r.cell.p).collect();
    let betas: BTreeSet<u64> = results.iter().map(|r| r.cell.beta_gb as u64).collect();

    let mut text = String::new();
    let _ = writeln!(text, "Figure 8 — speedup U(1,L)/period vs number of GPUs");
    for net in &networks {
        for &beta in &betas {
            if beta != 12 && betas.len() > 1 {
                continue; // text shows the 12 GB/s panel; CSV has all
            }
            let _ = writeln!(text, "\n  {net}  (beta = {beta} GB/s, speedup mp/pd)");
            let _ = write!(text, "  {:>6} |", "M(GB)");
            for &p in &ps {
                let _ = write!(text, " {:>11} |", format!("P={p}"));
            }
            let _ = writeln!(text);
            for &m in &memories {
                let _ = write!(text, "  {:>6} |", m);
                for &p in &ps {
                    let r = results.iter().find(|r| {
                        r.cell.network == *net
                            && r.cell.m_gb == m
                            && r.cell.p == p
                            && r.cell.beta_gb as u64 == beta
                    });
                    let fmt =
                        |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
                    match r {
                        Some(r) => {
                            let _ = write!(
                                text,
                                " {:>5}/{:<5} |",
                                fmt(r.madpipe_speedup()),
                                fmt(r.pipedream_speedup())
                            );
                        }
                        None => {
                            let _ = write!(text, " {:>11} |", "");
                        }
                    }
                }
                let _ = writeln!(text);
            }
        }
    }

    for r in results {
        table.push(vec![
            r.cell.network.clone(),
            format!("{}", r.cell.beta_gb),
            r.cell.m_gb.to_string(),
            r.cell.p.to_string(),
            ratio(r.madpipe_speedup()),
            ratio(r.pipedream_speedup()),
        ]);
    }
    (text, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Cell;

    fn cell(p: usize, m: u64, mp: f64) -> CellResult {
        CellResult {
            cell: Cell {
                network: "resnet50".into(),
                p,
                m_gb: m,
                beta_gb: 12.0,
                policy: Default::default(),
            },
            sequential: 1.0,
            madpipe_estimate: Some(mp),
            madpipe: Some(mp),
            pipedream_estimate: None,
            pipedream: None,
            planning_seconds: 0.1,
            stats: crate::grid::test_stats(3, 0, 10),
            certified: Some(true),
            jitter_margin: Some(0.1),
        }
    }

    #[test]
    fn speedups_are_sequential_over_period() {
        let results = vec![cell(2, 8, 0.5), cell(4, 8, 0.25)];
        let (text, table) = generate(&results);
        assert!(text.contains("2.00"));
        assert!(text.contains("4.00"));
        assert_eq!(table.len(), 2);
        assert!(table.to_csv().contains("resnet50,12,8,4,4.0000,"));
    }
}
