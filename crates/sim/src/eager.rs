//! The eager 1F1B policy: PipeDream's runtime scheduler.
//!
//! Operations start as soon as their inputs are available and their
//! resource is free; when several operations compete for a resource,
//! backwards are preferred over forwards (the 1F1B rule) and older
//! batches over newer ones. The number of mini-batches in flight is
//! bounded by a pipeline depth. §4.1 of the paper points out that this
//! strategy gives no guarantee on the period actually achieved and makes
//! memory consumption hard to predict — this simulator measures both.

use std::collections::HashMap;

use madpipe_model::{Allocation, Chain, Platform, Resource, UnitKind, UnitSequence};
use madpipe_schedule::check::static_memory;
use madpipe_schedule::Dir;

use crate::event::EventQueue;
use crate::report::SimReport;

/// Eager simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EagerConfig {
    /// Mini-batches to simulate (throughput is estimated from the second
    /// half, so use at least a few dozen).
    pub batches: usize,
    /// Pipeline depth: max mini-batches admitted before the oldest one
    /// retires. `None` picks the number of *stages* of the allocation —
    /// PipeDream's rule. (An earlier version counted stages *and*
    /// communication units, silently over-admitting on any allocation
    /// with remote cuts.)
    pub depth: Option<usize>,
}

impl Default for EagerConfig {
    fn default() -> Self {
        Self {
            batches: 100,
            depth: None,
        }
    }
}

/// An op instance in flight: `(unit, dir, batch)`.
type Inst = (usize, Dir, usize);

/// Run the eager 1F1B policy and measure throughput and memory.
pub fn simulate_eager(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    cfg: &EagerConfig,
) -> SimReport {
    let seq = UnitSequence::from_allocation(chain, platform, alloc);
    let n_units = seq.len();
    let n_batches = cfg.batches.max(2);
    let n_stages = seq.units().iter().filter(|u| !u.is_comm()).count();
    let depth = cfg.depth.unwrap_or(n_stages).max(1);

    let dur = |unit: usize, dir: Dir| -> f64 {
        match dir {
            Dir::Forward => seq.units()[unit].forward_time,
            Dir::Backward => seq.units()[unit].backward_time,
        }
    };

    // Resource bookkeeping.
    let mut resources: Vec<Resource> = seq.units().iter().map(|u| u.resource).collect();
    resources.sort();
    resources.dedup();
    let mut busy: HashMap<Resource, bool> = resources.iter().map(|&r| (r, false)).collect();
    let mut busy_time: HashMap<Resource, f64> = resources.iter().map(|&r| (r, 0.0)).collect();
    let mut ready: HashMap<Resource, Vec<Inst>> = resources.iter().map(|&r| (r, vec![])).collect();

    // Memory bookkeeping: dynamic stored-activation bytes per GPU.
    let static_bytes = static_memory(chain, alloc, &seq);
    let mut dyn_bytes = vec![0i64; alloc.n_gpus()];
    let mut peak = static_bytes.clone();
    let stage_gpu_and_stored: Vec<Option<(usize, u64)>> = seq
        .units()
        .iter()
        .map(|u| match (&u.kind, u.resource) {
            (UnitKind::Stage { layers, .. }, Resource::Gpu(g)) => {
                Some((g, chain.stored_activation_bytes(layers.clone())))
            }
            _ => None,
        })
        .collect();

    // Completion tracking for admission + dependency release.
    let mut b0_done = 0usize; // completed B of unit 0
    let mut admitted = 0usize;
    let mut completions: Vec<(f64, usize)> = Vec::new(); // (time, batch) of final op

    let mut events: EventQueue<Inst> = EventQueue::new();
    let mut now = 0.0f64;

    // Helpers as closures over the mutable state are awkward; use a small
    // queue of "newly enabled" instances instead.
    let mut enabled: Vec<Inst> = Vec::new();
    let admit = |admitted: &mut usize, b0_done: usize, enabled: &mut Vec<Inst>| {
        while *admitted < n_batches && *admitted < b0_done + depth {
            enabled.push((0, Dir::Forward, *admitted));
            *admitted += 1;
        }
    };
    admit(&mut admitted, b0_done, &mut enabled);

    loop {
        // Move enabled instances into their resource's ready list.
        for inst in enabled.drain(..) {
            let r = seq.units()[inst.0].resource;
            ready.get_mut(&r).expect("known resource").push(inst);
        }
        // Start work on every idle resource.
        for &r in &resources {
            if *busy.get(&r).expect("known") {
                continue;
            }
            let list = ready.get_mut(&r).expect("known");
            if list.is_empty() {
                continue;
            }
            // 1F1B priority: backwards first, then oldest batch, then
            // latest unit (drain the pipe end first).
            let best = (0..list.len())
                .min_by_key(|&i| {
                    let (u, d, b) = list[i];
                    (if d == Dir::Backward { 0 } else { 1 }, b, usize::MAX - u)
                })
                .expect("non-empty");
            let inst = list.swap_remove(best);
            *busy.get_mut(&r).expect("known") = true;
            *busy_time.get_mut(&r).expect("known") += dur(inst.0, inst.1);
            events.push(now + dur(inst.0, inst.1), inst);
        }

        let Some((t, (u, d, b))) = events.pop() else {
            break;
        };
        now = t;
        let r = seq.units()[u].resource;
        *busy.get_mut(&r).expect("known") = false;

        // Memory effects at completion.
        if let Some((gpu, stored)) = stage_gpu_and_stored[u] {
            match d {
                Dir::Forward => dyn_bytes[gpu] += stored as i64,
                Dir::Backward => dyn_bytes[gpu] -= stored as i64,
            }
            let total = (static_bytes[gpu] as i64 + dyn_bytes[gpu]).max(0) as u64;
            peak[gpu] = peak[gpu].max(total);
        }

        // Release successors.
        match d {
            Dir::Forward => {
                if u + 1 < n_units {
                    enabled.push((u + 1, Dir::Forward, b));
                } else {
                    enabled.push((u, Dir::Backward, b));
                }
            }
            Dir::Backward => {
                if u > 0 {
                    enabled.push((u - 1, Dir::Backward, b));
                } else {
                    b0_done += 1;
                    completions.push((now, b));
                    admit(&mut admitted, b0_done, &mut enabled);
                }
            }
        }
    }

    // Steady-state period from the second half of the completions.
    let period = if completions.len() >= 4 {
        let half = completions.len() / 2;
        let (t0, _) = completions[half - 1];
        let (t1, _) = completions[completions.len() - 1];
        (t1 - t0) / (completions.len() - half) as f64
    } else {
        now / completions.len().max(1) as f64
    };

    let gpu_utilization = (0..alloc.n_gpus())
        .map(|g| {
            busy_time
                .get(&Resource::Gpu(g))
                .map(|&bt| if now > 0.0 { bt / now } else { 0.0 })
                .unwrap_or(0.0)
        })
        .collect();

    let memory_violation = peak.iter().any(|&p| p > platform.memory_bytes);

    SimReport {
        period,
        makespan: now,
        batches: completions.len(),
        gpu_peak_bytes: peak,
        gpu_utilization,
        memory_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Layer, Partition};

    fn setup(acts: u64, mem: u64) -> (Chain, Platform, Allocation) {
        let chain = Chain::new(
            "t",
            acts,
            vec![
                Layer::new("a", 1.0, 1.0, 0, acts),
                Layer::new("b", 1.0, 1.0, 0, acts),
                Layer::new("c", 1.0, 1.0, 0, acts),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, mem, 1e9).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        (chain, platform, alloc)
    }

    #[test]
    fn balanced_pipeline_reaches_the_load_bound() {
        let (chain, platform, alloc) = setup(8, 1 << 30);
        let report = simulate_eager(&chain, &platform, &alloc, &EagerConfig::default());
        // Each stage takes 2s per batch; comm negligible → period ≈ 2.
        assert!(
            (report.period - 2.0).abs() < 0.05,
            "period {}",
            report.period
        );
        assert_eq!(report.batches, 100);
        assert!(!report.memory_violation);
        // First GPU is the bottleneck-equal: utilization ≈ 1 in steady state.
        assert!(report.gpu_utilization[0] > 0.9);
    }

    #[test]
    fn deep_pipelines_store_more_activations() {
        let (chain, platform, alloc) = setup(1000, 1 << 30);
        let shallow = simulate_eager(
            &chain,
            &platform,
            &alloc,
            &EagerConfig {
                batches: 50,
                depth: Some(1),
            },
        );
        let deep = simulate_eager(
            &chain,
            &platform,
            &alloc,
            &EagerConfig {
                batches: 50,
                depth: Some(5),
            },
        );
        assert!(deep.gpu_peak_bytes[0] > shallow.gpu_peak_bytes[0]);
        // Depth 1 serializes: period = full round trip; deep pipelines
        // overlap and go faster.
        assert!(deep.period < shallow.period - 1e-6);
    }

    #[test]
    fn memory_violation_is_flagged_not_fatal() {
        let (chain, _platform, alloc) = setup(1 << 20, 1);
        let tiny = Platform::new(3, 1, 1e9).unwrap();
        let report = simulate_eager(&chain, &tiny, &alloc, &EagerConfig::default());
        assert!(report.memory_violation);
        assert!(report.batches > 0);
    }

    #[test]
    fn default_depth_is_the_stage_count_not_the_unit_count() {
        // 3 stages on 3 GPUs → 5 units (3 stages + 2 comms). The old
        // default admitted 5 batches; PipeDream's rule admits 3. With
        // non-negligible comm the pipe can hold more batches than
        // stages, so the defaults differ observably in stored memory.
        let acts = 1_000_000u64;
        let chain = Chain::new(
            "t",
            acts,
            vec![
                Layer::new("a", 1.0, 1.0, 0, acts),
                Layer::new("b", 1.0, 1.0, 0, acts),
                Layer::new("c", 1.0, 1.0, 0, acts),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, 1 << 40, 1e6).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        let run = |depth: Option<usize>| {
            simulate_eager(
                &chain,
                &platform,
                &alloc,
                &EagerConfig { batches: 60, depth },
            )
        };
        let default = run(None);
        let stages = run(Some(3));
        let units = run(Some(5));
        assert_eq!(default.gpu_peak_bytes, stages.gpu_peak_bytes);
        assert_eq!(default.period.to_bits(), stages.period.to_bits());
        assert!(
            units.gpu_peak_bytes[0] > stages.gpu_peak_bytes[0],
            "unit-count depth must admit more: {} vs {}",
            units.gpu_peak_bytes[0],
            stages.gpu_peak_bytes[0]
        );
    }

    #[test]
    fn depth_one_serializes_to_the_full_round_trip() {
        // Heavy comm: 1000 B at 1000 B/s → 1 s per transfer. At depth 1
        // exactly one batch is in flight, so the period is the full
        // round trip F(2)+c(1)+F(2)+c(1)+F(2)+B(2)+c(1)+B(2)+c(1)+B(2)
        // = 16 s, and each stage stores exactly one batch.
        let acts = 1_000u64;
        let chain = Chain::new(
            "t",
            acts,
            vec![
                Layer::new("a", 2.0, 2.0, 0, acts),
                Layer::new("b", 2.0, 2.0, 0, acts),
                Layer::new("c", 2.0, 2.0, 0, acts),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, 1 << 30, 1000.0).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        let report = simulate_eager(
            &chain,
            &platform,
            &alloc,
            &EagerConfig {
                batches: 40,
                depth: Some(1),
            },
        );
        assert!(
            (report.period - 16.0).abs() < 1e-9,
            "period {}",
            report.period
        );
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let statics = madpipe_schedule::check::static_memory(&chain, &alloc, &seq);
        for (g, s) in statics.iter().enumerate() {
            assert_eq!(report.gpu_peak_bytes[g], s + acts);
        }
    }

    #[test]
    fn single_stage_allocation_accounting() {
        // The whole chain on one GPU: one unit, no comm. The default
        // depth is 1, the period is u_F + u_B, and the peak is static
        // plus one batch of stored activations, at any requested depth
        // (1F1B backward preference retires each batch before the next
        // forward runs).
        let acts = 500u64;
        let chain = Chain::new(
            "t",
            acts,
            vec![
                Layer::new("a", 1.0, 2.0, 0, acts),
                Layer::new("b", 2.0, 1.0, 0, acts),
            ],
        )
        .unwrap();
        let platform = Platform::new(1, 1 << 30, 1e9).unwrap();
        let part = Partition::from_cuts(&[], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 1).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let statics = madpipe_schedule::check::static_memory(&chain, &alloc, &seq);
        let stored = chain.stored_activation_bytes(0..2);
        for depth in [None, Some(1), Some(4)] {
            let report = simulate_eager(
                &chain,
                &platform,
                &alloc,
                &EagerConfig { batches: 30, depth },
            );
            assert!(
                (report.period - 6.0).abs() < 1e-9,
                "depth {depth:?}: period {}",
                report.period
            );
            assert_eq!(
                report.gpu_peak_bytes[0],
                statics[0] + stored,
                "depth {depth:?}"
            );
            assert!(!report.memory_violation);
        }
    }

    #[test]
    fn single_batch_degenerates_to_sequential() {
        let (chain, platform, alloc) = setup(8, 1 << 30);
        let report = simulate_eager(
            &chain,
            &platform,
            &alloc,
            &EagerConfig {
                batches: 2,
                depth: Some(1),
            },
        );
        // Round trip: 3 F (1s each) + comms (~0) + 3 B = 6s per batch.
        assert!(
            (report.period - 6.0).abs() < 0.1,
            "period {}",
            report.period
        );
    }
}
