//! The full PipeDream baseline pipeline: partitioning DP + 1F1B* repair.

use madpipe_model::{Allocation, Chain, Platform};
use madpipe_schedule::{best_contiguous_period, BestPeriod, ScheduleError};

use crate::dp::{pipedream_partition, PartitionOutcome};

/// Why the baseline failed to produce a runnable plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The chain is empty (degenerate input).
    EmptyChain,
    /// The DP's partition cannot be scheduled in memory at any period.
    Unschedulable(ScheduleError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyChain => write!(f, "empty chain"),
            PlanError::Unschedulable(e) => write!(f, "partition unschedulable: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A complete PipeDream plan: the DP's partition with its optimistic
/// prediction, plus the valid 1F1B* schedule (the paper's `DP+1F1B*`).
#[derive(Debug, Clone)]
pub struct PipeDreamPlan {
    /// The partitioning DP outcome (dashed line of Figure 6).
    pub outcome: PartitionOutcome,
    /// The stage → GPU placement (stage `i` on GPU `i`).
    pub allocation: Allocation,
    /// The valid schedule and its exact period (solid line of Figure 6).
    pub schedule: BestPeriod,
}

impl PipeDreamPlan {
    /// Achieved (valid) period.
    pub fn period(&self) -> f64 {
        self.schedule.period
    }

    /// How optimistic the DP was: achieved period / predicted period.
    pub fn optimism_ratio(&self) -> f64 {
        self.schedule.period / self.outcome.predicted_period
    }
}

/// Run the whole baseline: partition with PipeDream's DP, then compute
/// the optimal valid 1F1B* schedule of that partition.
pub fn pipedream_plan(chain: &Chain, platform: &Platform) -> Result<PipeDreamPlan, PlanError> {
    let outcome = pipedream_partition(chain, platform).ok_or(PlanError::EmptyChain)?;
    let allocation = Allocation::contiguous(&outcome.partition, platform.n_gpus)
        .expect("DP emits at most P stages");
    let schedule =
        best_contiguous_period(chain, platform, &allocation).map_err(PlanError::Unschedulable)?;
    Ok(PipeDreamPlan {
        outcome,
        allocation,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(acts: &[u64]) -> Chain {
        let layers = acts
            .iter()
            .enumerate()
            .map(|(i, &a)| Layer::new(format!("l{i}"), 1.0, 1.0, 0, a))
            .collect();
        Chain::new("t", acts[0], layers).unwrap()
    }

    #[test]
    fn plan_is_valid_and_at_least_the_prediction() {
        let c = chain(&[100, 100, 100, 100, 100, 100]);
        let platform = Platform::new(3, 1 << 20, 1e6).unwrap();
        let plan = pipedream_plan(&c, &platform).unwrap();
        assert!(plan.period() + 1e-9 >= plan.outcome.predicted_period);
        assert!(plan.optimism_ratio() >= 1.0 - 1e-9);
    }

    #[test]
    fn tight_memory_inflates_the_achieved_period() {
        // Large early activations: the DP's estimate (≤ P versions)
        // accepts a split whose true 1F1B* schedule needs more memory,
        // forcing a period well above the prediction.
        let c = chain(&[40_000, 40_000, 10, 10, 10, 10, 10, 10]);
        let roomy = Platform::new(4, 1 << 30, 1e5).unwrap();
        let tight = Platform::new(4, 300_000, 1e5).unwrap();
        let roomy_plan = pipedream_plan(&c, &roomy).unwrap();
        let tight_plan = pipedream_plan(&c, &tight).unwrap();
        assert!(tight_plan.period() >= roomy_plan.period() - 1e-9);
    }

    #[test]
    fn unschedulable_partition_is_reported() {
        let c = chain(&[1_000_000, 1_000_000]);
        let platform = Platform::new(2, 1_000, 1e6).unwrap();
        let err = pipedream_plan(&c, &platform).unwrap_err();
        assert!(matches!(err, PlanError::Unschedulable(_)));
    }
}
