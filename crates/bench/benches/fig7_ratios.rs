//! Figure 7 regenerator + per-network planning benchmark.
//!
//! Regenerates the Figure 7 data (geometric mean of the
//! PipeDream/MadPipe period ratio over (P, β), per network and memory
//! limit; printed and saved to `results/fig7_ratio_gmean.csv`), then
//! benchmarks full planning on each of the four networks at one
//! representative platform.

use criterion::{criterion_group, criterion_main, Criterion};

use madpipe_bench::{fig7, paper_chains, run_cells, GridConfig};
use madpipe_core::{compare, PlannerConfig};
use madpipe_model::Platform;

fn generate_figure() -> Vec<madpipe_model::Chain> {
    let grid = GridConfig {
        m_values: vec![3, 4, 6, 8, 12, 16],
        ..GridConfig::quick()
    };
    let chains = paper_chains(&grid);
    let results = run_cells(&chains, &grid.cells(), &PlannerConfig::default(), 0, false);
    let (text, table) = fig7::generate(&results);
    println!("{text}");
    table
        .save("results/fig7_ratio_gmean.csv")
        .expect("writable results directory");
    chains
}

fn bench(c: &mut Criterion) {
    let chains = generate_figure();
    let platform = Platform::gb(4, 6, 12.0).unwrap();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for chain in &chains {
        group.bench_function(format!("compare/{}_p4_m6", chain.name()), |b| {
            b.iter(|| compare(chain, &platform, &PlannerConfig::default()).ratio())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
