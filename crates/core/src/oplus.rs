//! The `⊕` delay-propagation operator of §4.2.2.
//!
//! Inside MadPipe-DP the delay between the end of a forward operation and
//! the start of the matching backward is propagated up the chain by
//! mimicking 1F1B* group formation at the target period `T̂`:
//!
//! ```text
//! x ⊕ y = x + y            if ⌈x/T̂⌉ = ⌈(x+y)/T̂⌉   (same group)
//!       = T̂·⌈x/T̂⌉ + y     otherwise              (new group opens)
//! ```
//!
//! `x` is the delay accumulated so far, `y` the load of the next element
//! (stage compute time or communication time) walking towards the front
//! of the chain. When the element still fits in the current group the
//! delay just grows by `y`; otherwise the element starts a new group and
//! waits until the current group's window closes (a multiple of `T̂`).

use madpipe_model::util::group_step;

/// Compute `x ⊕ y` at target period `t_hat`.
///
/// Zero-cost elements never open a new group (`x ⊕ 0 = x`).
///
/// Delegates to [`madpipe_model::util::group_step`]: the DP's delay
/// propagation and 1F1B*'s greedy group packing share one implementation
/// so their period-boundary decisions (exact multiples of `T̂` in
/// particular) can never drift apart.
pub fn oplus(x: f64, y: f64, t_hat: f64) -> f64 {
    group_step(x, y, t_hat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_group_is_plain_addition() {
        // x = 1.0, y = 0.5, T̂ = 2 → ⌈0.5⌉ = ⌈0.75⌉ = 1
        assert_eq!(oplus(1.0, 0.5, 2.0), 1.5);
    }

    #[test]
    fn crossing_a_group_boundary_snaps_to_the_window() {
        // x = 1.5, y = 1.0, T̂ = 2: ⌈0.75⌉=1, ⌈1.25⌉=2 → 2·1 + 1 = 3
        assert_eq!(oplus(1.5, 1.0, 2.0), 3.0);
    }

    #[test]
    fn zero_load_is_identity() {
        assert_eq!(oplus(3.7, 0.0, 2.0), 3.7);
        assert_eq!(oplus(0.0, 0.0, 2.0), 0.0);
    }

    #[test]
    fn from_zero_delay() {
        // ⌈0⌉ = 0, ⌈y/T̂⌉ = 1 → new group: T̂·0 + y = y
        assert_eq!(oplus(0.0, 1.5, 2.0), 1.5);
    }

    #[test]
    fn exact_multiples_stay_in_their_group() {
        // x = 2.0 with T̂ = 2: group 1; x+y = 2.5 → group 2 → 2·1 + 0.5
        assert_eq!(oplus(2.0, 0.5, 2.0), 2.5);
        // x = 2.0 + tiny rounding noise behaves identically
        assert_eq!(oplus(2.0 + 1e-12, 0.5, 2.0), 2.5);
    }

    #[test]
    fn result_is_monotone_in_both_arguments() {
        let t = 3.0;
        let xs = [0.0, 0.5, 2.9, 3.0, 3.1, 5.9, 6.0];
        let ys = [0.0, 0.1, 1.0, 2.9, 3.0];
        for (i, &x1) in xs.iter().enumerate() {
            for &x2 in &xs[i..] {
                for &y in &ys {
                    assert!(
                        oplus(x1, y, t) <= oplus(x2, y, t) + 1e-9,
                        "x-monotonicity failed at x1={x1} x2={x2} y={y}"
                    );
                }
            }
        }
        for &x in &xs {
            for (j, &y1) in ys.iter().enumerate() {
                for &y2 in &ys[j..] {
                    assert!(oplus(x, y1, t) <= oplus(x, y2, t) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn dominates_plain_addition() {
        for &x in &[0.0, 0.7, 1.9, 2.0, 4.4] {
            for &y in &[0.0, 0.3, 1.0, 2.5] {
                assert!(oplus(x, y, 2.0) + 1e-12 >= x + y);
            }
        }
    }
}
