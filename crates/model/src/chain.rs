//! The linearized DNN chain and its cost/memory accessors.

use std::ops::Range;

use madpipe_json::{FromJson, JsonError, ToJson, Value};

use crate::error::ModelError;
use crate::layer::Layer;
use crate::policy::{ActivationPolicy, StagePolicy};

/// A linearized DNN: a chain of `L` layers plus the size of the network
/// input (the paper's `a^{(0)}`, the tensor consumed by layer 1).
///
/// All algorithmic crates query costs through this type; prefix sums are
/// precomputed so that `U(k,l)`, weights and stored-activation sums over
/// any stage are O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    name: String,
    /// Size in bytes of the input tensor of the whole network (`a^{(0)}`).
    input_bytes: u64,
    layers: Vec<Layer>,
    /// `fwd_prefix[i]` = Σ_{j<i} u_F[j].
    fwd_prefix: Vec<f64>,
    /// `bwd_prefix[i]` = Σ_{j<i} u_B[j].
    bwd_prefix: Vec<f64>,
    /// `weight_prefix[i]` = Σ_{j<i} W[j].
    weight_prefix: Vec<u64>,
    /// `stored_prefix[i]` = Σ_{j<i} a_in(j) — inputs of each layer, the
    /// paper's `Σ a_{i-1}`.
    stored_prefix: Vec<u64>,
}

impl Chain {
    /// Build a chain, validating every layer.
    pub fn new(
        name: impl Into<String>,
        input_bytes: u64,
        layers: Vec<Layer>,
    ) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        for (index, l) in layers.iter().enumerate() {
            if let Err(detail) = l.validate() {
                return Err(ModelError::MalformedLayer { index, detail });
            }
        }
        let mut chain = Self {
            name: name.into(),
            input_bytes,
            layers,
            fwd_prefix: Vec::new(),
            bwd_prefix: Vec::new(),
            weight_prefix: Vec::new(),
            stored_prefix: Vec::new(),
        };
        chain.rebuild_prefixes();
        Ok(chain)
    }

    /// Recompute the prefix sums (needed after deserialization, which
    /// skips them).
    pub fn rebuild_prefixes(&mut self) {
        let n = self.layers.len();
        self.fwd_prefix = Vec::with_capacity(n + 1);
        self.bwd_prefix = Vec::with_capacity(n + 1);
        self.weight_prefix = Vec::with_capacity(n + 1);
        self.stored_prefix = Vec::with_capacity(n + 1);
        self.fwd_prefix.push(0.0);
        self.bwd_prefix.push(0.0);
        self.weight_prefix.push(0);
        self.stored_prefix.push(0);
        for i in 0..n {
            let l = &self.layers[i];
            self.fwd_prefix.push(self.fwd_prefix[i] + l.forward_time);
            self.bwd_prefix.push(self.bwd_prefix[i] + l.backward_time);
            self.weight_prefix
                .push(self.weight_prefix[i] + l.weight_bytes);
            self.stored_prefix.push(
                self.stored_prefix[i]
                    + self.activation_in(i)
                    + self.layers[i].internal_stored_bytes,
            );
        }
    }

    /// Chain name (network identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers `L`.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True iff the chain has no layers (never true for a validated chain).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers as a slice.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer at 0-based index `i`.
    pub fn layer(&self, i: usize) -> &Layer {
        &self.layers[i]
    }

    /// Size of the network input tensor `a^{(0)}`.
    pub fn input_bytes(&self) -> u64 {
        self.input_bytes
    }

    /// Input activation of layer `i` (0-based): the paper's `a_{i-1}`
    /// with `a_0` = network input.
    pub fn activation_in(&self, i: usize) -> u64 {
        if i == 0 {
            self.input_bytes
        } else {
            self.layers[i - 1].activation_bytes
        }
    }

    /// Output activation of layer `i` (0-based): the paper's `a_i`.
    pub fn activation_out(&self, i: usize) -> u64 {
        self.layers[i].activation_bytes
    }

    /// Total forward time over `range` (0-based, half-open).
    pub fn forward_time(&self, range: Range<usize>) -> f64 {
        self.fwd_prefix[range.end] - self.fwd_prefix[range.start]
    }

    /// Total backward time over `range`.
    pub fn backward_time(&self, range: Range<usize>) -> f64 {
        self.bwd_prefix[range.end] - self.bwd_prefix[range.start]
    }

    /// The paper's `U(k,l)` — total compute (forward + backward) time of
    /// the layers in `range`.
    pub fn compute_time(&self, range: Range<usize>) -> f64 {
        self.forward_time(range.clone()) + self.backward_time(range)
    }

    /// Total compute time of the whole chain, `U(1,L)` — the sequential
    /// execution time used as the speedup baseline in Figure 8.
    pub fn total_compute_time(&self) -> f64 {
        self.compute_time(0..self.len())
    }

    /// Sum of parameter-weight bytes over `range` (Σ W_i, *not* tripled).
    pub fn weight_bytes(&self, range: Range<usize>) -> u64 {
        self.weight_prefix[range.end] - self.weight_prefix[range.start]
    }

    /// Stored-activation bytes of a stage covering `range`: the paper's
    /// `ā_s = Σ_{i∈s} a_{i-1}` — one copy of the input of every layer of
    /// the stage, which is what one in-flight mini-batch pins in memory
    /// (plus any internal stored bytes of grouped layers).
    pub fn stored_activation_bytes(&self, range: Range<usize>) -> u64 {
        self.stored_prefix[range.end] - self.stored_prefix[range.start]
    }

    /// The paper's stage memory estimate `M(k, l, g)` for layers `range`
    /// kept with `g` in-flight activations:
    ///
    /// `Σ_{i∈range} (3·W_i + g·a_{i-1})  +  2·(a_in + a_out)`
    ///
    /// where the `2·a` communication buffers are only counted on sides of
    /// the stage that actually cut the chain (dropped at `k = 0` and
    /// `l = L` exactly as in the paper).
    pub fn stage_memory(&self, range: Range<usize>, g: u64) -> u64 {
        let weights = 3 * self.weight_bytes(range.clone());
        let activations = g * self.stored_activation_bytes(range.clone());
        let mut buffers = 0;
        if range.start > 0 {
            buffers += 2 * self.activation_in(range.start);
        }
        if range.end < self.len() {
            buffers += 2 * self.activation_out(range.end - 1);
        }
        weights + activations + buffers
    }

    /// Static bytes of a stage covering `range` under `policy`: the
    /// weight versions (`w_mult·Σ W_i`) plus — when the stage recomputes —
    /// the recompute working set `ā − a_in`, the activations regenerated
    /// during backward on top of the stashed boundary input. Batch-count
    /// independent.
    pub fn stage_static_bytes(&self, range: Range<usize>, policy: StagePolicy) -> u64 {
        let weights = policy.weights.multiplier() * self.weight_bytes(range.clone());
        let working_set = match policy.activation {
            ActivationPolicy::Store => 0,
            ActivationPolicy::Recompute => self.recompute_working_set_bytes(range.clone()),
        };
        weights + working_set
    }

    /// The recompute working set of a stage covering `range`: the
    /// activations regenerated during backward on top of the stashed
    /// boundary input, `ā − a_in`. Never underflows: `ā` includes
    /// `a_in(range.start)` as its first term.
    pub fn recompute_working_set_bytes(&self, range: Range<usize>) -> u64 {
        self.stored_activation_bytes(range.clone()) - self.activation_in(range.start)
    }

    /// Bytes pinned per in-flight mini-batch by a stage covering `range`
    /// under `policy`: the full stored activations `ā` when storing, only
    /// the boundary input `a_in` when recomputing.
    pub fn stage_live_batch_bytes(&self, range: Range<usize>, policy: StagePolicy) -> u64 {
        match policy.activation {
            ActivationPolicy::Store => self.stored_activation_bytes(range),
            ActivationPolicy::Recompute => self.activation_in(range.start),
        }
    }

    /// Policy-aware stage memory: `stage_static_bytes + g·stage_live_batch_bytes`
    /// plus the same communication buffers as [`Chain::stage_memory`].
    /// With the default policy this equals `stage_memory(range, g)`
    /// exactly (same integer arithmetic).
    pub fn stage_memory_with(&self, range: Range<usize>, g: u64, policy: StagePolicy) -> u64 {
        let static_bytes = self.stage_static_bytes(range.clone(), policy);
        let live = g * self.stage_live_batch_bytes(range.clone(), policy);
        let mut buffers = 0;
        if range.start > 0 {
            buffers += 2 * self.activation_in(range.start);
        }
        if range.end < self.len() {
            buffers += 2 * self.activation_out(range.end - 1);
        }
        static_bytes + live + buffers
    }

    /// Largest single-layer compute time — a lower bound on any period.
    pub fn max_layer_compute_time(&self) -> f64 {
        self.layers
            .iter()
            .map(Layer::compute_time)
            .fold(0.0, f64::max)
    }
}

impl ToJson for Chain {
    fn to_json(&self) -> Value {
        // Prefix sums are derived state: they are rebuilt on read, never
        // written.
        Value::Object(vec![
            ("name".into(), self.name.to_json()),
            ("input_bytes".into(), self.input_bytes.to_json()),
            ("layers".into(), self.layers.to_json()),
        ])
    }
}

impl FromJson for Chain {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let name = String::from_json(v.field("name")?)?;
        let input_bytes = v.field("input_bytes")?.as_u64()?;
        let layers = Vec::<Layer>::from_json(v.field("layers")?)?;
        // `Chain::new` revalidates and rebuilds the prefix sums.
        Chain::new(name, input_bytes, layers)
            .map_err(|e| JsonError::new(format!("invalid chain: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Chain {
        // input = 100; layers with distinct costs to catch index slips.
        Chain::new(
            "t",
            100,
            vec![
                Layer::new("l0", 1.0, 2.0, 10, 200),
                Layer::new("l1", 3.0, 4.0, 20, 300),
                Layer::new("l2", 5.0, 6.0, 30, 400),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(Chain::new("e", 0, vec![]), Err(ModelError::EmptyChain));
        let bad = vec![Layer::new("x", f64::NAN, 0.0, 0, 0)];
        let err = Chain::new("b", 0, bad).unwrap_err();
        assert!(matches!(err, ModelError::MalformedLayer { index: 0, .. }));
        let msg = err.to_string();
        assert!(msg.contains("forward_time"), "not descriptive: {msg}");
        assert!(msg.contains("NaN"), "should name the value: {msg}");
        // Negative and infinite values name the field and value too.
        let neg = Chain::new("n", 0, vec![Layer::new("x", 1.0, -2.0, 0, 0)]).unwrap_err();
        assert!(neg.to_string().contains("backward_time"), "{neg}");
        assert!(neg.to_string().contains("-2"), "{neg}");
        let inf = Chain::new("i", 0, vec![Layer::new("x", f64::INFINITY, 0.0, 0, 0)]).unwrap_err();
        assert!(inf.to_string().contains("finite"), "{inf}");
    }

    #[test]
    fn activation_indexing_matches_paper() {
        let c = chain3();
        assert_eq!(c.activation_in(0), 100); // a_0 = input
        assert_eq!(c.activation_in(1), 200); // a_1 = output of layer 0
        assert_eq!(c.activation_out(0), 200);
        assert_eq!(c.activation_out(2), 400);
    }

    #[test]
    fn compute_time_is_u_k_l() {
        let c = chain3();
        assert_eq!(c.compute_time(0..3), 21.0);
        assert_eq!(c.compute_time(1..2), 7.0);
        assert_eq!(c.compute_time(1..1), 0.0);
        assert_eq!(c.total_compute_time(), 21.0);
    }

    #[test]
    fn stored_activation_bytes_sums_layer_inputs() {
        let c = chain3();
        // ā over all layers = a_0 + a_1 + a_2 = 100 + 200 + 300
        assert_eq!(c.stored_activation_bytes(0..3), 600);
        assert_eq!(c.stored_activation_bytes(2..3), 300);
    }

    #[test]
    fn stage_memory_counts_buffers_only_at_cuts() {
        let c = chain3();
        // middle stage [1,2): 3*20 + g*200 + 2*(200 + 300)
        assert_eq!(c.stage_memory(1..2, 1), 60 + 200 + 1000);
        assert_eq!(c.stage_memory(1..2, 3), 60 + 600 + 1000);
        // first stage [0,1): no input buffer, output buffer 2*200
        assert_eq!(c.stage_memory(0..1, 1), 30 + 100 + 400);
        // whole chain: no buffers at all
        assert_eq!(c.stage_memory(0..3, 2), 3 * 60 + 2 * 600);
    }

    #[test]
    fn policy_memory_defaults_match_stage_memory_exactly() {
        let c = chain3();
        let d = StagePolicy::default();
        for range in [0..1, 1..2, 0..3, 1..3, 2..3] {
            for g in 0..5 {
                assert_eq!(
                    c.stage_memory_with(range.clone(), g, d),
                    c.stage_memory(range.clone(), g),
                    "range {range:?} g {g}"
                );
            }
        }
    }

    #[test]
    fn recompute_pins_only_the_boundary_input_per_batch() {
        let c = chain3();
        let rec = StagePolicy {
            activation: ActivationPolicy::Recompute,
            ..StagePolicy::default()
        };
        // Stage [1,3): ā = a_1 + a_2 = 200 + 300 = 500, a_in = 200.
        assert_eq!(c.stage_live_batch_bytes(1..3, rec), 200);
        assert_eq!(c.stage_live_batch_bytes(1..3, StagePolicy::default()), 500);
        // static = 3·(20+30) + (500 − 200) = 150 + 300
        assert_eq!(c.stage_static_bytes(1..3, rec), 150 + 300);
        // memory at g=3: static + 3·200 + input buffer 2·200 (end = len →
        // no output buffer)
        assert_eq!(c.stage_memory_with(1..3, 3, rec), 450 + 600 + 400);
    }

    #[test]
    fn recompute_with_2bw_never_uses_more_memory_than_default() {
        use crate::policy::WeightPolicy;
        let c = chain3();
        let lean = StagePolicy {
            activation: ActivationPolicy::Recompute,
            weights: WeightPolicy::TwoBw,
        };
        for range in [0..1, 1..2, 0..3, 1..3, 2..3] {
            for g in 1..6 {
                assert!(
                    c.stage_memory_with(range.clone(), g, lean) <= c.stage_memory(range.clone(), g),
                    "range {range:?} g {g}"
                );
            }
        }
    }

    #[test]
    fn max_layer_compute_time_is_max() {
        assert_eq!(chain3().max_layer_compute_time(), 11.0);
    }

    #[test]
    fn json_roundtrip_rebuilds_prefixes() {
        let c = chain3();
        let json = c.to_json().to_string_compact();
        let back = Chain::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.compute_time(0..3), c.compute_time(0..3));
        assert_eq!(back.stored_activation_bytes(0..3), 600);
    }
}
