//! ResNet-50 and ResNet-101 (He et al.), torchvision layout.

use crate::block::Block;
use crate::ops::Op;

use super::NetworkSpec;

/// Bottleneck residual block: `1×1 → 3×3(stride) → 1×1`, each followed by
/// batch-norm (+ ReLU on the first two), with an identity shortcut or a
/// strided `1×1` projection when shape changes.
fn bottleneck(name: String, mid: u64, out: u64, stride: u64, project: bool) -> Block {
    let main = vec![
        Op::conv1x1(mid),
        Op::BatchNorm,
        Op::Relu,
        Op::conv3x3(mid, stride),
        Op::BatchNorm,
        Op::Relu,
        Op::conv1x1(out),
        Op::BatchNorm,
        // the post-addition ReLU, folded into the main path (same cost)
        Op::Relu,
    ];
    let shortcut = if project {
        vec![Op::conv(out, 1, stride, 0), Op::BatchNorm]
    } else {
        vec![]
    };
    Block::residual(name, main, shortcut)
}

fn resnet(name: &str, stage_blocks: [usize; 4]) -> NetworkSpec {
    let mut blocks = Vec::new();
    blocks.push(Block::seq(
        "conv1",
        vec![Op::conv(64, 7, 2, 3), Op::BatchNorm, Op::Relu],
    ));
    blocks.push(Block::seq(
        "maxpool",
        vec![Op::MaxPool {
            kernel: 3,
            stride: 2,
            padding: 1,
        }],
    ));
    for (stage, &n) in stage_blocks.iter().enumerate() {
        let mid = 64 << stage; // 64, 128, 256, 512
        let out = mid * 4;
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            let project = b == 0; // channel change (and stride) on entry
            blocks.push(bottleneck(
                format!("conv{}_{}", stage + 2, b + 1),
                mid,
                out,
                stride,
                project,
            ));
        }
    }
    blocks.push(Block::seq(
        "head",
        vec![Op::GlobalAvgPool, Op::Linear { out_features: 1000 }],
    ));
    NetworkSpec {
        name: name.to_string(),
        blocks,
    }
}

/// ResNet-50: stages of 3, 4, 6, 3 bottlenecks.
pub fn resnet50() -> NetworkSpec {
    resnet("resnet50", [3, 4, 6, 3])
}

/// ResNet-101: stages of 3, 4, 23, 3 bottlenecks.
pub fn resnet101() -> NetworkSpec {
    resnet("resnet101", [3, 4, 23, 3])
}

/// ResNet-152: stages of 3, 8, 36, 3 bottlenecks (not in the paper's
/// evaluation; included as the deepest standard ResNet).
pub fn resnet152() -> NetworkSpec {
    resnet("resnet152", [3, 8, 36, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuModel;
    use crate::tensor::TensorShape;

    #[test]
    fn resnet50_has_the_canonical_parameter_count() {
        // torchvision resnet50: 25.56 M parameters.
        let net = resnet50();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut params = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            params += p.params;
            shape = p.output;
        }
        let millions = params as f64 / 1e6;
        assert!(
            (millions - 25.56).abs() < 0.2,
            "resnet50 params {millions:.2} M, expected ≈ 25.56 M"
        );
        assert_eq!(shape, TensorShape::new(1, 1000, 1, 1));
    }

    #[test]
    fn resnet101_has_the_canonical_parameter_count() {
        // torchvision resnet101: 44.55 M parameters.
        let net = resnet101();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut params = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            params += p.params;
            shape = p.output;
        }
        let millions = params as f64 / 1e6;
        assert!(
            (millions - 44.55).abs() < 0.3,
            "resnet101 params {millions:.2} M, expected ≈ 44.55 M"
        );
    }

    #[test]
    fn resnet50_flops_match_published_figures() {
        // ≈ 4.1 GFLOPs (MAC-doubled ≈ 8.2 GFLOP) per 224² image.
        let net = resnet50();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut flops = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            flops += p.flops;
            shape = p.output;
        }
        let gflops = flops as f64 / 1e9;
        assert!(
            (7.0..10.0).contains(&gflops),
            "resnet50 {gflops:.2} GFLOP, expected ≈ 8.2"
        );
    }

    #[test]
    fn chain_lengths() {
        assert_eq!(resnet50().len(), 2 + 16 + 1);
        assert_eq!(resnet101().len(), 2 + 33 + 1);
        assert_eq!(resnet152().len(), 2 + 50 + 1);
    }

    #[test]
    fn resnet152_has_the_canonical_parameter_count() {
        // torchvision resnet152: 60.19 M parameters.
        let net = resnet152();
        let mut shape = TensorShape::image(1, 224, 224);
        let mut params = 0u64;
        for b in &net.blocks {
            let p = b.evaluate(shape);
            params += p.params;
            shape = p.output;
        }
        let millions = params as f64 / 1e6;
        assert!(
            (millions - 60.19).abs() < 0.4,
            "resnet152 params {millions:.2} M, expected ≈ 60.19 M"
        );
    }

    #[test]
    fn early_layers_dominate_activation_sizes_at_large_images() {
        let gpu = GpuModel::default();
        let chain = resnet50().profile(8, 1000, &gpu).unwrap();
        // conv1 output: 8 × 64 × 500 × 500 × 4 B = 512 MB.
        assert_eq!(chain.layer(0).activation_bytes, 8 * 64 * 500 * 500 * 4);
        let first = chain.layer(0).activation_bytes;
        let last_block = chain.layer(chain.len() - 2).activation_bytes;
        // 512 MB vs 67 MB: early layers dominate by ~7.6×.
        assert!(first > 4 * last_block);
    }
}
