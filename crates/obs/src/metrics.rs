//! Metrics registry: monotone counters, gauges and log₂-bucketed
//! histograms with deterministic iteration order.
//!
//! The registry is internally locked, so DP worker threads could bump it
//! directly; the planner instead aggregates on the main thread (like the
//! rest of the workspace) and merges per-session registries, keeping
//! counter values bit-identical across thread counts. A [`snapshot`]
//! freezes the registry into a plain value that renders as a
//! Prometheus-style text dump or a JSON tree.
//!
//! [`snapshot`]: Registry::snapshot

use std::collections::BTreeMap;
use std::sync::Mutex;

use madpipe_json::Value;

/// Number of log₂ histogram buckets; bucket `i` holds values in
/// `(2^(i-1-OFFSET), 2^(i-OFFSET)]`, spanning ≈ 2⁻³⁰ … 2³³.
const BUCKETS: usize = 64;
/// Bucket 0's upper bound is `2^-OFFSET`.
const OFFSET: i32 = 30;

fn bucket_index(value: f64) -> usize {
    if value <= 0.0 {
        return 0;
    }
    let idx = value.log2().ceil() as i64 + OFFSET as i64;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

fn bucket_bound(index: usize) -> f64 {
    2f64.powi(index as i32 - OFFSET)
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>, // sparse-friendly: allocated on first observe
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Hist>,
}

/// A live metrics registry. Cheap to create; merge session-scoped
/// registries into a parent rather than sharing one globally.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the monotone counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Set the gauge `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the log₂ histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let h = inner.histograms.entry(name.to_string()).or_default();
        if h.buckets.is_empty() {
            h.buckets = vec![0; BUCKETS];
            h.min = value;
            h.max = value;
        } else {
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        }
        h.count += 1;
        h.sum += value;
        h.buckets[bucket_index(value)] += 1;
    }

    /// Fold every metric of `other` into this registry.
    pub fn merge(&self, other: &Registry) {
        let other = other.inner.lock().unwrap();
        let mut inner = self.inner.lock().unwrap();
        for (name, v) in &other.counters {
            *inner.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            inner.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            let mine = inner.histograms.entry(name.clone()).or_default();
            if mine.buckets.is_empty() {
                *mine = h.clone();
            } else {
                mine.min = mine.min.min(h.min);
                mine.max = mine.max.max(h.max);
                mine.count += h.count;
                mine.sum += h.sum;
                for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                    *a += b;
                }
            }
        }
    }

    /// Freeze the registry into a plain, comparable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, n)| **n > 0)
                                .map(|(i, n)| (bucket_bound(i), *n))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// One histogram, frozen: only non-empty buckets are kept, as
/// `(upper_bound, count)` pairs in ascending bound order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by rank interpolation
    /// within the owning log₂ bucket, clamped into the exact observed
    /// `[min, max]` — so a single-observation histogram reports that
    /// observation for every quantile. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let est = quantile_from_buckets(&self.buckets, q);
        if est.is_nan() {
            est
        } else {
            est.clamp(self.min, self.max)
        }
    }
}

/// Quantile estimate over `(upper_bound, count)` buckets in ascending
/// bound order (non-cumulative counts, log₂ bounds — a bucket's lower
/// edge is `bound / 2`). This is the reconstruction `madpipe top`
/// applies to cluster-summed `_bucket` series, where no exact min/max
/// exists to clamp against. `NaN` when the buckets are empty.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return f64::NAN;
    }
    // Rank of the target observation, 1-based: the smallest bucket whose
    // cumulative count reaches it owns the quantile.
    let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cumulative = 0u64;
    for (bound, n) in buckets {
        if *n == 0 {
            continue;
        }
        let before = cumulative as f64;
        cumulative += n;
        if cumulative as f64 >= rank {
            let lower = bound / 2.0;
            let frac = ((rank - before) / *n as f64).clamp(0.0, 1.0);
            return lower + frac * (bound - lower);
        }
    }
    buckets.last().map(|(b, _)| *b).unwrap_or(f64::NAN)
}

/// The quantiles every histogram exports (and `madpipe top` renders).
pub const EXPORTED_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// A frozen registry: sorted name → value lists, directly renderable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// `dp.solve.seconds` → `madpipe_dp_solve_seconds`.
fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 8);
    s.push_str("madpipe_");
    for c in name.chars() {
        s.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    s
}

impl MetricsSnapshot {
    /// Counter lookup (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Add `delta` to a counter in the frozen snapshot (used to fold
    /// post-planning events, e.g. certification verdicts).
    pub fn bump_counter(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(k, _)| k == name) {
            slot.1 += delta;
        } else {
            let at = self.counters.partition_point(|(k, _)| k.as_str() < name);
            self.counters.insert(at, (name.to_string(), delta));
        }
    }

    /// Set a gauge in the frozen snapshot (sorted insert, last write
    /// wins), mirroring [`Registry::set_gauge`] for post-freeze values
    /// like phase wall-clocks.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            let at = self.gauges.partition_point(|(k, _)| k.as_str() < name);
            self.gauges.insert(at, (name.to_string(), value));
        }
    }

    /// Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0;
            for (bound, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound:e}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            // Estimated quantiles as labeled gauges. Quantiles do not
            // sum; rollups must aggregate the `_bucket` series instead
            // (see `validate::histogram_buckets`) — which is exactly why
            // these carry a label the plain-sample extractors skip.
            for q in EXPORTED_QUANTILES {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", h.quantile(q));
            }
        }
        out
    }

    /// JSON tree (counters exact as unsigned integers).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Float(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Value::Object(vec![
                                    ("count".into(), Value::UInt(h.count)),
                                    ("sum".into(), Value::Float(h.sum)),
                                    ("min".into(), Value::Float(h.min)),
                                    ("max".into(), Value::Float(h.max)),
                                    (
                                        "buckets".into(),
                                        Value::Array(
                                            h.buckets
                                                .iter()
                                                .map(|(bound, n)| {
                                                    Value::Array(vec![
                                                        Value::Float(*bound),
                                                        Value::UInt(*n),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = Registry::new();
        r.inc("dp.solves");
        r.add("dp.solves", 2);
        r.add("dp.memo_hits", 0); // no-op
        assert_eq!(r.counter("dp.solves"), 3);
        assert_eq!(r.counter("dp.memo_hits"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("dp.solves"), 3);
        assert_eq!(snap.counters.len(), 1, "zero deltas create no series");
    }

    #[test]
    fn histograms_bucket_on_log2_bounds() {
        let r = Registry::new();
        for v in [0.5, 0.5, 2.0, 1e-12, 0.0] {
            r.observe("t", v);
        }
        let snap = r.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 2.0);
        assert_eq!(h.sum, 3.0 + 1e-12);
        // 0.5 ≤ 2^-1, 2.0 ≤ 2^1, tiny/zero clamp into the lowest bucket.
        assert!(h.buckets.iter().any(|(b, n)| *b == 0.5 && *n == 2));
        assert!(h.buckets.iter().any(|(b, n)| *b == 2.0 && *n == 1));
        let total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_histogram_rollup_has_no_defined_quantile() {
        // A cluster that has served no requests rolls up to all-zero
        // buckets; every quantile is NaN (callers render `-`, never a
        // raw NaN), and zero-count buckets never shift the estimate.
        assert!(quantile_from_buckets(&[], 0.5).is_nan());
        assert!(quantile_from_buckets(&[(0.5, 0), (2.0, 0)], 0.99).is_nan());
        let empty = HistogramSnapshot::default();
        for q in EXPORTED_QUANTILES {
            assert!(empty.quantile(q).is_nan());
        }
        // One observation later, the quantile is defined again.
        let one = [(2.0, 1u64)];
        assert!(quantile_from_buckets(&one, 0.5).is_finite());
    }

    #[test]
    fn merge_folds_counters_gauges_and_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("x", 1);
        b.add("x", 2);
        b.add("y", 5);
        a.set_gauge("g", 1.0);
        b.set_gauge("g", 2.0);
        a.observe("h", 1.0);
        b.observe("h", 4.0);
        b.observe("h2", 8.0);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("x"), 3);
        assert_eq!(snap.counter("y"), 5);
        assert_eq!(snap.gauges, vec![("g".into(), 2.0)]);
        let h = &snap.histograms.iter().find(|(k, _)| k == "h").unwrap().1;
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 4.0);
        assert_eq!(snap.histograms.len(), 2);
    }

    #[test]
    fn snapshot_bump_preserves_sorted_order() {
        let r = Registry::new();
        r.add("b", 1);
        let mut snap = r.snapshot();
        snap.bump_counter("b", 1);
        snap.bump_counter("a", 7);
        snap.bump_counter("c", 2);
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(snap.counter("b"), 2);
    }

    #[test]
    fn prometheus_dump_is_well_formed() {
        let r = Registry::new();
        r.add("dp.solves", 3);
        r.set_gauge("plan.phase1.seconds", 0.25);
        r.observe("dp.solve.seconds", 0.001);
        r.observe("dp.solve.seconds", 0.1);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE madpipe_dp_solves counter"));
        assert!(text.contains("madpipe_dp_solves 3"));
        assert!(text.contains("# TYPE madpipe_plan_phase1_seconds gauge"));
        assert!(text.contains("# TYPE madpipe_dp_solve_seconds histogram"));
        assert!(text.contains("madpipe_dp_solve_seconds_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let r = Registry::new();
        // 100 observations spread across two buckets: 90 in (0.25, 0.5],
        // 10 in (0.5, 1.0].
        for _ in 0..90 {
            r.observe("lat", 0.3);
        }
        for _ in 0..10 {
            r.observe("lat", 0.9);
        }
        let snap = r.snapshot();
        let (_, h) = snap.histograms.iter().find(|(k, _)| k == "lat").unwrap();
        let p50 = h.quantile(0.5);
        assert!(
            (0.25..=0.5).contains(&p50),
            "p50 must land in the 90%-bucket, got {p50}"
        );
        let p99 = h.quantile(0.99);
        assert!(
            (0.5..=0.9).contains(&p99),
            "p99 must land in the tail bucket, clamped to max, got {p99}"
        );
        assert!(h.quantile(1.0) <= h.max);
        assert_eq!(
            h.quantile(0.0),
            h.min.max(0.25),
            "p0 is the first bucket's lower edge, clamped to min"
        );

        // A single observation answers itself for every quantile.
        let r1 = Registry::new();
        r1.observe("one", 0.0123);
        let snap1 = r1.snapshot();
        let (_, h1) = &snap1.histograms[0];
        for q in EXPORTED_QUANTILES {
            assert_eq!(h1.quantile(q), 0.0123);
        }

        // Empty buckets: NaN, never a panic.
        assert!(quantile_from_buckets(&[], 0.5).is_nan());
        assert!(HistogramSnapshot::default().quantile(0.5).is_nan());
    }

    #[test]
    fn prometheus_dump_exports_quantile_series() {
        let r = Registry::new();
        r.observe("dp.solve.seconds", 0.001);
        r.observe("dp.solve.seconds", 0.1);
        let text = r.snapshot().to_prometheus();
        for q in EXPORTED_QUANTILES {
            assert!(
                text.contains(&format!("madpipe_dp_solve_seconds{{quantile=\"{q}\"}} ")),
                "missing quantile {q} in:\n{text}"
            );
        }
        // Quantile lines are labeled, so the plain-sample extractor a
        // cluster rollup sums must skip them.
        let samples = crate::validate::prometheus_samples(&text).unwrap();
        assert!(samples.iter().all(|(n, _)| !n.contains("quantile")));
    }

    #[test]
    fn json_snapshot_round_trips_counter_values_exactly() {
        let r = Registry::new();
        r.add("big", u64::MAX - 1);
        r.observe("h", 0.125);
        let v = r.snapshot().to_json();
        let back = Value::parse(&v.to_string_compact()).unwrap();
        assert_eq!(
            back.field("counters").unwrap().field("big").unwrap(),
            &Value::UInt(u64::MAX - 1)
        );
        assert_eq!(back, v);
    }
}
