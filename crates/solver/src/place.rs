//! Topological placement with bounded backtracking.

use madpipe_model::util::EPS;
use madpipe_model::{Allocation, Chain, Platform, Resource, UnitSequence};
use madpipe_schedule::{check_pattern, Dir, Op, Pattern, ScheduleError};

use crate::timeline::Timeline;

/// Tuning of the branch-and-bound placement.
#[derive(Debug, Clone, Copy)]
pub struct PlaceConfig {
    /// Maximum number of DFS nodes explored before giving up on a period.
    pub node_budget: usize,
    /// Maximum number of alternative slots tried per operation.
    pub max_alternatives: usize,
    /// Enable the Figure-5 memory compaction pass when a leaf fails only
    /// on memory (disable to measure its contribution).
    pub compaction: bool,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        Self {
            node_budget: 4096,
            max_alternatives: 4,
            compaction: true,
        }
    }
}

/// Attempt to build a valid pattern of period `period` for `alloc`.
///
/// Operations are placed in topological order; each op is offered the
/// earliest feasible modular slot on its resource (one candidate per
/// circular gap, bounded by [`PlaceConfig::max_alternatives`]); a leaf is
/// accepted iff the exact checker validates it (including memory).
pub fn schedule_at_period(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    seq: &UnitSequence,
    period: f64,
    cfg: &PlaceConfig,
) -> Option<Pattern> {
    let n = seq.len();
    if n == 0 || !period.is_finite() || period <= 0.0 {
        return None;
    }
    // Quick resource-load prefilter.
    let mut loads: std::collections::HashMap<Resource, f64> = std::collections::HashMap::new();
    for u in seq.units() {
        *loads.entry(u.resource).or_insert(0.0) += u.total_time();
    }
    if loads.values().any(|&l| l > period + EPS) {
        return None;
    }

    // Topological op order: all forwards in chain order, then all
    // backwards in reverse chain order. `order[i] = (unit, dir)`.
    let mut order = Vec::with_capacity(2 * n);
    for u in 0..n {
        order.push((u, Dir::Forward));
    }
    for u in (0..n).rev() {
        order.push((u, Dir::Backward));
    }

    struct Dfs<'a> {
        chain: &'a Chain,
        platform: &'a Platform,
        alloc: &'a Allocation,
        seq: &'a UnitSequence,
        order: &'a [(usize, Dir)],
        period: f64,
        cfg: &'a PlaceConfig,
        nodes: usize,
    }

    impl Dfs<'_> {
        /// Place ops from `idx` onward; `z` holds the absolute times of
        /// already placed ops (indexed like `order`).
        fn go(
            &mut self,
            idx: usize,
            z: &mut Vec<f64>,
            timelines: &mut std::collections::HashMap<Resource, Timeline>,
        ) -> Option<Pattern> {
            if self.nodes >= self.cfg.node_budget {
                return None;
            }
            self.nodes += 1;
            if idx == self.order.len() {
                let pattern = self.build_pattern(z);
                match check_pattern(self.chain, self.platform, self.alloc, self.seq, &pattern) {
                    Ok(_) => return Some(pattern),
                    Err(ScheduleError::MemoryExceeded { .. }) => {
                        // Memory, not structure, failed: stagger the
                        // forwards (Figure 5's best case) and retry.
                        if self.cfg.compaction {
                            return self.compact_and_check(z);
                        }
                        return None;
                    }
                    Err(_) => return None,
                }
            }
            let (unit, dir) = self.order[idx];
            let d = match dir {
                Dir::Forward => self.seq.units()[unit].forward_time,
                Dir::Backward => self.seq.units()[unit].backward_time,
            };
            let ready = self.ready_time(idx, z);
            let resource = self.seq.units()[unit].resource;
            let tl = timelines
                .entry(resource)
                .or_insert_with(|| Timeline::new(self.period));
            let candidates = tl.candidate_fits(ready, d, self.cfg.max_alternatives);
            for cand in candidates {
                let mut tl2 = timelines.clone();
                tl2.get_mut(&resource).expect("present").insert(cand, d);
                z.push(cand);
                if let Some(p) = self.go(idx + 1, z, &mut tl2) {
                    return Some(p);
                }
                z.pop();
            }
            None
        }

        /// Dependency-ready time of op `order[idx]` given placed times.
        fn ready_time(&self, idx: usize, z: &[f64]) -> f64 {
            let n = self.seq.len();
            let (unit, dir) = self.order[idx];
            match dir {
                Dir::Forward => {
                    if unit == 0 {
                        0.0
                    } else {
                        // F_{unit-1} is order[unit-1]
                        z[unit - 1] + self.seq.units()[unit - 1].forward_time
                    }
                }
                Dir::Backward => {
                    if unit == n - 1 {
                        // after F_{n-1}
                        z[n - 1] + self.seq.units()[n - 1].forward_time
                    } else {
                        // after B_{unit+1}, which is order[n + (n-1-(unit+1))]
                        let bidx = n + (n - 2 - unit);
                        z[bidx] + self.seq.units()[unit + 1].backward_time
                    }
                }
            }
        }

        /// Memory compaction: push every forward op as late as its chain
        /// successors allow, into the latest free slot on its resource.
        /// Delaying a forward past a period boundary increases `κ_F` and
        /// so lowers the stage's live-batch count by one — this is the
        /// "backward right after forward" interleaving of Figure 5 that
        /// the paper's ILP exploits on the special processor.
        fn compact_and_check(&mut self, z: &[f64]) -> Option<Pattern> {
            let n = self.seq.len();
            // Order-indexed copy we can move ops in.
            let mut zc: Vec<f64> = z.to_vec();
            let d_f: Vec<f64> = (0..n).map(|u| self.seq.units()[u].forward_time).collect();
            let b_index = |u: usize| n + (n - 1 - u);
            for _pass in 0..2 {
                let mut moved = false;
                for u in (0..n).rev() {
                    let bound = if u == n - 1 {
                        zc[b_index(n - 1)]
                    } else {
                        zc[u + 1]
                    } - d_f[u];
                    if bound <= zc[u] + madpipe_model::util::EPS {
                        continue;
                    }
                    // Rebuild the resource's timeline without F_u.
                    let resource = self.seq.units()[u].resource;
                    let mut tl = Timeline::new(self.period);
                    for (idx, &(unit, dir)) in self.order.iter().enumerate() {
                        if idx == u {
                            continue; // F_u itself (order index u)
                        }
                        let dur = match dir {
                            Dir::Forward => self.seq.units()[unit].forward_time,
                            Dir::Backward => self.seq.units()[unit].backward_time,
                        };
                        if self.seq.units()[unit].resource == resource {
                            tl.insert(zc[idx], dur);
                        }
                    }
                    if let Some(znew) = tl.latest_fit(zc[u], bound, d_f[u]) {
                        if znew > zc[u] + madpipe_model::util::EPS {
                            zc[u] = znew;
                            moved = true;
                        }
                    }
                }
                if !moved {
                    break;
                }
                let pattern = self.build_pattern(&zc);
                if check_pattern(self.chain, self.platform, self.alloc, self.seq, &pattern).is_ok()
                {
                    return Some(pattern);
                }
            }
            None
        }

        fn build_pattern(&self, z: &[f64]) -> Pattern {
            let mut ops = Vec::with_capacity(z.len());
            for (idx, &(unit, dir)) in self.order.iter().enumerate() {
                let d = match dir {
                    Dir::Forward => self.seq.units()[unit].forward_time,
                    Dir::Backward => self.seq.units()[unit].backward_time,
                };
                ops.push(fold(unit, dir, z[idx], d, self.seq, self.period));
            }
            Pattern {
                period: self.period,
                ops,
            }
        }
    }

    let mut dfs = Dfs {
        chain,
        platform,
        alloc,
        seq,
        order: &order,
        period,
        cfg,
        nodes: 0,
    };
    let mut z = Vec::with_capacity(2 * n);
    let mut timelines = std::collections::HashMap::new();
    dfs.go(0, &mut z, &mut timelines)
}

/// Fold an absolute time into `(start, shift)` consistently with the
/// checker's tolerance.
fn fold(unit: usize, dir: Dir, z: f64, d: f64, seq: &UnitSequence, period: f64) -> Op {
    let laps = (z / period).floor().max(0.0);
    let mut start = z - laps * period;
    let mut shift = laps as u64;
    if period - start <= EPS {
        start = 0.0;
        shift += 1;
    }
    if start < 0.0 {
        start = 0.0;
    }
    Op {
        unit,
        dir,
        start,
        duration: d,
        shift,
        resource: seq.units()[unit].resource,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Layer, Partition, Stage};

    fn chain(costs: &[(f64, f64)], act: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, 0, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn contiguous_allocation_schedules_at_load_bound() {
        let c = chain(&[(2.0, 2.0), (2.0, 2.0), (2.0, 2.0)], 4);
        let platform = Platform::new(3, 1 << 40, 4.0).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        let seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        let t = seq.max_unit_load();
        let p = schedule_at_period(&c, &platform, &alloc, &seq, t, &PlaceConfig::default());
        assert!(p.is_some());
    }

    #[test]
    fn special_gpu_with_two_stages_schedules() {
        // 4 layers; GPU0 holds stages [0,1) and [2,3); GPU1 and GPU2 one each.
        let c = chain(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0)], 2);
        let platform = Platform::new(3, 1 << 40, 1000.0).unwrap();
        let alloc = Allocation::new(
            vec![
                Stage {
                    layers: 0..1,
                    gpu: 0,
                },
                Stage {
                    layers: 1..2,
                    gpu: 1,
                },
                Stage {
                    layers: 2..3,
                    gpu: 0,
                },
                Stage {
                    layers: 3..4,
                    gpu: 2,
                },
            ],
            4,
            3,
        )
        .unwrap();
        let seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        // GPU0 load = 4; comms tiny. Period 4.2 should be schedulable.
        let p = schedule_at_period(&c, &platform, &alloc, &seq, 4.2, &PlaceConfig::default());
        assert!(p.is_some());
    }

    #[test]
    fn overloaded_resource_is_rejected_fast() {
        let c = chain(&[(5.0, 5.0), (5.0, 5.0)], 2);
        let platform = Platform::new(2, 1 << 40, 1000.0).unwrap();
        let alloc = Allocation::new(
            vec![
                Stage {
                    layers: 0..1,
                    gpu: 0,
                },
                Stage {
                    layers: 1..2,
                    gpu: 0,
                },
            ],
            2,
            2,
        )
        .unwrap();
        let seq = UnitSequence::from_allocation(&c, &platform, &alloc);
        assert!(
            schedule_at_period(&c, &platform, &alloc, &seq, 10.0, &PlaceConfig::default())
                .is_none()
        );
        assert!(
            schedule_at_period(&c, &platform, &alloc, &seq, 20.0, &PlaceConfig::default())
                .is_some()
        );
    }

    #[test]
    fn memory_limit_rejects_tight_periods() {
        let c = chain(&[(2.0, 2.0), (2.0, 2.0)], 1000);
        // comm one-way = 1000/1000 = 1 → cut load 2.
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        // memory: stage0 static buffer 2000 + k·1000 activations
        let tight = Platform::new(2, 3100, 1000.0).unwrap();
        let seq = UnitSequence::from_allocation(&c, &tight, &alloc);
        // At T=4: stage0 must hold 2 live batches (group 2) → 4000 > 3100.
        assert!(
            schedule_at_period(&c, &tight, &alloc, &seq, 4.0, &PlaceConfig::default()).is_none()
        );
        // At T=10 (single group) one live batch → 3000 ≤ 3100.
        assert!(
            schedule_at_period(&c, &tight, &alloc, &seq, 10.0, &PlaceConfig::default()).is_some()
        );
    }
}
