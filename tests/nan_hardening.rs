//! NaN/∞ hardening of the planning path: hostile layer timings must be
//! rejected at `Chain::new` with a descriptive error, and any chain that
//! *does* validate must plan to `Ok` or `Err` — never a panic — no
//! matter how extreme its finite values are.

use proptest::prelude::*;

use madpipe::core::{madpipe_plan, PlannerConfig};
use madpipe::model::ModelError;
use madpipe::{Chain, Layer, Platform};

/// A pool of adversarial timing values: ordinary ones, zero, huge finite
/// values whose sums overflow to ∞, and the non-finite/negative values
/// `Chain::new` must refuse.
const TIMINGS: [f64; 9] = [
    1e-3,
    0.5,
    0.0,
    1e300,
    f64::MAX,
    -1.0,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

fn is_bad(v: f64) -> bool {
    !v.is_finite() || v < 0.0
}

/// Layer specs as indices into the pool (the shim has no `select`).
fn arb_specs() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..TIMINGS.len(), 0usize..TIMINGS.len()), 1..=5)
}

fn build_layers(specs: &[(usize, usize)]) -> Vec<Layer> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(fi, bi))| {
            Layer::new(format!("l{i}"), TIMINGS[fi], TIMINGS[bi], 1 << 16, 1 << 20)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Chain::new` accepts exactly the chains whose every timing is
    /// finite and non-negative, and names the first offending layer.
    #[test]
    fn chain_new_rejects_exactly_the_malformed_layers(specs in arb_specs()) {
        let any_bad = specs
            .iter()
            .any(|&(fi, bi)| is_bad(TIMINGS[fi]) || is_bad(TIMINGS[bi]));
        let first_bad = specs
            .iter()
            .position(|&(fi, bi)| is_bad(TIMINGS[fi]) || is_bad(TIMINGS[bi]));
        match Chain::new("t", 1 << 20, build_layers(&specs)) {
            Ok(_) => prop_assert!(!any_bad, "bad layer accepted: {specs:?}"),
            Err(ModelError::MalformedLayer { index, detail }) => {
                prop_assert_eq!(Some(index), first_bad, "wrong layer blamed");
                prop_assert!(
                    detail.contains("finite") || detail.contains("non-negative"),
                    "undescriptive error: {}",
                    detail
                );
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    /// Whatever validates, plans without panicking — huge finite sums
    /// that overflow to ∞ come back as a descriptive `Err`, and no NaN
    /// ever reaches the DP, the scheduler or the event heap.
    #[test]
    fn accepted_chains_plan_to_ok_or_err_never_panic(specs in arb_specs()) {
        let Ok(chain) = Chain::new("t", 1 << 20, build_layers(&specs)) else {
            return Ok(()); // rejection covered by the test above
        };
        let platform = Platform::gb(2, 8, 12.0).unwrap();
        let cfg = PlannerConfig::default();
        // Must return, not panic; both outcomes are legitimate.
        let _ = madpipe_plan(&chain, &platform, &cfg);
    }
}
