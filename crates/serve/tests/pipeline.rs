//! Protocol-framing tests for the reactor: the wire patterns a
//! pipelining client produces. Partial reads, several requests in one
//! TCP segment, one request smeared over many segments, an oversized
//! line in the middle of a pipeline — in every case responses come back
//! complete, in request order, on a connection that survives.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_json::{ToJson, Value};
use madpipe_model::{Chain, Layer, Platform};
use madpipe_serve::{ServeConfig, Server};

/// Same deterministic instance family as the integration tests.
fn instance(seed: u64) -> (Chain, Platform) {
    let layers = (0..6)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (4 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    let chain = Chain::new(format!("net{seed}"), 1 << 20, layers).unwrap();
    let platform = Platform::gb(4, 2, 12.0).unwrap();
    (chain, platform)
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

fn start_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        panic_marker: None,
        ..ServeConfig::default()
    })
    .expect("bind")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_json(reader: &mut BufReader<TcpStream>) -> Value {
    let mut l = String::new();
    reader.read_line(&mut l).expect("read response");
    assert!(!l.is_empty(), "server hung up mid-pipeline");
    Value::parse(l.trim()).expect("response is JSON")
}

/// The f64 bits of the served period — the tag that proves response `i`
/// answers request `i` (distinct instances have distinct periods).
fn served_period_bits(v: &Value) -> u64 {
    v.field("plan")
        .unwrap()
        .field("period")
        .unwrap()
        .as_f64()
        .unwrap()
        .to_bits()
}

/// Offline ground truth for the same instance.
fn offline_period_bits(chain: &Chain, platform: &Platform) -> u64 {
    madpipe_plan(chain, platform, &PlannerConfig::default())
        .expect("offline plan")
        .period()
        .to_bits()
}

#[test]
fn many_requests_in_one_segment_are_answered_in_order() {
    let server = start_server();
    let (mut stream, mut reader) = connect(server.local_addr());

    // Two rounds of 3 distinct plans, each round written as ONE payload:
    // the reactor must split the segment into lines and answer each, in
    // order. The rounds are separated by a read barrier — within one
    // pipelined batch a repeat may race its original to the cache (both
    // workers plan concurrently), but once round 1's responses are back
    // the cache holds every instance, so round 2 must be all hits.
    let instances: Vec<(Chain, Platform)> = (0..3).map(instance).collect();
    for round in 0..2 {
        let mut payload = String::new();
        let mut expect = Vec::new();
        for (chain, platform) in &instances {
            payload.push_str(&plan_line(chain, platform));
            payload.push('\n');
            expect.push(offline_period_bits(chain, platform));
        }
        stream.write_all(payload.as_bytes()).unwrap();

        for (i, bits) in expect.iter().enumerate() {
            let v = read_json(&mut reader);
            assert_eq!(
                v.field("ok").unwrap(),
                &Value::Bool(true),
                "round {round} response {i}: {}",
                v.to_string_compact()
            );
            assert_eq!(
                served_period_bits(&v),
                *bits,
                "round {round} response {i} out of order"
            );
            if round > 0 {
                assert_eq!(
                    v.field("cached").unwrap(),
                    &Value::Bool(true),
                    "second round must be cache hits"
                );
            }
        }
    }
    assert_eq!(server.registry().counter("serve.requests.plan"), 6);

    server.shutdown();
    server.join();
}

#[test]
fn a_request_split_across_segments_is_reassembled() {
    let server = start_server();
    let (mut stream, mut reader) = connect(server.local_addr());
    let (chain, platform) = instance(11);
    let line = plan_line(&chain, &platform);
    let bytes = line.as_bytes();

    // Dribble the request in 7 segments with pauses — the reactor sees
    // many partial reads and must buffer until the newline lands.
    for chunk in bytes.chunks(bytes.len() / 7 + 1) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    stream.write_all(b"\n").unwrap();

    let v = read_json(&mut reader);
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(
        served_period_bits(&v),
        offline_period_bits(&chain, &platform)
    );

    server.shutdown();
    server.join();
}

#[test]
fn pipeline_tail_split_across_segments_still_answers_in_order() {
    let server = start_server();
    let (mut stream, mut reader) = connect(server.local_addr());
    let (a, p) = instance(21);
    let (b, _) = instance(22);

    // Segment 1 carries request A complete plus the first half of B;
    // segment 2 the rest of B. Two in-order responses.
    let line_a = plan_line(&a, &p);
    let line_b = plan_line(&b, &p);
    let cut = line_b.len() / 2;
    stream
        .write_all(format!("{line_a}\n{}", &line_b[..cut]).as_bytes())
        .unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(10));
    stream
        .write_all(format!("{}\n", &line_b[cut..]).as_bytes())
        .unwrap();

    let first = read_json(&mut reader);
    let second = read_json(&mut reader);
    assert_eq!(served_period_bits(&first), offline_period_bits(&a, &p));
    assert_eq!(served_period_bits(&second), offline_period_bits(&b, &p));

    server.shutdown();
    server.join();
}

#[test]
fn oversized_line_mid_pipeline_is_rejected_and_the_rest_served() {
    let server = start_server();
    let (mut stream, mut reader) = connect(server.local_addr());
    let (chain, platform) = instance(31);
    let good = plan_line(&chain, &platform);

    // good request → ping → a 1.5 MiB junk line → another good request,
    // all pipelined in one write. Expected responses, in order: the
    // plan, the pong, a malformed rejection, the plan again (as a cache
    // hit) — and the connection survives throughout.
    let junk = "x".repeat(3 << 19);
    let payload = format!("{good}\n{{\"cmd\":\"ping\"}}\n{junk}\n{good}\n");
    stream.write_all(payload.as_bytes()).unwrap();

    let first = read_json(&mut reader);
    assert_eq!(first.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(
        served_period_bits(&first),
        offline_period_bits(&chain, &platform)
    );

    let pong = read_json(&mut reader);
    assert_eq!(pong.field("pong").unwrap(), &Value::Bool(true));

    let rejected = read_json(&mut reader);
    assert_eq!(rejected.field("ok").unwrap(), &Value::Bool(false));
    let err = rejected.field("error").unwrap();
    assert_eq!(err.field("kind").unwrap().as_str(), Ok("malformed"));
    assert!(err
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("exceeds"));

    let last = read_json(&mut reader);
    assert_eq!(
        last.field("ok").unwrap(),
        &Value::Bool(true),
        "request after the oversized line must be served: {}",
        last.to_string_compact()
    );
    assert_eq!(
        served_period_bits(&last),
        offline_period_bits(&chain, &platform)
    );
    assert_eq!(server.registry().counter("serve.errors.oversized"), 1);

    // With the pipeline drained the instance is certainly cached — the
    // connection that swallowed an oversized line still serves hits.
    stream.write_all(format!("{good}\n").as_bytes()).unwrap();
    let hit = read_json(&mut reader);
    assert_eq!(hit.field("cached").unwrap(), &Value::Bool(true));

    server.shutdown();
    server.join();
}

#[test]
fn interleaved_commands_pipeline_in_order() {
    let server = start_server();
    let (mut stream, mut reader) = connect(server.local_addr());
    let (chain, platform) = instance(41);
    let good = plan_line(&chain, &platform);

    // Control commands and planning interleave; the plan is slow (a
    // worker computes it) while ping/health are answered inline by the
    // reactor — yet the responses must come back in request order, not
    // completion order.
    let payload = format!("{{\"cmd\":\"ping\"}}\n{good}\n{{\"cmd\":\"health\"}}\n{good}\n");
    stream.write_all(payload.as_bytes()).unwrap();

    let pong = read_json(&mut reader);
    assert_eq!(pong.field("pong").unwrap(), &Value::Bool(true));
    let plan = read_json(&mut reader);
    assert_eq!(plan.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(plan.field("cached").unwrap(), &Value::Bool(false));
    let health = read_json(&mut reader);
    assert!(
        health.field("health").is_ok(),
        "third response must be the health report, got {}",
        health.to_string_compact()
    );
    // The repeated plan pipelines with the first, so the two workers may
    // compute it concurrently — cached is not asserted here, only order
    // and bit-identity.
    let repeat = read_json(&mut reader);
    assert_eq!(repeat.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(
        served_period_bits(&repeat),
        offline_period_bits(&chain, &platform)
    );

    // Drained, the instance must be a hit.
    stream.write_all(format!("{good}\n").as_bytes()).unwrap();
    let hit = read_json(&mut reader);
    assert_eq!(hit.field("cached").unwrap(), &Value::Bool(true));

    server.shutdown();
    server.join();
}
