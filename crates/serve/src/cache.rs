//! Sharded LRU cache of finished plans, keyed by the canonical instance
//! string.
//!
//! The 64-bit FNV-1a hash of the key only selects a shard; inside the
//! shard the *full* canonical string is the map key, so a hash collision
//! costs a shared lock at worst, never a wrong plan. Recency is a
//! monotone stamp from one shared counter; eviction scans the (small,
//! bounded) shard for the minimum stamp — O(capacity/shards), no
//! intrusive list to get wrong under contention.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use madpipe_json::Value;

const SHARDS: usize = 8;

struct Entry {
    stamp: u64,
    plan: Arc<Value>,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
}

/// The plan cache. `capacity == 0` disables caching entirely (every
/// lookup misses, every insert is dropped).
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    clock: AtomicU64,
    per_shard: usize,
}

/// Shard locks ignore poisoning: a panicking worker may die while a
/// guard is live, but every guarded update here is a single-step map
/// mutation, so the shard is consistent at any unwind point — and the
/// cache must keep serving the surviving workers.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a, 64-bit — enough to spread keys over 8 shards.
fn shard_of(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (rounded up to a
    /// multiple of the shard count; 0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            per_shard: capacity.div_ceil(SHARDS),
        }
    }

    /// Look up a plan, refreshing its recency stamp on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<Value>> {
        if self.per_shard == 0 {
            return None;
        }
        let mut shard = lock_shard(&self.shards[shard_of(key)]);
        let entry = shard.map.get_mut(key)?;
        entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.plan))
    }

    /// Insert (or refresh) a plan; returns how many entries were evicted
    /// to make room (0 or 1).
    pub fn insert(&self, key: String, plan: Arc<Value>) -> u64 {
        if self.per_shard == 0 {
            return 0;
        }
        let mut shard = lock_shard(&self.shards[shard_of(&key)]);
        // The stamp must be drawn *inside* the shard lock (as `get` does).
        // Drawn outside, an insert could take stamp N, stall, and store N
        // only after concurrent hits refreshed sibling entries with
        // N+1… — the *newest* write in the shard would then carry the
        // shard's minimum stamp and be the next eviction victim. With
        // every draw under the lock, stamps within a shard are monotone
        // in write order, which is exactly what the min-stamp scan needs;
        // `Relaxed` is fine because the mutex already orders the
        // cross-thread accesses — the counter is only a tie-free source
        // of unique values.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let fresh = !shard.map.contains_key(&key);
        let mut evicted = 0;
        if fresh && shard.map.len() >= self.per_shard {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
                evicted = 1;
            }
        }
        shard.map.insert(key, Entry { stamp, plan });
        evicted
    }

    /// Insert a plan only if the key is absent — the gossip-warming
    /// path. Returns `(inserted, evicted)`. Unlike [`PlanCache::insert`]
    /// a repeat does *not* refresh the entry's recency stamp: a peer
    /// re-shipping a key this cache already holds says nothing about
    /// local demand, so it must not protect the entry from eviction.
    pub fn warm(&self, key: String, plan: Arc<Value>) -> (bool, u64) {
        if self.per_shard == 0 {
            return (false, 0);
        }
        let mut shard = lock_shard(&self.shards[shard_of(&key)]);
        if shard.map.contains_key(&key) {
            return (false, 0);
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0;
        if shard.map.len() >= self.per_shard {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
                evicted = 1;
            }
        }
        shard.map.insert(key, Entry { stamp, plan });
        (true, evicted)
    }

    /// The `k` most recently touched plans across all shards, hottest
    /// first — the gossip sender's working set.
    pub fn hottest(&self, k: usize) -> Vec<(String, Arc<Value>)> {
        if self.per_shard == 0 || k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(u64, String, Arc<Value>)> = Vec::new();
        for shard in &self.shards {
            let shard = lock_shard(shard);
            for (key, e) in &shard.map {
                all.push((e.stamp, key.clone(), Arc::clone(&e.plan)));
            }
        }
        all.sort_by_key(|e| std::cmp::Reverse(e.0));
        all.truncate(k);
        all.into_iter().map(|(_, key, plan)| (key, plan)).collect()
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: u64) -> Arc<Value> {
        Arc::new(Value::UInt(n))
    }

    #[test]
    fn hit_miss_and_refresh() {
        let c = PlanCache::new(16);
        assert!(c.get("a").is_none());
        c.insert("a".into(), plan(1));
        assert_eq!(c.get("a").as_deref(), Some(&Value::UInt(1)));
        // Re-insert replaces without eviction.
        assert_eq!(c.insert("a".into(), plan(2)), 0);
        assert_eq!(c.get("a").as_deref(), Some(&Value::UInt(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // Capacity 8 → one slot per shard: any two same-shard keys fight
        // for it, and the older one must lose.
        let c = PlanCache::new(8);
        let mut keys: Vec<String> = Vec::new();
        let mut i = 0;
        while keys.len() < 2 {
            let k = format!("k{i}");
            if shard_of(&k) == shard_of("k0") {
                keys.push(k);
            }
            i += 1;
        }
        c.insert(keys[0].clone(), plan(0));
        assert_eq!(c.insert(keys[1].clone(), plan(1)), 1, "one eviction");
        assert!(c.get(&keys[0]).is_none(), "oldest evicted");
        assert!(c.get(&keys[1]).is_some());
    }

    #[test]
    fn get_refreshes_recency() {
        let c = PlanCache::new(8);
        let mut same: Vec<String> = Vec::new();
        let mut i = 0;
        while same.len() < 3 {
            let k = format!("r{i}");
            if shard_of(&k) == shard_of("r0") {
                same.push(k);
            }
            i += 1;
        }
        c.insert(same[0].clone(), plan(0));
        // Shard holds 1 entry; touching [0] then inserting [1] evicts [0]
        // anyway (capacity 1), so use capacity 16 → 2 per shard.
        let c = PlanCache::new(16);
        c.insert(same[0].clone(), plan(0));
        c.insert(same[1].clone(), plan(1));
        assert!(c.get(&same[0]).is_some()); // refresh [0]
        c.insert(same[2].clone(), plan(2)); // shard full → evicts [1]
        assert!(c.get(&same[0]).is_some(), "refreshed entry survives");
        assert!(c.get(&same[1]).is_none(), "stale entry evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = PlanCache::new(0);
        assert_eq!(c.insert("a".into(), plan(1)), 0);
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_eviction_never_exceeds_capacity_and_hits_stay_coherent() {
        // 8 threads hammer a 16-slot cache with 64 distinct keys: far
        // more candidates than capacity, so eviction runs constantly
        // under real contention. Invariants: the size bound holds at
        // every observation point, and a hit always returns the value
        // that was inserted under that key (never another key's plan).
        let c = Arc::new(PlanCache::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        let n = (t * 7 + round * 13) % 64;
                        let key = format!("k{n}");
                        c.insert(key.clone(), plan(n));
                        if let Some(v) = c.get(&key) {
                            assert_eq!(*v, Value::UInt(n), "hit for {key} served a foreign plan");
                        }
                        assert!(c.len() <= 16, "capacity exceeded: {}", c.len());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(!c.is_empty());
        assert!(c.len() <= 16);
    }

    #[test]
    fn a_just_refreshed_entry_is_never_the_eviction_victim() {
        // Regression test for the stale-stamp race: `insert` used to draw
        // its recency stamp *outside* the shard lock, so an entry
        // refreshed by concurrent hits could still lose an eviction scan
        // to an insert holding an older pre-drawn stamp. Lockstep rounds:
        // several hitter threads refresh `protected` concurrently, then
        // (ordered by a barrier) the main thread inserts a fresh
        // same-shard key into a full shard. The eviction must always pick
        // the cold filler, never the entry that was just refreshed.
        use std::sync::Barrier;

        // Capacity 16 → 2 slots per shard; collect same-shard keys.
        let mut same: Vec<String> = Vec::new();
        let mut i = 0;
        while same.len() < 18 {
            let k = format!("v{i}");
            if shard_of(&k) == shard_of("v0") {
                same.push(k);
            }
            i += 1;
        }
        let protected = same.remove(0);
        let rounds = same.len() - 1;

        let c = Arc::new(PlanCache::new(16));
        c.insert(protected.clone(), plan(0));
        c.insert(same[0].clone(), plan(1));

        const HITTERS: usize = 4;
        let barrier = Arc::new(Barrier::new(HITTERS + 1));
        let hitters: Vec<_> = (0..HITTERS)
            .map(|_| {
                let c = Arc::clone(&c);
                let b = Arc::clone(&barrier);
                let p = protected.clone();
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        b.wait(); // round open
                                  // This hit both *checks* the entry survived the
                                  // previous round's eviction and refreshes it
                                  // ahead of this round's insert.
                        assert!(c.get(&p).is_some(), "refreshed entry was evicted");
                        b.wait(); // hits complete
                        b.wait(); // insert complete
                    }
                })
            })
            .collect();

        for filler in same.iter().skip(1) {
            barrier.wait(); // round open
            barrier.wait(); // hits complete
                            // Shard is full (protected + previous filler): this insert
                            // must evict, and the victim must be the cold filler.
            assert_eq!(
                c.insert(filler.clone(), plan(9)),
                1,
                "expected one eviction"
            );
            barrier.wait(); // insert complete
        }
        for t in hitters {
            t.join().unwrap();
        }
        assert!(
            c.get(&protected).is_some(),
            "refreshed entry survived every eviction round"
        );
    }

    #[test]
    fn survives_a_panic_while_a_guard_is_live() {
        // A thread that panics between cache calls must not poison the
        // shards for everyone else (worker panics are real: the serve
        // daemon catches and resumes them with cache handles in scope).
        let c = Arc::new(PlanCache::new(16));
        c.insert("stays".into(), plan(7));
        let c2 = Arc::clone(&c);
        let result = std::thread::spawn(move || {
            c2.insert("doomed".into(), plan(1));
            panic!("chaos");
        })
        .join();
        assert!(result.is_err());
        assert_eq!(c.get("stays").as_deref(), Some(&Value::UInt(7)));
        c.insert("after".into(), plan(2));
        assert_eq!(c.get("after").as_deref(), Some(&Value::UInt(2)));
    }
}
