//! `any::<T>()` for the handful of types the tests request.

use crate::strategy::{Index, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}
