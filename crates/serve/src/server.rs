//! The planning daemon: a nonblocking acceptor, one thread per
//! connection, and a bounded worker pool that owns the DP sessions.
//!
//! Life of a `plan` request:
//!
//! 1. The connection thread parses and validates the line; anything
//!    unusable is answered with a structured error and the connection
//!    stays open.
//! 2. The canonical key probes the [`PlanCache`]; a hit is answered
//!    immediately (`cached:true`).
//! 3. A miss becomes a [`Job`] on the bounded queue. A full queue is an
//!    immediate `overloaded` reject — the server sheds load instead of
//!    building an unbounded backlog.
//! 4. A worker picks the job up, builds (or reuses) a [`ProbeSession`]
//!    for the instance and plans. Consecutive same-instance jobs are
//!    served through the same warm session, which is both faster and —
//!    because probes are pure functions of (chain, platform, T̂) —
//!    bit-identical to a cold `madpipe plan`.
//! 5. The connection thread waits with the request deadline; if the
//!    worker misses it, the client gets a `timeout` error and the worker
//!    result (if any) still lands in the cache.
//!
//! Draining: `shutdown()` (or a `{"cmd":"shutdown"}` request, or
//! SIGTERM/SIGINT via [`install_signal_handlers`]) flips one flag. The
//! acceptor stops accepting and joins the connection threads, which
//! finish their in-flight request and hang up; dropping the last job
//! sender lets the workers drain the queue and exit. `join()` then
//! returns — no request is abandoned mid-write.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use madpipe_core::{madpipe_plan_with_session, ProbeSession};
use madpipe_json::Value;
use madpipe_obs::Registry;

use crate::cache::PlanCache;
use crate::protocol::{
    error_response, ok_response, parse_request, plan_response, plan_to_json, PlanRequest, Request,
    ServeError,
};

/// Daemon configuration (the CLI's `--addr/--threads/--cache-entries/
/// --timeout-ms` flags map 1:1 onto these fields).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4835` (`:0` picks a free port).
    pub addr: String,
    /// Planner worker threads.
    pub threads: usize,
    /// Total plan-cache capacity (0 disables the cache).
    pub cache_entries: usize,
    /// Per-request deadline, from parse to response.
    pub timeout: Duration,
    /// Worker queue depth; 0 means `4 × threads`.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4835".into(),
            threads: 2,
            cache_entries: 256,
            timeout: Duration::from_secs(30),
            queue_depth: 0,
        }
    }
}

/// Keep request lines bounded so a hostile client cannot balloon the
/// connection buffer.
const MAX_LINE_BYTES: usize = 16 << 20;

/// How often idle loops re-check the drain flag.
const POLL: Duration = Duration::from_millis(50);

type PlanOutcome = Result<(Arc<Value>, bool), ServeError>;

struct Job {
    req: Box<PlanRequest>,
    deadline: Instant,
    reply: SyncSender<PlanOutcome>,
}

struct Ctx {
    draining: AtomicBool,
    registry: Registry,
    cache: PlanCache,
    timeout: Duration,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || term_requested()
    }
}

/// A running daemon. Dropping it without `join()` leaves the threads
/// running; call [`Server::shutdown`] then [`Server::join`] to drain.
pub struct Server {
    local_addr: SocketAddr,
    ctx: Arc<Ctx>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Returns once the listener is live —
    /// a client may connect as soon as this returns.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            draining: AtomicBool::new(false),
            registry: Registry::new(),
            cache: PlanCache::new(cfg.cache_entries),
            timeout: cfg.timeout,
        });

        let threads = cfg.threads.max(1);
        let depth = if cfg.queue_depth == 0 {
            threads * 4
        } else {
            cfg.queue_depth
        };
        let (jobs_tx, jobs_rx) = mpsc::sync_channel::<Job>(depth);
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let workers = (0..threads)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let rx = Arc::clone(&jobs_rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &ctx, jobs_tx))
                .expect("spawn acceptor")
        };

        Ok(Server {
            local_addr,
            ctx,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics registry (counters named `serve.*`).
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    /// Ask the server to drain: stop accepting, finish in-flight
    /// requests, let the workers empty the queue.
    pub fn shutdown(&self) {
        self.ctx.draining.store(true, Ordering::SeqCst);
    }

    /// True once a drain was requested (by [`Server::shutdown`], a
    /// `shutdown` request, or a signal).
    pub fn is_draining(&self) -> bool {
        self.ctx.draining()
    }

    /// Block until the acceptor, every connection and every worker have
    /// exited. Call [`Server::shutdown`] first (or send `shutdown`).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, ctx: &Arc<Ctx>, jobs: SyncSender<Job>) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is nonblocking; the per-connection
                // sockets use read timeouts instead. One-line responses
                // must not sit in Nagle's buffer waiting for an ACK.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let ctx = Arc::clone(ctx);
                let jobs = jobs.clone();
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection_loop(&stream, &ctx, &jobs))
                    .expect("spawn connection");
                handles.push(handle);
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Drain: no new connections; wait for the open ones, then release
    // the workers by dropping the last job sender.
    for h in handles {
        let _ = h.join();
    }
    drop(jobs);
}

fn connection_loop(stream: &TcpStream, ctx: &Arc<Ctx>, jobs: &SyncSender<Job>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match (&mut &*stream).read(&mut chunk) {
            Ok(0) => return, // peer hung up
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_LINE_BYTES {
                    let err = ServeError::malformed("request line too large");
                    let _ = write_line(stream, &error_response(&err));
                    return;
                }
                while let Some(pos) = buf.iter().position(|b| *b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..pos.min(line.len())]).into_owned();
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    match handle_line(trimmed, ctx, jobs) {
                        Some(response) => {
                            if write_line(stream, &response).is_err() {
                                return;
                            }
                        }
                        None => return,
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle: hang up only between requests, so a drain never
                // cuts a response in half.
                if ctx.draining() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &TcpStream, line: &str) -> std::io::Result<()> {
    let mut w = stream;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Handle one request line; `None` means "close the connection".
fn handle_line(line: &str, ctx: &Arc<Ctx>, jobs: &SyncSender<Job>) -> Option<String> {
    let _span = madpipe_obs::span("serve.request");
    ctx.registry.inc("serve.requests");
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(err) => {
            ctx.registry.inc(match err.kind {
                "invalid" => "serve.errors.invalid",
                _ => "serve.errors.malformed",
            });
            return Some(error_response(&err));
        }
    };
    match req {
        Request::Ping => Some(ok_response("pong", Value::Bool(true))),
        Request::Metrics => {
            let text = ctx.registry.snapshot().to_prometheus();
            Some(ok_response("metrics", Value::Str(text)))
        }
        Request::Shutdown => {
            ctx.draining.store(true, Ordering::SeqCst);
            Some(ok_response("draining", Value::Bool(true)))
        }
        Request::Plan(plan) => Some(handle_plan(*plan, ctx, jobs)),
    }
}

fn handle_plan(req: PlanRequest, ctx: &Arc<Ctx>, jobs: &SyncSender<Job>) -> String {
    ctx.registry.inc("serve.requests.plan");
    if let Some(plan) = ctx.cache.get(&req.canonical) {
        ctx.registry.inc("serve.cache.hits");
        return plan_response(&plan, true);
    }
    ctx.registry.inc("serve.cache.misses");
    if ctx.draining() {
        return error_response(&ServeError::unavailable());
    }
    let deadline = Instant::now() + ctx.timeout;
    let (reply_tx, reply_rx) = mpsc::sync_channel::<PlanOutcome>(1);
    let job = Job {
        req: Box::new(req),
        deadline,
        reply: reply_tx,
    };
    match jobs.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            ctx.registry.inc("serve.rejects");
            return error_response(&ServeError::overloaded());
        }
        Err(TrySendError::Disconnected(_)) => {
            return error_response(&ServeError::unavailable());
        }
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    match reply_rx.recv_timeout(remaining) {
        Ok(Ok((plan, cached))) => plan_response(&plan, cached),
        Ok(Err(err)) => error_response(&err),
        Err(_) => {
            ctx.registry.inc("serve.timeouts");
            error_response(&ServeError::timeout())
        }
    }
}

fn worker_loop(ctx: &Arc<Ctx>, rx: &Arc<Mutex<Receiver<Job>>>) {
    let mut pending: Option<Job> = None;
    loop {
        let job = match pending.take() {
            Some(j) => j,
            None => {
                let recv = rx.lock().unwrap().recv();
                match recv {
                    Ok(j) => j,
                    // All senders gone: the queue is drained, exit.
                    Err(_) => return,
                }
            }
        };
        serve_instance(ctx, rx, job, &mut pending);
    }
}

/// Plan `job`'s instance, then keep serving consecutive jobs for the
/// *same* canonical instance through the same warm [`ProbeSession`]:
/// repeated probes cost a memo lookup, and the result is bit-identical
/// to a cold run because every probe is a pure function of
/// (chain, platform, T̂). A job for a different instance is handed back
/// via `pending`.
fn serve_instance(
    ctx: &Arc<Ctx>,
    rx: &Arc<Mutex<Receiver<Job>>>,
    job: Job,
    pending: &mut Option<Job>,
) {
    if Instant::now() >= job.deadline {
        // Sat in the queue past its deadline; the client already gave up.
        ctx.registry.inc("serve.expired");
        let _ = job.reply.try_send(Err(ServeError::timeout()));
        return;
    }
    let PlanRequest {
        chain,
        platform,
        cfg,
        canonical,
    } = *job.req;
    let mut reply = job.reply;
    let mut session = ProbeSession::new(&chain, &platform, &cfg.algorithm1.discretization);
    loop {
        // Re-probe the cache: another worker may have finished the same
        // instance while this job sat in the queue.
        let outcome: PlanOutcome = match ctx.cache.get(&canonical) {
            Some(plan) => Ok((plan, true)),
            None => {
                let t0 = Instant::now();
                let (result, _stats) = madpipe_plan_with_session(&mut session, &cfg);
                ctx.registry
                    .observe("serve.plan.seconds", t0.elapsed().as_secs_f64());
                ctx.registry.inc("serve.plans");
                match result {
                    Ok(plan) => {
                        let rendered = Arc::new(plan_to_json(&plan));
                        let evicted = ctx.cache.insert(canonical.clone(), Arc::clone(&rendered));
                        ctx.registry.add("serve.cache.evictions", evicted);
                        Ok((rendered, false))
                    }
                    Err(e) => Err(ServeError::plan(e.to_string())),
                }
            }
        };
        // The connection thread may have timed out and dropped the
        // receiver; the plan still went into the cache, so the retry
        // will hit.
        let _ = reply.try_send(outcome);

        // Lookahead: pull the next queued job without blocking; keep it
        // only if it is the same instance, otherwise hand it back.
        loop {
            let next = rx.lock().unwrap().try_recv();
            match next {
                Ok(j) if j.req.canonical == canonical => {
                    if Instant::now() >= j.deadline {
                        ctx.registry.inc("serve.expired");
                        let _ = j.reply.try_send(Err(ServeError::timeout()));
                        continue;
                    }
                    reply = j.reply;
                    break; // serve it through the warm session
                }
                Ok(j) => {
                    *pending = Some(j);
                    return;
                }
                Err(_) => return, // queue empty (or closed)
            }
        }
    }
}

// --- signal handling (no libc dependency) --------------------------------

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // `signal(2)` via a raw declaration — the only libc symbol the
        // daemon needs, not worth a dependency. The handler just flips
        // an atomic, which is async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_term);
            signal(SIGTERM, on_term);
        }
    }
}

/// Install SIGTERM/SIGINT handlers that request a graceful drain of
/// every running [`Server`] in this process. No-op on non-Unix hosts.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sig::install();
}

/// True once SIGTERM/SIGINT was received (always false when
/// [`install_signal_handlers`] was never called).
pub fn term_requested() -> bool {
    #[cfg(unix)]
    {
        sig::TERM.load(Ordering::SeqCst)
    }
    #[cfg(not(unix))]
    {
        false
    }
}
