//! Facade crate for the MadPipe reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so examples, integration
//! tests and downstream users can `use madpipe::...` without tracking the
//! internal crate layout.
//!
//! See the workspace README for a tour; the typical entry point is
//! [`core::planner`], which runs both the MadPipe pipeline and the
//! PipeDream baseline on a [`model::Chain`] + [`model::Platform`] pair.

pub use madpipe_core as core;
pub use madpipe_dnn as dnn;
pub use madpipe_model as model;
pub use madpipe_pipedream as pipedream;
pub use madpipe_schedule as schedule;
pub use madpipe_sim as sim;
pub use madpipe_solver as solver;

pub use madpipe_model::{Allocation, Chain, Layer, Partition, Platform, Resource, Stage};
