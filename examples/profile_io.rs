//! Profile interchange: export a synthetic per-layer profile to JSON,
//! reload it (as an externally measured profile would be), and plan from
//! the file — the workflow for replacing the analytic cost model with
//! real measurements.
//!
//! ```sh
//! cargo run --release --example profile_io
//! ```

use madpipe::core::{madpipe_plan, PlannerConfig};
use madpipe::dnn::profile::Profile;
use madpipe::dnn::{inception_v3, GpuModel};
use madpipe::model::Platform;

fn main() {
    let gpu = GpuModel::default();
    let chain = inception_v3().profile(8, 1000, &gpu).unwrap();
    let profile = Profile {
        batch: 8,
        image_size: 1000,
        gpu: Some(gpu),
        chain,
    };

    let dir = std::env::temp_dir().join("madpipe-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inception_v3.json");
    profile.save(&path).unwrap();
    println!(
        "wrote {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );

    // …time passes; someone re-measures the network on real hardware and
    // hands us the file back…
    let loaded = Profile::load(&path).unwrap();
    println!(
        "loaded {}: {} layers, batch {}, image {}×{}",
        loaded.chain.name(),
        loaded.chain.len(),
        loaded.batch,
        loaded.image_size,
        loaded.image_size
    );

    let platform = Platform::gb(4, 8, 12.0).unwrap();
    let plan = madpipe_plan(&loaded.chain, &platform, &PlannerConfig::default()).unwrap();
    println!(
        "planned from file: period {:.1} ms/batch, {} stages, {} in flight",
        plan.period() * 1e3,
        plan.allocation.len(),
        plan.schedule.pattern.max_shift() + 1
    );

    // Per-layer dump, the numbers an external profiler must provide.
    println!("\nfirst five layers of the profile:");
    println!(
        "  {:<14} {:>9} {:>9} {:>12} {:>12}",
        "name", "u_F (ms)", "u_B (ms)", "W (MB)", "a (MB)"
    );
    for layer in loaded.chain.layers().iter().take(5) {
        println!(
            "  {:<14} {:>9.2} {:>9.2} {:>12.2} {:>12.1}",
            layer.name,
            layer.forward_time * 1e3,
            layer.backward_time * 1e3,
            layer.weight_bytes as f64 / 1e6,
            layer.activation_bytes as f64 / 1e6,
        );
    }
}
