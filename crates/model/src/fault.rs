//! Platform faults: the ways an execution platform can degrade under a
//! running pipeline, and the surviving [`Platform`] after each of them.
//!
//! A MadPipe plan is computed for a fixed `(P, M, β)`; production
//! clusters lose GPUs, shed memory to co-tenants, and see links slow
//! down. A [`PlatformFault`] names one such event; [`PlatformFault::apply`]
//! derives the platform that survives it, validated through
//! [`Platform::new`] so a fault can never produce a degenerate platform
//! silently — replanning on the survivor is then an ordinary planning
//! problem.

use madpipe_json::{FromJson, JsonError, ToJson, Value};

use crate::error::ModelError;
use crate::platform::Platform;

/// One degradation event on a homogeneous platform.
///
/// Faults are *monotone*: each strictly shrinks the platform, so a plan
/// feasible after the fault was feasible before it (the converse is what
/// replanning is for).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformFault {
    /// `count` GPUs drop out of the pool (the platform is homogeneous,
    /// so only the count matters, not which ones).
    GpuLoss { count: usize },
    /// Every GPU loses `fraction ∈ (0, 1)` of its memory, e.g. to a
    /// co-tenant or fragmentation: `M → (1 − fraction)·M`.
    MemoryReduction { fraction: f64 },
    /// Every link slows down by `fraction ∈ (0, 1)`:
    /// `β → (1 − fraction)·β`.
    LinkSlowdown { fraction: f64 },
}

impl PlatformFault {
    /// The platform that survives this fault, or an error when nothing
    /// usable survives (no GPU left, a non-finite fraction, …).
    pub fn apply(&self, platform: &Platform) -> Result<Platform, ModelError> {
        match *self {
            PlatformFault::GpuLoss { count } => {
                if count == 0 {
                    return Err(ModelError::BadFault {
                        detail: "gpu loss of 0 GPUs is not a fault".into(),
                    });
                }
                if count >= platform.n_gpus {
                    return Err(ModelError::BadFault {
                        detail: format!(
                            "losing {count} of {} GPUs leaves no survivor",
                            platform.n_gpus
                        ),
                    });
                }
                Platform::new(
                    platform.n_gpus - count,
                    platform.memory_bytes,
                    platform.bandwidth,
                )
            }
            PlatformFault::MemoryReduction { fraction } => {
                check_fraction("memory reduction", fraction)?;
                let surviving = (platform.memory_bytes as f64 * (1.0 - fraction)) as u64;
                if surviving == 0 {
                    return Err(ModelError::BadFault {
                        detail: format!(
                            "memory reduction {fraction} leaves zero bytes of {}",
                            platform.memory_bytes
                        ),
                    });
                }
                Platform::new(platform.n_gpus, surviving, platform.bandwidth)
            }
            PlatformFault::LinkSlowdown { fraction } => {
                check_fraction("link slowdown", fraction)?;
                Platform::new(
                    platform.n_gpus,
                    platform.memory_bytes,
                    platform.bandwidth * (1.0 - fraction),
                )
            }
        }
    }

    /// Stable machine-readable kind name (matches the JSON `kind` field
    /// and the `replan.fault.*` counter suffixes).
    pub fn kind(&self) -> &'static str {
        match self {
            PlatformFault::GpuLoss { .. } => "gpu_loss",
            PlatformFault::MemoryReduction { .. } => "memory_reduction",
            PlatformFault::LinkSlowdown { .. } => "link_slowdown",
        }
    }

    /// Parse a compact CLI spec: `gpu-loss:N` (alias `gpu:N`),
    /// `memory:F` (alias `mem:F`) and `link:F`, with `F` a fraction in
    /// `(0, 1)`. Magnitudes are validated here — a zero GPU count, a
    /// negative/NaN/out-of-range fraction, or trailing garbage after
    /// the number all fail at parse time, before any platform is
    /// consulted ([`PlatformFault::apply`] re-checks against the actual
    /// platform; parse-time rejection just fails sooner and names the
    /// spec).
    pub fn parse_spec(spec: &str) -> Result<Self, ModelError> {
        let bad = |why: &str| ModelError::BadFault {
            detail: format!("fault spec `{spec}`: {why}"),
        };
        let (kind, value) = spec
            .split_once(':')
            .ok_or_else(|| bad("expected KIND:VALUE (gpu-loss:N, memory:F, link:F)"))?;
        let fraction = |what: &str| -> Result<f64, ModelError> {
            let f: f64 = value
                .parse()
                .map_err(|_| bad(&format!("{what} fraction must be a number")))?;
            check_fraction(what, f)
                .map_err(|_| bad(&format!("{what} fraction must be in (0, 1), got `{value}`")))?;
            Ok(f)
        };
        match kind {
            "gpu-loss" | "gpu" => {
                let count: usize = value
                    .parse()
                    .map_err(|_| bad("GPU count must be a positive integer"))?;
                if count == 0 {
                    return Err(bad("gpu loss of 0 GPUs is not a fault"));
                }
                Ok(PlatformFault::GpuLoss { count })
            }
            "memory" | "mem" => Ok(PlatformFault::MemoryReduction {
                fraction: fraction("memory reduction")?,
            }),
            "link" => Ok(PlatformFault::LinkSlowdown {
                fraction: fraction("link slowdown")?,
            }),
            other => Err(bad(&format!(
                "unknown fault kind `{other}` (gpu-loss, memory, link)"
            ))),
        }
    }
}

fn check_fraction(what: &str, fraction: f64) -> Result<(), ModelError> {
    if !(fraction.is_finite() && fraction > 0.0 && fraction < 1.0) {
        return Err(ModelError::BadFault {
            detail: format!("{what} fraction must be in (0, 1), got {fraction}"),
        });
    }
    Ok(())
}

impl std::fmt::Display for PlatformFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformFault::GpuLoss { count } => write!(f, "loss of {count} GPU(s)"),
            PlatformFault::MemoryReduction { fraction } => {
                write!(f, "memory reduction of {:.0}%", fraction * 100.0)
            }
            PlatformFault::LinkSlowdown { fraction } => {
                write!(f, "link slowdown of {:.0}%", fraction * 100.0)
            }
        }
    }
}

impl ToJson for PlatformFault {
    fn to_json(&self) -> Value {
        let kind = ("kind".into(), Value::Str(self.kind().into()));
        match *self {
            PlatformFault::GpuLoss { count } => {
                Value::Object(vec![kind, ("count".into(), Value::UInt(count as u64))])
            }
            PlatformFault::MemoryReduction { fraction } => {
                Value::Object(vec![kind, ("fraction".into(), Value::Float(fraction))])
            }
            PlatformFault::LinkSlowdown { fraction } => {
                Value::Object(vec![kind, ("fraction".into(), Value::Float(fraction))])
            }
        }
    }
}

impl FromJson for PlatformFault {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let kind = v.field("kind")?.as_str()?;
        match kind {
            "gpu_loss" => Ok(PlatformFault::GpuLoss {
                count: v.field("count")?.as_u64()? as usize,
            }),
            "memory_reduction" => Ok(PlatformFault::MemoryReduction {
                fraction: v.field("fraction")?.as_f64()?,
            }),
            "link_slowdown" => Ok(PlatformFault::LinkSlowdown {
                fraction: v.field("fraction")?.as_f64()?,
            }),
            other => Err(JsonError::new(format!(
                "unknown fault kind `{other}` (gpu_loss, memory_reduction, link_slowdown)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new(4, 8 << 30, 12e9).unwrap()
    }

    #[test]
    fn gpu_loss_shrinks_the_pool() {
        let p = platform();
        let q = PlatformFault::GpuLoss { count: 1 }.apply(&p).unwrap();
        assert_eq!(q.n_gpus, 3);
        assert_eq!(q.memory_bytes, p.memory_bytes);
        assert_eq!(q.bandwidth, p.bandwidth);
        // Losing everything (or more) is rejected.
        assert!(PlatformFault::GpuLoss { count: 4 }.apply(&p).is_err());
        assert!(PlatformFault::GpuLoss { count: 9 }.apply(&p).is_err());
        assert!(PlatformFault::GpuLoss { count: 0 }.apply(&p).is_err());
    }

    #[test]
    fn memory_reduction_scales_every_gpu() {
        let p = platform();
        let q = PlatformFault::MemoryReduction { fraction: 0.25 }
            .apply(&p)
            .unwrap();
        assert_eq!(q.memory_bytes, 6 << 30);
        assert_eq!(q.n_gpus, p.n_gpus);
        for bad in [0.0, 1.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(
                PlatformFault::MemoryReduction { fraction: bad }
                    .apply(&p)
                    .is_err(),
                "fraction {bad} must be rejected"
            );
        }
    }

    #[test]
    fn link_slowdown_scales_bandwidth() {
        let p = platform();
        let q = PlatformFault::LinkSlowdown { fraction: 0.5 }
            .apply(&p)
            .unwrap();
        assert_eq!(q.bandwidth, 6e9);
        assert!(PlatformFault::LinkSlowdown { fraction: 1.0 }
            .apply(&p)
            .is_err());
    }

    #[test]
    fn spec_round_trip() {
        assert_eq!(
            PlatformFault::parse_spec("gpu-loss:2").unwrap(),
            PlatformFault::GpuLoss { count: 2 }
        );
        assert_eq!(
            PlatformFault::parse_spec("gpu:1").unwrap(),
            PlatformFault::GpuLoss { count: 1 }
        );
        assert_eq!(
            PlatformFault::parse_spec("memory:0.25").unwrap(),
            PlatformFault::MemoryReduction { fraction: 0.25 }
        );
        assert_eq!(
            PlatformFault::parse_spec("link:0.5").unwrap(),
            PlatformFault::LinkSlowdown { fraction: 0.5 }
        );
        for bad in ["", "gpu-loss", "warp:0.5", "gpu:x", "mem:y"] {
            assert!(PlatformFault::parse_spec(bad).is_err(), "`{bad}` must fail");
        }
    }

    #[test]
    fn spec_rejects_bad_kinds_with_a_named_error() {
        for spec in ["meteor:1", "gpu-gain:2", "memory-loss:0.5", ":0.5"] {
            let err = PlatformFault::parse_spec(spec).unwrap_err().to_string();
            assert!(
                err.contains(&format!("`{spec}`")),
                "error must quote the spec: {err}"
            );
            assert!(
                err.contains("unknown fault kind"),
                "`{spec}` should fail on the kind: {err}"
            );
        }
    }

    #[test]
    fn spec_rejects_bad_magnitudes_at_parse_time() {
        // Negative, zero, out-of-range and non-finite magnitudes fail
        // before any platform is consulted.
        for spec in [
            "gpu:0",
            "gpu:-1",
            "memory:-0.5",
            "memory:0",
            "memory:1",
            "memory:1.5",
            "memory:NaN",
            "memory:inf",
            "link:-0.01",
            "link:0.0",
            "link:1.0",
        ] {
            let err = PlatformFault::parse_spec(spec).unwrap_err().to_string();
            assert!(err.contains(&format!("`{spec}`")), "{spec}: {err}");
        }
    }

    #[test]
    fn spec_rejects_trailing_garbage() {
        for spec in [
            "gpu:2x",
            "gpu:2 ",
            "gpu:2:3",
            "memory:0.25junk",
            "memory:0.25 extra",
            "link:0.5;rm",
        ] {
            assert!(
                PlatformFault::parse_spec(spec).is_err(),
                "`{spec}` must fail"
            );
        }
        // But plain well-formed numbers keep parsing.
        assert_eq!(
            PlatformFault::parse_spec("memory:0.125").unwrap(),
            PlatformFault::MemoryReduction { fraction: 0.125 }
        );
    }

    #[test]
    fn json_round_trip() {
        for fault in [
            PlatformFault::GpuLoss { count: 2 },
            PlatformFault::MemoryReduction { fraction: 0.25 },
            PlatformFault::LinkSlowdown { fraction: 0.5 },
        ] {
            let v = fault.to_json();
            assert_eq!(PlatformFault::from_json(&v).unwrap(), fault);
        }
        assert!(PlatformFault::from_json(&Value::parse(r#"{"kind":"meteor"}"#).unwrap()).is_err());
    }
}
