//! Roofline-style GPU cost model.
//!
//! The paper profiles per-layer durations on a real GPU; we substitute an
//! analytic model: an operation touching `bytes` of memory and executing
//! `flops` floating point operations runs for
//!
//! `time = max(flops / effective_flops, bytes / mem_bandwidth) + overhead`
//!
//! — the classical roofline, plus a fixed per-kernel launch overhead.
//! Backward passes cost a constant factor more than forward passes
//! (gradients w.r.t. both inputs and weights ≈ two convolutions against
//! one), defaulting to 2×, consistent with common profiling wisdom and
//! with the `u_B ≈ 2·u_F` ratios visible in PipeDream's published
//! profiles.

use madpipe_json::{FromJson, JsonError, ToJson, Value};

/// The GPU used to synthesize per-layer durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Sustained compute throughput in FLOP/s (tensor-core fp32-accum
    /// class hardware lands around 10–15 TFLOP/s effective).
    pub effective_flops: f64,
    /// Sustained memory bandwidth in B/s.
    pub mem_bandwidth: f64,
    /// Per-kernel launch overhead in seconds.
    pub kernel_overhead: f64,
    /// `u_B / u_F` ratio.
    pub backward_factor: f64,
}

impl Default for GpuModel {
    /// A V100-class GPU (the hardware generation of the paper).
    fn default() -> Self {
        Self {
            effective_flops: 12e12,
            mem_bandwidth: 800e9,
            kernel_overhead: 20e-6,
            backward_factor: 2.0,
        }
    }
}

impl GpuModel {
    /// V100-class (the paper's hardware generation) — same as `default`.
    pub fn v100() -> Self {
        Self::default()
    }

    /// A100-class: ~2.3× the compute, ~2.5× the bandwidth of a V100.
    pub fn a100() -> Self {
        Self {
            effective_flops: 28e12,
            mem_bandwidth: 2.0e12,
            kernel_overhead: 15e-6,
            backward_factor: 2.0,
        }
    }

    /// Consumer RTX-3090-class.
    pub fn rtx3090() -> Self {
        Self {
            effective_flops: 15e12,
            mem_bandwidth: 936e9,
            kernel_overhead: 20e-6,
            backward_factor: 2.0,
        }
    }

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "v100" | "default" => Some(Self::v100()),
            "a100" => Some(Self::a100()),
            "rtx3090" | "3090" => Some(Self::rtx3090()),
            _ => None,
        }
    }

    /// Forward duration of an op with the given FLOP count and bytes
    /// touched (inputs + outputs + parameters).
    pub fn forward_time(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / self.effective_flops;
        let memory = bytes as f64 / self.mem_bandwidth;
        compute.max(memory) + self.kernel_overhead
    }

    /// Backward duration for the same op.
    pub fn backward_time(&self, flops: u64, bytes: u64) -> f64 {
        self.forward_time(flops, bytes) * self.backward_factor
    }
}

impl ToJson for GpuModel {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("effective_flops".into(), self.effective_flops.to_json()),
            ("mem_bandwidth".into(), self.mem_bandwidth.to_json()),
            ("kernel_overhead".into(), self.kernel_overhead.to_json()),
            ("backward_factor".into(), self.backward_factor.to_json()),
        ])
    }
}

impl FromJson for GpuModel {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            effective_flops: v.field("effective_flops")?.as_f64()?,
            mem_bandwidth: v.field("mem_bandwidth")?.as_f64()?,
            kernel_overhead: v.field("kernel_overhead")?.as_f64()?,
            backward_factor: v.field("backward_factor")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_ops_follow_flops() {
        let gpu = GpuModel {
            effective_flops: 1e12,
            mem_bandwidth: 1e12,
            kernel_overhead: 0.0,
            backward_factor: 2.0,
        };
        // 1e12 flops, tiny memory → 1 second
        assert!((gpu.forward_time(1_000_000_000_000, 8) - 1.0).abs() < 1e-9);
        assert!((gpu.backward_time(1_000_000_000_000, 8) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_ops_follow_bytes() {
        let gpu = GpuModel {
            effective_flops: 1e15,
            mem_bandwidth: 1e9,
            kernel_overhead: 0.0,
            backward_factor: 2.0,
        };
        // 1 GB at 1 GB/s → 1 second even with negligible flops
        assert!((gpu.forward_time(10, 1_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_floors_small_ops() {
        let gpu = GpuModel::default();
        assert!(gpu.forward_time(1, 1) >= gpu.kernel_overhead);
    }

    #[test]
    fn presets_resolve_and_order_sensibly() {
        assert_eq!(GpuModel::by_name("v100"), Some(GpuModel::default()));
        assert!(GpuModel::by_name("A100").is_some());
        assert!(GpuModel::by_name("tpu").is_none());
        // An A100 is faster than a V100 on a compute-bound op.
        let flops = 1_000_000_000_000;
        assert!(GpuModel::a100().forward_time(flops, 8) < GpuModel::v100().forward_time(flops, 8));
    }
}
