//! MadPipe-DP (§4.2.2): the dynamic program that builds a non-contiguous
//! allocation with one special processor.
//!
//! `T(l, p, t_P, m_P, V)` is the smallest period of an allocation of the
//! first `l` layers on `p` *normal* processors (one stage each) and the
//! single *special* processor (any number of stages), where
//!
//! * `V` lower-bounds the delay between the end of `F_l` and the start of
//!   the matching `B_l` (propagated with the `⊕` operator as stages and
//!   communications are peeled off the back of the chain),
//! * the special processor has already been assigned stages amounting to
//!   compute load `t_P` and (under-estimated) memory `m_P`,
//! * a stage `[k, l)` placed on a *normal* processor must satisfy the
//!   exact 1F1B* memory bound `M(k, l, g)` with
//!   `g = ⌈(V + U(k,l)) / T̂⌉` live activations,
//! * the same stage placed on the *special* processor contributes
//!   `M(k, l, g−1)` (at least `g−1` copies are pinned at all times,
//!   Figure 5) — an intentional under-estimate corrected in phase 2.
//!
//! The three continuous coordinates are discretized (rounded up) on the
//! grids of [`crate::discrete`]; the recursion is memoized on grid
//! indices and the chosen split points are kept for reconstruction.
//!
//! # Cross-probe reuse
//!
//! Algorithm 1 and the planner probe the DP at many target periods `T̂`
//! over the *same* chain and platform. [`ProbeSession`] owns everything
//! those probes can share:
//!
//! * the `t_P`/`m_P` axes and the per-cut communication times, which do
//!   not depend on `T̂` at all;
//! * an **outcome cache** keyed by `(T̂, use_special)` — the bisection,
//!   the refinement grid and the contiguous fallback regularly revisit
//!   the same target, and a revisit costs one hash lookup instead of a
//!   full solve;
//! * per-probe **memo shards** — the packed [`Key`] is full (all 64 bits
//!   carry state coordinates), so entries of different targets cannot
//!   live in one map; instead each solve's memo is retained whole, which
//!   keeps every per-`T̂` entry addressable and makes reconstruction of a
//!   revisited probe free;
//! * the **monotone infeasibility bound**: `MadPipe-DP(T̂)` is
//!   non-increasing in `T̂` (the same fact Algorithm 1's bisection relies
//!   on — see `crate::algorithm1`), so a target proven infeasible makes
//!   every smaller target infeasible without solving. The bound is kept
//!   per `use_special` flag because the two DP variants explore
//!   different feasible sets.
//!
//! [`ProbeSession::probe_many`] evaluates independent targets on a
//! scoped thread pool; results are merged in submission order, so the
//! session state (and therefore every downstream decision) is identical
//! whatever the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use madpipe_model::util::ceil_div;
use madpipe_model::{Allocation, Chain, Platform, Stage};
use madpipe_obs::Registry;

use crate::discrete::{Axis, Discretization};
use crate::fxhash::FxHashMap;
use crate::oplus::oplus;
use crate::stats::{counters, DpStats, ProbeRecord, ProbeSource};

/// Result of one MadPipe-DP run at a fixed target period `T̂`.
#[derive(Debug, Clone)]
pub struct DpOutcome {
    /// The period of the produced allocation (`∞` when the memory
    /// constraints cannot be met at this `T̂`).
    pub period: f64,
    /// The reconstructed allocation: the special processor is GPU 0,
    /// normal stages occupy GPUs `1..P`. `None` iff `period` is infinite.
    pub allocation: Option<Allocation>,
    /// Number of distinct memoized states.
    pub states: usize,
}

impl DpOutcome {
    fn infeasible() -> Self {
        Self {
            period: f64::INFINITY,
            allocation: None,
            states: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// No feasible decomposition from this state.
    Infeasible,
    /// `l == 0`: nothing left to place.
    Done,
    /// Stage `[k, l)` on a normal processor.
    Normal(u16),
    /// Stage `[k, l)` on the special processor.
    Special(u16),
}

/// Packed state key: `l` (16b) | `p` (8b) | `it` (16b) | `im` (8b) | `iv` (16b).
type Key = u64;

#[inline]
fn pack(l: usize, p: usize, it: u16, im: u16, iv: u16) -> Key {
    debug_assert!(l < 1 << 16, "chain length overflows the 16-bit key field");
    debug_assert!(p < 256, "processor count overflows the 8-bit key field");
    debug_assert!(im < 256, "memory index overflows the 8-bit key field");
    (l as u64) << 48 | (p as u64) << 40 | (it as u64) << 24 | (im as u64) << 16 | iv as u64
}

#[cfg_attr(not(test), allow(dead_code))]
#[inline]
fn unpack(key: Key) -> (usize, usize, u16, u16, u16) {
    (
        (key >> 48) as usize,
        ((key >> 40) & 0xff) as usize,
        ((key >> 24) & 0xffff) as u16,
        ((key >> 16) & 0xff) as u16,
        (key & 0xffff) as u16,
    )
}

/// One retained probe: the full memo of a solve plus its outcome, kept
/// addressable so revisits and reconstructions are free.
struct Shard {
    t_hat: f64,
    use_special: bool,
    memo: FxHashMap<Key, (f64, Choice)>,
    memo_hits: u64,
    load_prunes: u64,
    memory_prunes: u64,
    outcome: DpOutcome,
}

/// How one target of a [`ProbeSession::probe_many`] batch was answered.
enum Resolution {
    /// Served from a shard absorbed before this batch.
    Cached(usize),
    /// Killed by the monotone infeasibility bound.
    Pruned,
    /// Solved in this batch (index into the batch's pending list).
    Solved(usize),
    /// Duplicate of a target solved earlier in this batch.
    Duplicate(usize),
}

/// Shared DP state for a whole planning run — see the module docs for
/// what is reused across probes and why it is sound.
pub struct ProbeSession<'a> {
    chain: &'a Chain,
    platform: &'a Platform,
    disc: Discretization,
    t_axis: Axis,
    m_axis: Axis,
    v_max: f64,
    /// `cut_times[k]` = round-trip communication time of the cut before
    /// layer `k` (`0` at the chain ends), shared by every probe.
    cut_times: Vec<f64>,
    shards: Vec<Shard>,
    /// `(T̂ bits, use_special)` → shard index.
    index: FxHashMap<(u64, bool), usize>,
    /// Largest target proven infeasible, per `use_special` flag.
    max_infeasible: [Option<f64>; 2],
    /// The session's metrics: every counter behind [`DpStats`] plus the
    /// per-solve timing/state histograms. Bumped only on the absorbing
    /// (main) thread, so values are bit-identical across thread counts.
    registry: Registry,
    records: Vec<ProbeRecord>,
}

impl<'a> ProbeSession<'a> {
    /// Build a session for `chain` on `platform`; every probe of one
    /// planning run should go through the same session.
    pub fn new(chain: &'a Chain, platform: &'a Platform, disc: &Discretization) -> Self {
        let total_u = chain.total_compute_time();
        let cut_times: Vec<f64> = (0..=chain.len())
            .map(|k| platform.cut_time(chain, k))
            .collect();
        let v_max = total_u + cut_times.iter().sum::<f64>();
        Self {
            chain,
            platform,
            disc: *disc,
            t_axis: Axis::new(total_u, disc.t_points),
            m_axis: Axis::new(platform.memory_bytes as f64, disc.m_points),
            v_max,
            cut_times,
            shards: Vec::new(),
            index: FxHashMap::default(),
            max_infeasible: [None, None],
            registry: Registry::new(),
            records: Vec::new(),
        }
    }

    /// The chain this session was built for. Returns the `'a`-lived
    /// reference, so callers can keep using it alongside `&mut self`
    /// (the planning service plans through a long-lived session).
    pub fn chain(&self) -> &'a Chain {
        self.chain
    }

    /// The platform this session was built for (see [`ProbeSession::chain`]).
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// Aggregate counters so far (the [`DpStats`] view over the
    /// session's metrics registry).
    pub fn stats(&self) -> DpStats {
        DpStats::from_registry(&self.registry)
    }

    /// The live metrics registry of this session.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The probe timeline so far.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }

    /// Drain the timeline (the counters stay).
    pub fn take_records(&mut self) -> Vec<ProbeRecord> {
        std::mem::take(&mut self.records)
    }

    /// Probe the DP at one target period.
    pub fn probe(&mut self, t_hat: f64, use_special: bool, source: ProbeSource) -> DpOutcome {
        self.probe_many(&[t_hat], use_special, source, 1)
            .pop()
            .expect("one target in, one outcome out")
    }

    /// Probe the DP at several independent targets, solving uncached ones
    /// on up to `threads` scoped workers. Outcomes keep the input order
    /// and the session ends up in the same state as `threads = 1` — the
    /// solves are pure functions of `(chain, platform, T̂)` and are merged
    /// in submission order.
    pub fn probe_many(
        &mut self,
        targets: &[f64],
        use_special: bool,
        source: ProbeSource,
        threads: usize,
    ) -> Vec<DpOutcome> {
        for &t_hat in targets {
            assert!(t_hat > 0.0 && t_hat.is_finite(), "T̂ must be positive");
        }

        // Classify each target; collect the distinct ones that need a solve.
        let mut resolutions: Vec<Resolution> = Vec::with_capacity(targets.len());
        let mut pending: Vec<f64> = Vec::new();
        let mut pending_index: FxHashMap<u64, usize> = FxHashMap::default();
        for &t_hat in targets {
            if let Some(&i) = self.index.get(&(t_hat.to_bits(), use_special)) {
                resolutions.push(Resolution::Cached(i));
            } else if self.max_infeasible[use_special as usize].is_some_and(|b| t_hat <= b) {
                resolutions.push(Resolution::Pruned);
            } else if let Some(&j) = pending_index.get(&t_hat.to_bits()) {
                resolutions.push(Resolution::Duplicate(j));
            } else {
                pending_index.insert(t_hat.to_bits(), pending.len());
                resolutions.push(Resolution::Solved(pending.len()));
                pending.push(t_hat);
            }
        }

        // Solve the pending targets (in parallel when asked to), then
        // absorb the shards in submission order for determinism.
        let solved = self.solve_batch(&pending, use_special, threads);
        let first_new_shard = self.shards.len();
        for (shard, _) in &solved {
            debug_assert!(shard.outcome.period.is_finite() || shard.outcome.allocation.is_none());
        }
        let seconds: Vec<f64> = solved.iter().map(|(_, s)| *s).collect();
        for (shard, _) in solved {
            self.absorb(shard);
        }

        // Emit outcomes and the timeline in target order.
        let mut out = Vec::with_capacity(targets.len());
        for (&t_hat, resolution) in targets.iter().zip(&resolutions) {
            let (outcome, states, cached, pruned, secs) = match *resolution {
                Resolution::Cached(i) => {
                    let shard = &self.shards[i];
                    self.registry.inc(counters::DP_OUTCOME_HITS);
                    self.registry
                        .add(counters::DP_STATES_REUSED, shard.memo.len() as u64);
                    (
                        shard.outcome.clone(),
                        shard.outcome.states,
                        true,
                        false,
                        0.0,
                    )
                }
                Resolution::Pruned => {
                    self.registry.inc(counters::DP_BOUND_PRUNES);
                    (DpOutcome::infeasible(), 0, false, true, 0.0)
                }
                Resolution::Solved(j) => {
                    let shard = &self.shards[first_new_shard + j];
                    self.registry
                        .observe(counters::DP_SOLVE_SECONDS, seconds[j]);
                    self.registry
                        .observe(counters::DP_SOLVE_STATES, shard.outcome.states as f64);
                    (
                        shard.outcome.clone(),
                        shard.outcome.states,
                        false,
                        false,
                        seconds[j],
                    )
                }
                Resolution::Duplicate(j) => {
                    let shard = &self.shards[first_new_shard + j];
                    self.registry.inc(counters::DP_OUTCOME_HITS);
                    self.registry
                        .add(counters::DP_STATES_REUSED, shard.memo.len() as u64);
                    (
                        shard.outcome.clone(),
                        shard.outcome.states,
                        true,
                        false,
                        0.0,
                    )
                }
            };
            self.records.push(ProbeRecord {
                source,
                t_hat,
                use_special,
                period: outcome.period,
                states,
                cached,
                pruned,
                seconds: secs,
            });
            out.push(outcome);
        }
        out
    }

    /// Solve `pending` targets, each with a fresh memo over the shared
    /// axes/cut table. Returns `(shard, seconds)` in `pending` order.
    fn solve_batch(&self, pending: &[f64], use_special: bool, threads: usize) -> Vec<(Shard, f64)> {
        let threads = threads.max(1).min(pending.len().max(1));
        if threads == 1 || pending.len() == 1 {
            return pending
                .iter()
                .map(|&t| {
                    let start = Instant::now();
                    let shard = self.run_solve(t, use_special);
                    (shard, start.elapsed().as_secs_f64())
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<(Shard, f64)>> = (0..pending.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let session = &*self;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, Shard, f64)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= pending.len() {
                            break;
                        }
                        let start = Instant::now();
                        let shard = session.run_solve(pending[i], use_special);
                        local.push((i, shard, start.elapsed().as_secs_f64()));
                    }
                    local
                }));
            }
            for h in handles {
                for (i, shard, secs) in h.join().expect("DP worker panicked") {
                    slots[i] = Some((shard, secs));
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every pending target solved"))
            .collect()
    }

    /// One full DP solve at `t_hat`. Pure: reads only the shared session
    /// state, so independent solves can run concurrently.
    fn run_solve(&self, t_hat: f64, use_special: bool) -> Shard {
        let mut sp = madpipe_obs::span("dp.solve");
        if let Some(sp) = sp.as_mut() {
            sp.arg("t_hat", t_hat);
        }
        let mut dp = Dp {
            chain: self.chain,
            platform: self.platform,
            t_hat,
            use_special,
            t_axis: &self.t_axis,
            m_axis: &self.m_axis,
            v_axis: Axis::new(self.v_max.max(t_hat), self.disc.v_points),
            cut_times: &self.cut_times,
            memo: FxHashMap::default(),
            memo_hits: 0,
            load_prunes: 0,
            memory_prunes: 0,
        };
        let p_normal = if use_special {
            self.platform.n_gpus - 1
        } else {
            self.platform.n_gpus
        };
        let period = dp.solve(self.chain.len(), p_normal, 0, 0, 0);
        let allocation = if period.is_finite() {
            dp.reconstruct(self.chain.len(), p_normal)
        } else {
            None
        };
        let states = dp.memo.len();
        Shard {
            t_hat,
            use_special,
            memo: dp.memo,
            memo_hits: dp.memo_hits,
            load_prunes: dp.load_prunes,
            memory_prunes: dp.memory_prunes,
            outcome: DpOutcome {
                period,
                allocation,
                states,
            },
        }
    }

    /// Merge a solved shard into the session (counters, infeasibility
    /// bound, outcome cache).
    fn absorb(&mut self, shard: Shard) {
        self.registry.inc(counters::DP_SOLVES);
        self.registry
            .add(counters::DP_STATES_CREATED, shard.memo.len() as u64);
        self.registry.add(counters::DP_MEMO_HITS, shard.memo_hits);
        self.registry
            .add(counters::DP_LOAD_PRUNES, shard.load_prunes);
        self.registry
            .add(counters::DP_MEMORY_PRUNES, shard.memory_prunes);
        if shard.outcome.period.is_infinite() {
            let bound = &mut self.max_infeasible[shard.use_special as usize];
            *bound = Some(bound.map_or(shard.t_hat, |b| b.max(shard.t_hat)));
        }
        self.index.insert(
            (shard.t_hat.to_bits(), shard.use_special),
            self.shards.len(),
        );
        self.shards.push(shard);
    }
}

struct Dp<'a> {
    chain: &'a Chain,
    platform: &'a Platform,
    t_hat: f64,
    use_special: bool,
    t_axis: &'a Axis,
    m_axis: &'a Axis,
    v_axis: Axis,
    cut_times: &'a [f64],
    memo: FxHashMap<Key, (f64, Choice)>,
    memo_hits: u64,
    load_prunes: u64,
    memory_prunes: u64,
}

impl Dp<'_> {
    fn solve(&mut self, l: usize, p: usize, it: u16, im: u16, iv: u16) -> f64 {
        let key = pack(l, p, it, im, iv);
        if let Some(&(v, _)) = self.memo.get(&key) {
            self.memo_hits += 1;
            return v;
        }
        if l == 0 {
            let v = self.t_axis.value(it);
            self.memo.insert(key, (v, Choice::Done));
            return v;
        }

        let t_val = self.t_axis.value(it);
        let m_val = self.m_axis.value(im);
        let v_val = self.v_axis.value(iv);
        let memory = self.platform.memory_bytes;

        let mut best = f64::INFINITY;
        let mut choice = Choice::Infeasible;

        for k in (0..l).rev() {
            let u = self.chain.compute_time(k..l);
            // Both options cost at least the stage load `u`, and `u` only
            // grows as the stage extends towards the front — once it
            // reaches the best period found at this state, no larger
            // stage can improve it (exact prune).
            if u >= best {
                self.load_prunes += 1;
                break;
            }
            let g = ceil_div(v_val + u, self.t_hat).max(1);
            let cut = self.cut_times[k];
            let v_next = oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat);
            let iv_next = self.v_axis.index_up(v_next);

            // Memory cores (without boundary buffers), monotone as k
            // decreases — used for the early break below.
            let weights = 3 * self.chain.weight_bytes(k..l);
            let stored = self.chain.stored_activation_bytes(k..l);
            let normal_core = weights + g * stored;
            let special_core = m_val as u64 + weights + (g - 1) * stored;

            // Normal processor option.
            if p >= 1 {
                let mem = self.chain.stage_memory(k..l, g);
                if mem <= memory {
                    let sub = self.solve(k, p - 1, it, im, iv_next);
                    let t_n = u.max(cut).max(sub);
                    if t_n < best {
                        best = t_n;
                        choice = Choice::Normal(k as u16);
                    }
                }
            }

            // Special processor option.
            let stage_mem = self.chain.stage_memory(k..l, g.saturating_sub(1));
            let m_next = m_val + stage_mem as f64;
            let t_next = t_val + u;
            if self.use_special && !self.m_axis.overflows(m_next) && m_next <= memory as f64 {
                let it_next = self.t_axis.index_up(t_next);
                let im_next = self.m_axis.index_up(m_next);
                let sub = self.solve(k, p, it_next, im_next, iv_next);
                let t_s = self.t_axis.value(it_next).max(cut).max(sub);
                if t_s < best {
                    best = t_s;
                    choice = Choice::Special(k as u16);
                }
            }

            // Early break: both cores already exceed memory; growing the
            // stage (smaller k) only increases weights, activations and g.
            if normal_core > memory && (special_core > memory || !self.use_special) {
                self.memory_prunes += 1;
                break;
            }
        }

        self.memo.insert(key, (best, choice));
        best
    }

    /// Walk the memoized choices from the root and emit the allocation.
    fn reconstruct(&self, l0: usize, p0: usize) -> Option<Allocation> {
        let n_gpus = self.platform.n_gpus;
        let mut stages_rev: Vec<Stage> = Vec::new();
        let (mut l, mut p, mut it, mut im, mut iv) = (l0, p0, 0u16, 0u16, 0u16);
        let mut next_normal_gpu = n_gpus - 1; // count down; GPU 0 is special
        loop {
            let key = pack(l, p, it, im, iv);
            let &(_, choice) = self.memo.get(&key)?;
            match choice {
                Choice::Infeasible => return None,
                Choice::Done => break,
                Choice::Normal(k16) => {
                    let k = k16 as usize;
                    stages_rev.push(Stage {
                        layers: k..l,
                        gpu: next_normal_gpu,
                    });
                    next_normal_gpu = next_normal_gpu.saturating_sub(1);
                    let v_val = self.v_axis.value(iv);
                    let u = self.chain.compute_time(k..l);
                    let cut = self.cut_times[k];
                    iv = self
                        .v_axis
                        .index_up(oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat));
                    l = k;
                    p -= 1;
                }
                Choice::Special(k16) => {
                    let k = k16 as usize;
                    stages_rev.push(Stage {
                        layers: k..l,
                        gpu: 0,
                    });
                    let v_val = self.v_axis.value(iv);
                    let t_val = self.t_axis.value(it);
                    let m_val = self.m_axis.value(im);
                    let u = self.chain.compute_time(k..l);
                    let g = ceil_div(v_val + u, self.t_hat).max(1);
                    let cut = self.cut_times[k];
                    let stage_mem = self.chain.stage_memory(k..l, g.saturating_sub(1));
                    it = self.t_axis.index_up(t_val + u);
                    im = self.m_axis.index_up(m_val + stage_mem as f64);
                    iv = self
                        .v_axis
                        .index_up(oplus(oplus(v_val, u, self.t_hat), cut, self.t_hat));
                    l = k;
                }
            }
        }
        stages_rev.reverse();
        Allocation::new(stages_rev, self.chain.len(), n_gpus).ok()
    }
}

/// Run MadPipe-DP at target period `t_hat` and reconstruct the resulting
/// allocation (special processor = GPU 0).
///
/// One-shot convenience over [`ProbeSession`]; callers probing several
/// targets should hold a session instead to share state between probes.
pub fn madpipe_dp(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
) -> DpOutcome {
    madpipe_dp_with(chain, platform, t_hat, disc, true)
}

/// [`madpipe_dp`] with the special processor optionally disabled: with
/// `use_special = false` the DP degenerates to a *memory-aware contiguous*
/// partitioner (every GPU gets one stage, exact 1F1B* memory estimates) —
/// the ablation isolating the contribution of non-contiguous allocations.
pub fn madpipe_dp_with(
    chain: &Chain,
    platform: &Platform,
    t_hat: f64,
    disc: &Discretization,
    use_special: bool,
) -> DpOutcome {
    ProbeSession::new(chain, platform, disc).probe(t_hat, use_special, ProbeSource::Bisection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;
    use proptest::prelude::*;

    fn chain(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    fn disc() -> Discretization {
        Discretization::default()
    }

    #[test]
    fn single_gpu_takes_everything_on_special() {
        let c = chain(&[(1.0, 1.0), (2.0, 2.0)], 10, 0);
        let platform = Platform::new(1, 1 << 30, 100.0).unwrap();
        let out = madpipe_dp(&c, &platform, 6.0, &disc());
        assert!((out.period - 6.0).abs() < 0.2);
        let alloc = out.allocation.unwrap();
        assert!(alloc.stages().iter().all(|s| s.gpu == 0));
    }

    #[test]
    fn balanced_chain_splits_across_gpus() {
        let c = chain(&[(1.0, 1.0); 8], 1, 0);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 4.0, &disc());
        // 16 compute over 4 GPUs → period ≈ 4 (comm negligible).
        assert!(out.period <= 4.3, "period {}", out.period);
        let alloc = out.allocation.unwrap();
        assert_eq!(alloc.n_gpus(), 4);
        // Every GPU busy ≈ 4.
        for g in 0..4 {
            assert!(alloc.gpu_compute_load(&c, g) <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn uses_the_special_gpu_for_imbalanced_chains() {
        // Loads 4, 8, 4 on 2 GPUs: only {0,2} vs {1} balances at 8.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 1, 0);
        let platform = Platform::new(2, 1 << 30, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 8.0, &disc());
        assert!(out.period <= 8.4, "period {}", out.period);
        let alloc = out.allocation.unwrap();
        // layers 0 and 2 on the special GPU 0, layer 1 on a normal GPU.
        assert_eq!(alloc.stages()[0].gpu, 0);
        assert_eq!(alloc.stages()[2].gpu, 0);
        assert_ne!(alloc.stages()[1].gpu, 0);
    }

    #[test]
    fn memory_pressure_blocks_tight_targets() {
        // Huge activations: at small T̂ the first stage needs many copies.
        let c = chain(&[(1.0, 1.0); 6], 1 << 20, 0);
        let tight = Platform::new(3, 4 << 20, 1e9).unwrap();
        let small = madpipe_dp(&c, &tight, 4.0, &disc());
        let large = madpipe_dp(&c, &tight, 12.0, &disc());
        // Larger targets relax memory → period cannot get worse.
        if small.period.is_finite() {
            assert!(large.period <= small.period + 1e-6);
        } else {
            assert!(large.period.is_finite());
        }
    }

    #[test]
    fn impossible_memory_is_reported_infeasible() {
        let c = chain(&[(1.0, 1.0)], 1 << 30, 1 << 28);
        let platform = Platform::new(2, 1 << 20, 1e9).unwrap();
        let out = madpipe_dp(&c, &platform, 2.0, &disc());
        assert!(out.period.is_infinite());
        assert!(out.allocation.is_none());
    }

    #[test]
    fn dp_period_is_monotone_in_t_hat() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
            1 << 18,
            1 << 10,
        );
        let platform = Platform::new(3, 3 << 20, 1e8).unwrap();
        let mut last = f64::INFINITY;
        for t_hat in [2.0f64, 4.0, 8.0, 16.0, 32.0] {
            let out = madpipe_dp(&c, &platform, t_hat, &disc());
            assert!(
                out.period <= last + 0.35,
                "period should (weakly) improve as T̂ grows: {} then {}",
                last,
                out.period
            );
            last = out.period.min(last);
        }
    }

    #[test]
    fn allocation_covers_the_chain_in_order() {
        let c = chain(&[(1.0, 1.0); 10], 100, 10);
        let platform = Platform::new(4, 1 << 30, 1e6).unwrap();
        let out = madpipe_dp(&c, &platform, 5.0, &disc());
        let alloc = out.allocation.unwrap();
        let part = alloc.partition();
        assert_eq!(part.stages().first().unwrap().start, 0);
        assert_eq!(part.stages().last().unwrap().end, 10);
    }

    #[test]
    fn session_matches_one_shot_solves() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0)],
            1 << 16,
            1 << 8,
        );
        let platform = Platform::new(3, 8 << 20, 1e7).unwrap();
        let mut session = ProbeSession::new(&c, &platform, &disc());
        for t_hat in [3.0, 5.0, 9.0] {
            let one_shot = madpipe_dp(&c, &platform, t_hat, &disc());
            let probed = session.probe(t_hat, true, ProbeSource::Bisection);
            assert_eq!(probed.period, one_shot.period, "T̂ = {t_hat}");
            assert_eq!(probed.states, one_shot.states);
            assert_eq!(
                probed.allocation.map(|a| a.stages().to_vec()),
                one_shot.allocation.map(|a| a.stages().to_vec())
            );
        }
    }

    #[test]
    fn revisited_targets_hit_the_outcome_cache() {
        let c = chain(&[(1.0, 1.0); 6], 1 << 10, 1 << 8);
        let platform = Platform::new(3, 1 << 26, 1e7).unwrap();
        let mut session = ProbeSession::new(&c, &platform, &disc());
        let a = session.probe(4.0, true, ProbeSource::Bisection);
        assert_eq!(session.stats().solves, 1);
        let b = session.probe(4.0, true, ProbeSource::Refinement);
        assert_eq!(session.stats().solves, 1, "second probe must not re-solve");
        assert_eq!(session.stats().outcome_hits, 1);
        assert!(session.stats().states_reused > 0);
        assert_eq!(a.period, b.period);
        // The two DP variants are cached independently.
        session.probe(4.0, false, ProbeSource::ContiguousFallback);
        assert_eq!(session.stats().solves, 2);
    }

    #[test]
    fn infeasibility_bound_prunes_smaller_targets() {
        // Memory-hopeless at small targets: activations dominate.
        let c = chain(&[(1.0, 1.0); 6], 1 << 20, 0);
        let tight = Platform::new(3, 4 << 20, 1e9).unwrap();
        let mut session = ProbeSession::new(&c, &tight, &disc());
        let at_four = session.probe(4.0, true, ProbeSource::Bisection);
        if at_four.period.is_infinite() {
            let smaller = session.probe(2.0, true, ProbeSource::Bisection);
            assert!(smaller.period.is_infinite());
            assert_eq!(session.stats().bound_prunes, 1, "2.0 ≤ 4.0 must be pruned");
            assert_eq!(session.stats().solves, 1);
            // A larger target is *not* covered by the bound.
            session.probe(50.0, true, ProbeSource::Bisection);
            assert_eq!(session.stats().solves, 2);
        }
    }

    #[test]
    fn probe_many_is_deterministic_across_thread_counts() {
        let c = chain(
            &[(1.0, 2.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0), (2.0, 3.0)],
            1 << 18,
            1 << 10,
        );
        let platform = Platform::new(3, 3 << 20, 1e8).unwrap();
        let targets = [2.0, 3.5, 5.0, 5.0, 8.0, 13.0, 21.0];
        let mut serial = ProbeSession::new(&c, &platform, &disc());
        let mut parallel = ProbeSession::new(&c, &platform, &disc());
        let a = serial.probe_many(&targets, true, ProbeSource::Refinement, 1);
        let b = parallel.probe_many(&targets, true, ProbeSource::Refinement, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.period.to_bits() == y.period.to_bits(),
                "periods must be bit-identical"
            );
            assert_eq!(x.states, y.states);
            assert_eq!(
                x.allocation.as_ref().map(|a| a.stages().to_vec()),
                y.allocation.as_ref().map(|a| a.stages().to_vec())
            );
        }
        // Counters (everything except wall-clock) agree too.
        assert_eq!(serial.stats(), parallel.stats());
        // The duplicate 5.0 was answered from the batch, not re-solved.
        assert_eq!(serial.stats().outcome_hits, 1);
        assert_eq!(serial.stats().solves, targets.len() - 1);
    }

    #[test]
    fn key_fields_round_trip_at_the_limits() {
        for &(l, p, it, im, iv) in &[
            (0usize, 0usize, 0u16, 0u16, 0u16),
            (65535, 255, 65535, 255, 65535),
            (1, 255, 0, 255, 1),
            (1234, 7, 4321, 99, 17),
        ] {
            assert_eq!(unpack(pack(l, p, it, im, iv)), (l, p, it, im, iv));
        }
    }

    proptest! {
        #[test]
        fn packed_key_round_trips(
            l in 0usize..65536,
            p in 0usize..256,
            it in 0u16..=u16::MAX,
            im in 0u16..256,
            iv in 0u16..=u16::MAX,
        ) {
            let key = pack(l, p, it, im, iv);
            prop_assert_eq!(unpack(key), (l, p, it, im, iv));
        }

        #[test]
        fn packed_keys_are_injective(
            a in (0usize..65536, 0usize..256, 0u16..=u16::MAX, 0u16..256, 0u16..=u16::MAX),
            b in (0usize..65536, 0usize..256, 0u16..=u16::MAX, 0u16..256, 0u16..=u16::MAX),
        ) {
            let ka = pack(a.0, a.1, a.2, a.3, a.4);
            let kb = pack(b.0, b.1, b.2, b.3, b.4);
            prop_assert_eq!(ka == kb, a == b);
        }
    }

    #[test]
    #[should_panic(expected = "overflows")]
    #[cfg(debug_assertions)]
    fn pack_rejects_overflowing_memory_index() {
        let _ = pack(1, 1, 1, 256, 1);
    }
}
