//! End-to-end integration: profile → plan → validate → simulate, across
//! all four networks of the paper.

use madpipe::core::{compare, madpipe_plan, Algorithm1Config, Discretization, PlannerConfig};
use madpipe::dnn::{networks, GpuModel};
use madpipe::model::{Platform, UnitSequence};
use madpipe::schedule::check_pattern;
use madpipe::sim::replay_pattern;

/// Smaller images than the paper keep debug-mode runtimes reasonable
/// while exercising the same code paths.
fn chains() -> Vec<madpipe::model::Chain> {
    let gpu = GpuModel::default();
    networks::all_networks()
        .iter()
        .map(|n| {
            // Small images keep debug-mode runtimes reasonable; coarsen
            // the deep chains (DenseNet) so the DP state space stays tiny
            // while every code path is still exercised.
            let chain = n.profile(2, 320, &gpu).unwrap();
            madpipe::dnn::coarsen(&chain, 24)
        })
        .collect()
}

/// Coarse-grid planner: same pipeline, cheaper DP — these tests assert
/// structural invariants, not solution quality.
fn planner() -> PlannerConfig {
    PlannerConfig {
        algorithm1: Algorithm1Config {
            iterations: 5,
            discretization: Discretization {
                t_points: 31,
                m_points: 7,
                v_points: 15,
            },
            use_special: true,
        },
        refine_probes: 2,
        ..PlannerConfig::default()
    }
}

#[test]
fn every_network_plans_and_revalidates() {
    for chain in &chains() {
        let platform = Platform::gb(4, 1, 12.0).unwrap();
        let plan = madpipe_plan(chain, &platform, &planner())
            .unwrap_or_else(|e| panic!("{} failed to plan: {e}", chain.name()));

        // The schedule must pass the exact checker when revalidated from
        // scratch against the model.
        let seq = UnitSequence::from_allocation(chain, &platform, &plan.allocation);
        let report = check_pattern(
            chain,
            &platform,
            &plan.allocation,
            &seq,
            &plan.schedule.pattern,
        )
        .unwrap_or_else(|e| panic!("{} plan fails revalidation: {e}", chain.name()));
        for (gpu, &peak) in report.gpu_peak_bytes.iter().enumerate() {
            assert!(
                peak <= platform.memory_bytes,
                "{}: GPU {gpu} over memory",
                chain.name()
            );
        }

        // Period is bounded below by the allocation's load bound and
        // above by sequential execution.
        let lb = plan.allocation.load_bound(chain, &platform);
        assert!(plan.period() + 1e-9 >= lb, "{}", chain.name());
        let seq_time = chain.total_compute_time() + platform.total_cut_time(chain);
        assert!(plan.period() <= seq_time + 1e-9, "{}", chain.name());
    }
}

#[test]
fn replay_simulation_confirms_every_plan() {
    for chain in &chains() {
        let platform = Platform::gb(4, 2, 12.0).unwrap();
        let plan = madpipe_plan(chain, &platform, &planner()).unwrap();
        let sim = replay_pattern(
            chain,
            &platform,
            &plan.allocation,
            &plan.schedule.pattern,
            60,
        );
        assert!(
            (sim.period - plan.period()).abs() < 1e-6,
            "{}: simulated {} vs analytic {}",
            chain.name(),
            sim.period,
            plan.period()
        );
        assert!(!sim.memory_violation, "{}", chain.name());

        // The replayed memory peaks must match the analytic checker.
        let seq = UnitSequence::from_allocation(chain, &platform, &plan.allocation);
        let report = check_pattern(
            chain,
            &platform,
            &plan.allocation,
            &seq,
            &plan.schedule.pattern,
        )
        .unwrap();
        assert_eq!(
            sim.gpu_peak_bytes,
            report.gpu_peak_bytes,
            "{}",
            chain.name()
        );
    }
}

#[test]
fn madpipe_never_loses_badly_and_usually_wins() {
    let mut ratios = Vec::new();
    for chain in &chains() {
        for m in [1u64, 2] {
            let platform = Platform::gb(4, m, 12.0).unwrap();
            let cmp = compare(chain, &platform, &planner());
            if let Some(r) = cmp.ratio() {
                assert!(
                    r > 0.9,
                    "{} at M={m}: PipeDream/MadPipe ratio {r:.3} — MadPipe lost by >10%",
                    chain.name()
                );
                ratios.push(r);
            } else {
                // If exactly one fails, it must be PipeDream (MadPipe
                // handles strictly more instances).
                assert!(
                    cmp.madpipe.is_ok() || cmp.pipedream.is_err(),
                    "{} at M={m}: MadPipe infeasible but PipeDream planned",
                    chain.name()
                );
            }
        }
    }
    assert!(!ratios.is_empty());
    let gmean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        gmean >= 1.0,
        "geometric-mean ratio {gmean:.3} < 1: MadPipe should win on average"
    );
}

#[test]
fn infeasible_platforms_fail_with_errors_not_panics() {
    let chain = &chains()[0];
    let platform = Platform::new(2, 1 << 20, 1e9).unwrap(); // 1 MB of memory
    let cmp = compare(chain, &platform, &planner());
    assert!(cmp.madpipe.is_err());
    assert!(cmp.pipedream.is_err());
}
