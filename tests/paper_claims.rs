//! The paper's qualitative claims, asserted on a reduced grid.
//!
//! These tests pin the *shape* of the evaluation (§5.2) — who wins,
//! where the gap opens, how predictions relate to achieved periods — not
//! absolute numbers (our substrate is an analytic cost model, not the
//! authors' testbed).

use madpipe::core::{compare, PlannerConfig};
use madpipe::dnn::{resnet50, GpuModel};
use madpipe::model::{Chain, Platform};

fn chain() -> Chain {
    // Full-scale paper setting for resnet50 (fast enough even in debug).
    resnet50().profile(8, 1000, &GpuModel::default()).unwrap()
}

/// §5.2: "the partitioning produced by PipeDream is very optimistic and
/// expects to achieve a very small period, but then turns out infeasible,
/// resulting in a very high overhead" — at tight memory the achieved
/// period must exceed the DP's prediction by a wide margin.
#[test]
fn pipedream_prediction_is_optimistic_at_tight_memory() {
    let chain = chain();
    let tight = Platform::gb(4, 3, 12.0).unwrap();
    let cmp = compare(&chain, &tight, &PlannerConfig::default());
    let pd = cmp.pipedream.expect("PipeDream plans at 3 GB for resnet50");
    assert!(
        pd.optimism_ratio() > 1.5,
        "expected a large prediction gap at 3 GB, got {:.2}",
        pd.optimism_ratio()
    );

    // With plentiful memory the prediction is accurate.
    let roomy = Platform::gb(4, 16, 12.0).unwrap();
    let cmp = compare(&chain, &roomy, &PlannerConfig::default());
    let pd = cmp.pipedream.unwrap();
    assert!(
        pd.optimism_ratio() < 1.15,
        "prediction should be near-exact at 16 GB, got {:.2}",
        pd.optimism_ratio()
    );
}

/// §5.2: "MadPipe allows to obtain significantly more efficient schedules
/// in most cases, especially when the memory is more constrained" — the
/// PipeDream/MadPipe ratio at the tightest memory beats the ratio at the
/// loosest, and MadPipe never loses anywhere on the sweep.
#[test]
fn madpipe_advantage_grows_as_memory_shrinks() {
    let chain = chain();
    let mut ratios = Vec::new();
    for m in [3u64, 6, 10, 16] {
        let platform = Platform::gb(4, m, 12.0).unwrap();
        let cmp = compare(&chain, &platform, &PlannerConfig::default());
        let r = cmp.ratio().expect("both plan for resnet50/P=4");
        assert!(r >= 0.99, "MadPipe lost at M={m}: ratio {r:.3}");
        ratios.push(r);
    }
    assert!(
        ratios[0] > ratios[3],
        "tight-memory ratio {:.3} should exceed loose-memory ratio {:.3}",
        ratios[0],
        ratios[3]
    );
    assert!(
        ratios[0] > 1.1,
        "expected ≥10% advantage at 3 GB, got {:.3}",
        ratios[0]
    );
}

/// §5.2 / Figure 8: speedup grows with P when memory is plentiful.
#[test]
fn speedup_scales_with_gpus_at_large_memory() {
    let chain = chain();
    let sequential = chain.total_compute_time();
    let mut speedups = Vec::new();
    for p in [2usize, 4, 8] {
        let platform = Platform::gb(p, 16, 12.0).unwrap();
        let cmp = compare(&chain, &platform, &PlannerConfig::default());
        let plan = cmp.madpipe.expect("plans at 16 GB");
        speedups.push(sequential / plan.period());
    }
    assert!(speedups[0] > 1.5, "P=2 speedup {:.2}", speedups[0]);
    assert!(
        speedups[1] > speedups[0] * 1.3,
        "P=4 ({:.2}) should clearly beat P=2 ({:.2})",
        speedups[1],
        speedups[0]
    );
    assert!(
        speedups[2] > speedups[1],
        "P=8 ({:.2}) should beat P=4 ({:.2})",
        speedups[2],
        speedups[1]
    );
}

/// §5.2: "the speedup gets worse" when memory shrinks — at 3 GB the
/// speedup at P=8 is far below the 16 GB speedup.
#[test]
fn tight_memory_caps_the_speedup() {
    let chain = chain();
    let sequential = chain.total_compute_time();
    let at = |m: u64| {
        let platform = Platform::gb(8, m, 12.0).unwrap();
        let cmp = compare(&chain, &platform, &PlannerConfig::default());
        sequential / cmp.madpipe.expect("plans").period()
    };
    let tight = at(3);
    let roomy = at(16);
    assert!(
        tight < roomy * 0.6,
        "3 GB speedup {tight:.2} should collapse vs 16 GB speedup {roomy:.2}"
    );
}

/// §5.2: "Increasing the bandwidth does not dramatically improve this
/// behavior" — doubling β at tight memory moves the period only mildly.
#[test]
fn bandwidth_is_not_the_bottleneck_at_tight_memory() {
    let chain = chain();
    let at = |beta: f64| {
        let platform = Platform::gb(4, 4, beta).unwrap();
        compare(&chain, &platform, &PlannerConfig::default())
            .madpipe
            .expect("plans")
            .period()
    };
    let slow = at(12.0);
    let fast = at(24.0);
    assert!(
        fast > slow * 0.75,
        "doubling bandwidth should not halve the period: {:.1} → {:.1} ms",
        slow * 1e3,
        fast * 1e3
    );
}

/// MadPipe's phase-1 estimate tracks its achieved period far better than
/// PipeDream's DP tracks its own (the dashed/solid gap comparison of
/// Figure 6).
#[test]
fn madpipe_estimates_are_more_honest_than_pipedreams() {
    let chain = chain();
    let mut mp_gap = Vec::new();
    let mut pd_gap = Vec::new();
    for m in [3u64, 4, 6, 8] {
        let platform = Platform::gb(4, m, 12.0).unwrap();
        let cmp = compare(&chain, &platform, &PlannerConfig::default());
        if let (Ok(mp), Ok(pd)) = (&cmp.madpipe, &cmp.pipedream) {
            mp_gap.push(mp.period() / mp.phase1.period);
            pd_gap.push(pd.optimism_ratio());
        }
    }
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    assert!(
        gm(&mp_gap) < gm(&pd_gap),
        "MadPipe gap {:.2} should be smaller than PipeDream gap {:.2}",
        gm(&mp_gap),
        gm(&pd_gap)
    );
}
