//! Quickstart: plan ResNet-50 training on 4 GPUs with MadPipe and compare
//! against the PipeDream baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use madpipe::core::{compare, PlannerConfig};
use madpipe::dnn::{resnet50, GpuModel};
use madpipe::model::Platform;

fn main() {
    // 1. Profile the network analytically (the paper's settings:
    //    1000×1000 images, batch size 8, a V100-class GPU).
    let chain = resnet50()
        .profile(8, 1000, &GpuModel::default())
        .expect("profiling cannot fail on a well-formed spec");
    println!(
        "{}: {} linearized layers, U(1,L) = {:.1} ms/batch",
        chain.name(),
        chain.len(),
        chain.total_compute_time() * 1e3
    );

    // 2. Describe the platform: 4 GPUs, 8 GB each, 12 GB/s links.
    let platform = Platform::gb(4, 8, 12.0).expect("valid platform");

    // 3. Plan with both algorithms.
    let cmp = compare(&chain, &platform, &PlannerConfig::default());

    match &cmp.madpipe {
        Ok(plan) => {
            println!(
                "MadPipe   : period {:.1} ms  (phase-1 estimate {:.1} ms), {} stages",
                plan.period() * 1e3,
                plan.phase1.period * 1e3,
                plan.phase1.allocation.len(),
            );
            for s in plan.phase1.allocation.stages() {
                println!(
                    "    layers {:>2}..{:<2} -> GPU {}",
                    s.layers.start, s.layers.end, s.gpu
                );
            }
        }
        Err(e) => println!("MadPipe   : FAILED ({e})"),
    }
    match &cmp.pipedream {
        Ok(plan) => println!(
            "PipeDream : period {:.1} ms  (DP prediction {:.1} ms), {} stages",
            plan.period() * 1e3,
            plan.outcome.predicted_period * 1e3,
            plan.outcome.partition.len(),
        ),
        Err(e) => println!("PipeDream : FAILED ({e})"),
    }
    if let Some(r) = cmp.ratio() {
        println!("PipeDream period / MadPipe period = {r:.3}  (>1 means MadPipe wins)");
    }
}
