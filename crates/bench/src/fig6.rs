//! Figure 6: period vs memory limit for ResNet-50, panels over (P, β).
//!
//! Four series per panel, exactly as in the paper: the two partitioners'
//! *predicted* periods (dashed) and the periods of their valid schedules
//! (solid). Lower is better; throughput is `1/period`.
//!
//! Cells planned under a non-default stage policy (`--recompute` /
//! `--weights`) render as extra rows tagged with the policy — the
//! "below the leftmost point" extension of the paper's figure, showing
//! where recompute and 2BW weight versioning keep planning feasible or
//! faster at memory limits the paper's model cannot reach.

use std::fmt::Write as _;

use crate::csv::{ms, ratio, Table};
use crate::grid::CellResult;

/// Build the Figure 6 table and text rendering from grid results
/// (only `network == "resnet50"` cells are used).
pub fn generate(results: &[CellResult]) -> (String, Table) {
    let mut table = Table::new(&[
        "network",
        "P",
        "beta_gb",
        "M_gb",
        "policy",
        "madpipe_est_ms",
        "madpipe_ms",
        "pipedream_est_ms",
        "pipedream_ms",
        "planning_s",
        "dp_solves",
        "dp_probes_saved",
        "certified",
        "jitter_margin",
    ]);
    let mut cells: Vec<&CellResult> = results
        .iter()
        .filter(|r| r.cell.network == "resnet50")
        .collect();
    cells.sort_by(|a, b| {
        (a.cell.p, a.cell.beta_gb as u64, a.cell.m_gb, a.cell.policy).cmp(&(
            b.cell.p,
            b.cell.beta_gb as u64,
            b.cell.m_gb,
            b.cell.policy,
        ))
    });

    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 6 — ResNet-50 (1000x1000, batch 8): period (ms) vs memory limit"
    );
    let mut panel = (0usize, 0u64);
    for r in &cells {
        let key = (r.cell.p, r.cell.beta_gb as u64);
        if key != panel {
            panel = key;
            let _ = writeln!(text, "\n  P = {}, beta = {} GB/s", key.0, key.1);
            let _ = writeln!(
                text,
                "  {:>5} | {:>10} {:>10} | {:>10} {:>10}",
                "M(GB)", "mp dashed", "mp solid", "pd dashed", "pd solid"
            );
        }
        let fmt = |v: Option<f64>| -> String {
            v.map(|x| format!("{:.1}", x * 1e3)).unwrap_or("inf".into())
        };
        let tag = if r.cell.policy.is_default() {
            String::new()
        } else {
            format!(
                "  [{}, {}]",
                r.cell.policy.recompute.as_str(),
                r.cell.policy.weights.as_str()
            )
        };
        let _ = writeln!(
            text,
            "  {:>5} | {:>10} {:>10} | {:>10} {:>10}{tag}",
            r.cell.m_gb,
            fmt(r.madpipe_estimate),
            fmt(r.madpipe),
            fmt(r.pipedream_estimate),
            fmt(r.pipedream),
        );
        table.push(vec![
            r.cell.network.clone(),
            r.cell.p.to_string(),
            format!("{}", r.cell.beta_gb),
            r.cell.m_gb.to_string(),
            format!(
                "{}/{}",
                r.cell.policy.recompute.as_str(),
                r.cell.policy.weights.as_str()
            ),
            ms(r.madpipe_estimate),
            ms(r.madpipe),
            ms(r.pipedream_estimate),
            ms(r.pipedream),
            format!("{:.3}", r.planning_seconds),
            r.dp_solves().to_string(),
            r.dp_probes_saved().to_string(),
            r.certified.map(|c| c.to_string()).unwrap_or_default(),
            ratio(r.jitter_margin),
        ]);
    }
    (text, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Cell;

    fn cell(p: usize, m: u64) -> CellResult {
        CellResult {
            cell: Cell {
                network: "resnet50".into(),
                p,
                m_gb: m,
                beta_gb: 12.0,
                policy: Default::default(),
            },
            sequential: 0.3,
            madpipe_estimate: Some(0.1),
            madpipe: Some(0.11),
            pipedream_estimate: Some(0.1),
            pipedream: Some(0.14),
            planning_seconds: 0.5,
            stats: crate::grid::test_stats(3, 1, 10),
            certified: Some(true),
            jitter_margin: Some(0.12),
        }
    }

    #[test]
    fn renders_panels_and_rows() {
        let results = vec![cell(2, 3), cell(2, 4), cell(4, 3)];
        let (text, table) = generate(&results);
        assert_eq!(table.len(), 3);
        assert!(text.contains("P = 2, beta = 12 GB/s"));
        assert!(text.contains("P = 4, beta = 12 GB/s"));
        assert!(text.contains("110.0"));
    }

    #[test]
    fn policy_rows_are_tagged_and_sorted_after_default() {
        use madpipe_model::{PolicySpec, RecomputeMode, WeightPolicy};
        let mut flipped = cell(2, 3);
        flipped.cell.policy = PolicySpec {
            recompute: RecomputeMode::Auto,
            weights: WeightPolicy::TwoBw,
        };
        flipped.madpipe = Some(0.09);
        let (text, table) = generate(&[flipped, cell(2, 3)]);
        assert_eq!(table.len(), 2);
        assert!(text.contains("[auto, 2bw]"));
        // Default row first within the same (P, beta, M) panel slot.
        let csv: Vec<String> = table.to_csv().lines().map(str::to_string).collect();
        assert!(csv[1].contains("never/3w"));
        assert!(csv[2].contains("auto/2bw"));
    }

    #[test]
    fn ignores_other_networks() {
        let mut other = cell(2, 3);
        other.cell.network = "densenet121".into();
        let (_, table) = generate(&[other]);
        assert!(table.is_empty());
    }
}
