//! Structural validation of emitted artifacts, closing the round trip:
//! everything the exporters write must re-parse with the vendored JSON
//! crate and satisfy the invariants checked here. Shared by the unit
//! round-trip tests and the `madpipe validate-trace` CLI command that CI
//! runs against uploaded artifacts.

use std::collections::{BTreeMap, BTreeSet};

use madpipe_json::Value;

/// What a validated Chrome trace contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events of any phase.
    pub events: usize,
    /// `ph:"X"` span count.
    pub spans: usize,
    /// Distinct names of complete spans.
    pub span_names: BTreeSet<String>,
    /// Largest `ts + dur` seen across span and counter events (µs).
    pub max_ts_us: f64,
    /// Peak value per *integer* counter track (e.g. memory-in-bytes),
    /// keyed by event name, exact `u64`.
    pub counter_peaks: BTreeMap<String, u64>,
    /// Distinct counter track names (integer- and float-valued).
    pub counter_tracks: BTreeSet<String>,
    /// Spans carrying a distributed `args.span` id (merged cluster
    /// traces): each id was unique, every `args.parent` referenced an
    /// existing span, and the parent edges formed no cycle.
    pub linked_spans: usize,
    /// Distinct `pid`s seen — one per daemon in a merged trace.
    pub pids: BTreeSet<u64>,
}

/// Parse and validate a Chrome trace document.
///
/// Checks: the document parses, has a `traceEvents` array, every event
/// carries `name`/`ph`/`pid`, and every timed event has `ts ≥ 0` (plus
/// `dur ≥ 0` for spans). Returns a [`TraceSummary`] for further,
/// caller-specific assertions (horizon bounds, expected peaks).
pub fn validate_chrome(text: &str) -> Result<TraceSummary, String> {
    let doc = Value::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .field("traceEvents")
        .and_then(|v| v.as_array())
        .map_err(|e| format!("missing traceEvents array: {e}"))?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Distributed span links (merged cluster traces): span id → parent
    // id (0 = root). Checked after the walk, once every id is known.
    let mut links: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let name = e
            .field("name")
            .and_then(|v| v.as_str())
            .map_err(|err| at(&format!("bad name: {err}")))?;
        let ph = e
            .field("ph")
            .and_then(|v| v.as_str())
            .map_err(|err| at(&format!("bad ph: {err}")))?;
        let pid = e
            .field("pid")
            .and_then(|v| v.as_u64())
            .map_err(|err| at(&format!("bad pid: {err}")))?;
        summary.pids.insert(pid);
        match ph {
            "M" => continue,
            "X" | "C" | "i" => {}
            other => return Err(at(&format!("unknown phase {other:?}"))),
        }
        let ts = e
            .field("ts")
            .and_then(|v| v.as_f64())
            .map_err(|err| at(&format!("bad ts: {err}")))?;
        if ts < 0.0 {
            return Err(at(&format!("negative ts {ts}")));
        }
        let mut end = ts;
        if ph == "X" {
            let dur = e
                .field("dur")
                .and_then(|v| v.as_f64())
                .map_err(|err| at(&format!("bad dur: {err}")))?;
            if dur < 0.0 {
                return Err(at(&format!("negative dur {dur}")));
            }
            end += dur;
            summary.spans += 1;
            summary.span_names.insert(name.to_string());
            let arg_id = |key: &str| -> Result<Option<u64>, String> {
                let Some(s) = e.get("args").and_then(|a| a.get(key)) else {
                    return Ok(None);
                };
                let s = s
                    .as_str()
                    .map_err(|err| at(&format!("bad args.{key}: {err}")))?;
                crate::context::parse_hex_id(s)
                    .map(Some)
                    .ok_or_else(|| at(&format!("args.{key} is not a hex id: {s:?}")))
            };
            if let Some(span_id) = arg_id("span")? {
                let parent = arg_id("parent")?.unwrap_or(0);
                if links.insert(span_id, parent).is_some() {
                    return Err(at(&format!("duplicate span id {span_id:016x}")));
                }
                summary.linked_spans += 1;
            } else if let Some(parent) = arg_id("parent")? {
                return Err(at(&format!(
                    "span has parent {parent:016x} but no span id of its own"
                )));
            }
        }
        if ph == "C" {
            summary.counter_tracks.insert(name.to_string());
            let args = e
                .field("args")
                .map_err(|err| at(&format!("counter without args: {err}")))?;
            if let Value::Object(fields) = args {
                for (_, v) in fields {
                    if let Value::UInt(u) = v {
                        let peak = summary.counter_peaks.entry(name.to_string()).or_insert(0);
                        *peak = (*peak).max(*u);
                    }
                }
            }
        }
        summary.max_ts_us = summary.max_ts_us.max(end);
    }
    check_links(&links)?;
    Ok(summary)
}

/// Every referenced parent must exist and the parent edges must form a
/// forest — a cycle (possible only through id corruption, since each
/// hop creates a fresh id) would make a merged cluster trace
/// meaningless.
fn check_links(links: &BTreeMap<u64, u64>) -> Result<(), String> {
    let mut resolved: BTreeSet<u64> = BTreeSet::new();
    for (&span, &parent) in links {
        if parent != 0 && !links.contains_key(&parent) {
            return Err(format!(
                "span {span:016x} references parent {parent:016x}, which no event defines"
            ));
        }
        // Walk to a root (or an already-verified span); chains are a
        // few hops deep, so the linear path scan stays cheap.
        let mut path: Vec<u64> = Vec::new();
        let mut cur = span;
        while !resolved.contains(&cur) {
            if path.contains(&cur) {
                return Err(format!("span {cur:016x} sits on a parent cycle"));
            }
            path.push(cur);
            match links.get(&cur) {
                Some(&p) if p != 0 => cur = p,
                _ => break,
            }
        }
        resolved.extend(path);
    }
    Ok(())
}

/// Validate a trace artifact in either format: a Chrome document
/// (`{"traceEvents":[…]}`) or flight-dump/merge-input JSONL (one event
/// object per line). Both run the full [`validate_chrome`] checks,
/// including the distributed span-link rules.
pub fn validate_trace_text(text: &str) -> Result<TraceSummary, String> {
    if let Ok(doc) = Value::parse(text) {
        if doc.get("traceEvents").is_some() {
            return validate_chrome(text);
        }
    }
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    let doc = format!("{{\"traceEvents\":[{}]}}", lines.join(","));
    validate_chrome(&doc)
}

/// Validate a Prometheus-style metrics dump; returns the number of
/// samples. Every non-comment, non-blank line must be `name value` (an
/// optional `{labels}` suffix on the name) with a parseable value.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        samples += 1;
    }
    Ok(samples)
}

/// Extract the plain (label-free) samples of a Prometheus text dump as
/// `(name, value)` pairs, in document order. Labeled samples and
/// comments are skipped, unparseable lines are an error. This is what a
/// cluster-level rollup sums across daemons — histogram `_sum`/`_count`
/// lines are plain samples too, and summing them is exactly the right
/// aggregation.
pub fn prometheus_samples(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        let value = value
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        if !name.contains('{') {
            samples.push((name.to_string(), value));
        }
    }
    Ok(samples)
}

/// Extract per-bucket (non-cumulative) histogram counts from a
/// Prometheus text dump: base name (without `_bucket`) → ascending
/// `(le, count_in_bucket)`.
///
/// This is the series a cluster rollup may sum across daemons. Summing
/// the *cumulative* `_bucket` lines directly would be wrong whenever
/// daemons emit different (sparse) bucket sets — a bound one daemon
/// skips silently loses the other daemons' counts below it — so the
/// rollup differences each daemon's cumulative counts here, sums the
/// per-bucket counts, and re-renders one cluster-wide cumulative
/// series. Quantile-labeled lines are ignored: quantiles do not sum.
pub fn histogram_buckets(text: &str) -> Result<BTreeMap<String, Vec<(f64, u64)>>, String> {
    let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no value: {line:?}", lineno + 1));
        };
        let Some((base, rest)) = name.split_once("_bucket{le=\"") else {
            continue;
        };
        let Some(bound) = rest.strip_suffix("\"}") else {
            continue;
        };
        if bound == "+Inf" {
            continue; // equals `_count`, carried by the plain samples
        }
        let bound: f64 = bound
            .parse()
            .map_err(|_| format!("line {}: bad le bound {bound:?}", lineno + 1))?;
        let cumulative: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        series
            .entry(base.to_string())
            .or_default()
            .push((bound, cumulative));
    }
    let mut out: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    for (base, mut points) in series {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = 0.0;
        let mut buckets = Vec::with_capacity(points.len());
        for (bound, cumulative) in points {
            if cumulative < prev {
                return Err(format!(
                    "histogram {base}: cumulative count drops at le={bound:e}"
                ));
            }
            buckets.push((bound, (cumulative - prev) as u64));
            prev = cumulative;
        }
        out.insert(base, buckets);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Trace, PLANNER_PID, SCHEDULE_PID};

    #[test]
    fn accepts_exporter_output_and_summarizes_it() {
        let mut t = Trace::new();
        t.process_name(PLANNER_PID, "planner");
        t.complete(
            PLANNER_PID,
            0,
            "plan.phase1.bisect",
            "span",
            1.0,
            9.0,
            vec![],
        );
        t.counter(
            SCHEDULE_PID,
            "memory GPU 0",
            "memory",
            20.0,
            "bytes",
            Value::UInt(77),
        );
        t.counter(
            SCHEDULE_PID,
            "memory GPU 0",
            "memory",
            30.0,
            "bytes",
            Value::UInt(42),
        );
        let s = validate_chrome(&t.render_chrome()).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.spans, 1);
        assert!(s.span_names.contains("plan.phase1.bisect"));
        assert_eq!(s.counter_peaks.get("memory GPU 0"), Some(&77));
        assert_eq!(s.max_ts_us, 30.0);
    }

    #[test]
    fn rejects_structural_violations() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{\"other\": 1}").is_err());
        let neg_dur = r#"{"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0, "dur": -2.0}
        ]}"#;
        assert!(validate_chrome(neg_dur)
            .unwrap_err()
            .contains("negative dur"));
        let neg_ts = r#"{"traceEvents": [
            {"name": "x", "ph": "C", "pid": 1, "tid": 0, "ts": -1.0, "args": {"v": 1}}
        ]}"#;
        assert!(validate_chrome(neg_ts).unwrap_err().contains("negative ts"));
    }

    #[test]
    fn prometheus_validation_counts_samples() {
        let r = crate::Registry::new();
        r.add("dp.solves", 2);
        r.observe("dp.solve.seconds", 0.5);
        let text = r.snapshot().to_prometheus();
        let n = validate_prometheus(&text).unwrap();
        assert!(n >= 4, "counter + bucket + sum + count, got {n}");
        assert!(validate_prometheus("name_only\n").is_err());
        assert!(validate_prometheus("metric NaNish\n").is_err());
    }

    #[test]
    fn prometheus_samples_extracts_plain_pairs() {
        let text = "# HELP x helps\nmadpipe_a 3\nmadpipe_b{le=\"0.5\"} 9\nmadpipe_c 1.5\n";
        let samples = prometheus_samples(text).unwrap();
        assert_eq!(
            samples,
            vec![
                ("madpipe_a".to_string(), 3.0),
                ("madpipe_c".to_string(), 1.5)
            ]
        );
        // A registry's own dump round-trips: every counter it emits is
        // recoverable by name.
        let r = crate::Registry::new();
        r.add("serve.cache.hits", 7);
        let samples = prometheus_samples(&r.snapshot().to_prometheus()).unwrap();
        assert!(samples
            .iter()
            .any(|(n, v)| n == "madpipe_serve_cache_hits" && *v == 7.0));
        assert!(prometheus_samples("broken-line\n").is_err());
    }

    fn span_event(name: &str, span: &str, parent: Option<&str>) -> String {
        let parent = parent
            .map(|p| format!(",\"parent\":\"{p}\""))
            .unwrap_or_default();
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.0,\"dur\":2.0,\
             \"args\":{{\"span\":\"{span}\"{parent}}}}}"
        )
    }

    #[test]
    fn distributed_span_links_are_checked() {
        // A valid two-hop chain: router span → daemon span.
        let ok = format!(
            "{}\n{}\n",
            span_event("router.forward", "0a", None),
            span_event("serve.request", "0b", Some("0a"))
        );
        let s = validate_trace_text(&ok).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.linked_spans, 2);

        // Orphan parent: no event defines it.
        let orphan = span_event("serve.request", "0b", Some("ff"));
        let err = validate_trace_text(&orphan).unwrap_err();
        assert!(err.contains("no event defines"), "{err}");

        // Duplicate span ids are corruption, not coincidence.
        let dup = format!(
            "{}\n{}\n",
            span_event("a", "0c", None),
            span_event("b", "0c", None)
        );
        let err = validate_trace_text(&dup).unwrap_err();
        assert!(err.contains("duplicate span id"), "{err}");

        // A parent cycle can never describe a real request.
        let cycle = format!(
            "{}\n{}\n",
            span_event("a", "01", Some("02")),
            span_event("b", "02", Some("01"))
        );
        let err = validate_trace_text(&cycle).unwrap_err();
        assert!(err.contains("parent cycle"), "{err}");

        // A parent without a span id of its own is malformed.
        let headless = concat!(
            r#"{"name":"x","ph":"X","pid":1,"tid":0,"ts":1.0,"dur":2.0,"#,
            r#""args":{"parent":"0a"}}"#
        );
        let err = validate_trace_text(headless).unwrap_err();
        assert!(err.contains("no span id of its own"), "{err}");

        // Garbage hex ids are rejected, and unlinked spans stay legal.
        let bad_hex = span_event("x", "nothex", None);
        assert!(validate_trace_text(&bad_hex).is_err());
        let plain = r#"{"name":"x","ph":"X","pid":1,"tid":0,"ts":1.0,"dur":2.0}"#;
        let s = validate_trace_text(plain).unwrap();
        assert_eq!((s.spans, s.linked_spans), (1, 0));
    }

    #[test]
    fn trace_text_accepts_both_chrome_docs_and_jsonl() {
        let event = span_event("serve.worker", "0d", None);
        let jsonl = format!(
            "{event}\n\n  \n{event2}\n",
            event2 = span_event("serve.dp", "0e", Some("0d"))
        );
        let from_lines = validate_trace_text(&jsonl).unwrap();
        let chrome = format!(
            "{{\"traceEvents\":[{event},{e2}]}}",
            e2 = span_event("serve.dp", "0e", Some("0d"))
        );
        let from_doc = validate_trace_text(&chrome).unwrap();
        assert_eq!(from_lines, from_doc);
        assert!(validate_trace_text("not json at all").is_err());
    }

    #[test]
    fn histogram_buckets_difference_cumulative_counts() {
        // Two daemons with *different* sparse bucket sets — the case
        // where summing cumulative lines directly would be wrong.
        let a = "m_bucket{le=\"2.5e-1\"} 3\nm_bucket{le=\"5e-1\"} 10\nm_bucket{le=\"+Inf\"} 10\nm_count 10\n";
        let b = "m_bucket{le=\"5e-1\"} 4\nm_bucket{le=\"1e0\"} 6\n";
        let ba = histogram_buckets(a).unwrap();
        let bb = histogram_buckets(b).unwrap();
        assert_eq!(ba["m"], vec![(0.25, 3), (0.5, 7)]);
        assert_eq!(bb["m"], vec![(0.5, 4), (1.0, 2)]);
        // Per-bucket counts sum cleanly: cluster total at le=0.5 is
        // 3 + 7 + 4 = 14, which naive cumulative summing at le=2.5e-1
        // (3 + nothing) would misplace.
        let mut cluster: BTreeMap<u64, u64> = BTreeMap::new();
        for buckets in [&ba["m"], &bb["m"]] {
            for &(le, n) in buckets.iter() {
                *cluster.entry(le.to_bits()).or_insert(0) += n;
            }
        }
        let cum: Vec<(f64, u64)> = cluster
            .iter()
            .scan(0u64, |acc, (&le, &n)| {
                *acc += n;
                Some((f64::from_bits(le), *acc))
            })
            .collect();
        assert_eq!(cum, vec![(0.25, 3), (0.5, 14), (1.0, 16)]);

        // Quantile lines and plain samples are ignored; a registry dump
        // parses end to end.
        let r = crate::Registry::new();
        r.observe("serve.request.seconds", 0.3);
        r.observe("serve.request.seconds", 0.9);
        let parsed = histogram_buckets(&r.snapshot().to_prometheus()).unwrap();
        let total: u64 = parsed["madpipe_serve_request_seconds"]
            .iter()
            .map(|&(_, n)| n)
            .sum();
        assert_eq!(total, 2);

        // A cumulative count that drops is corruption.
        let bad = "m_bucket{le=\"2.5e-1\"} 5\nm_bucket{le=\"5e-1\"} 3\n";
        assert!(histogram_buckets(bad).unwrap_err().contains("drops"));
    }
}
