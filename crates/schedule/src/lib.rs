//! Periodic pipeline schedules: the pattern representation, an exact
//! validity/memory checker, and the paper's 1F1B* algorithm (§4.1).
//!
//! A *pattern* (§3 of the paper) is a periodic schedule of period `T`:
//! every operation (the forward/backward of each unit of a
//! [`madpipe_model::UnitSequence`]) gets a start time `t ∈ [0, T)` and an
//! index shift `h`; in the `k`-th period the operation starts at `kT + t`
//! and processes mini-batch `k - h`.
//!
//! The [`check`] module verifies a pattern exactly — dependency edges,
//! modular resource exclusivity and a steady-state memory sweep — and is
//! the arbiter used by every algorithm crate and by the test suites.

pub mod best_period;
pub mod bounds;
pub mod check;
pub mod gantt;
pub mod one_f1b;
pub mod pattern;

pub use best_period::{best_contiguous_period, best_contiguous_period_with, BestPeriod};
pub use bounds::{
    aggregate_memory_required, period_lower_bound, period_upper_bound, trivially_infeasible,
};
pub use check::{check_pattern, MemoryProfile, PatternReport, ScheduleError};
pub use one_f1b::{group_assignment, one_f1b_star};
pub use pattern::{Dir, Op, Pattern};
