//! Primitive operators: shape propagation, parameter and FLOP counts.
//!
//! FLOP counts use the usual multiply-accumulate = 2 FLOPs convention;
//! they feed the roofline cost model of [`crate::cost`]. Convolutions
//! support rectangular kernels (Inception-v3 factorizes `7×7` into
//! `1×7`·`7×1`).

use crate::tensor::TensorShape;

/// A primitive network operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// 2-D convolution with a `kh×kw` kernel, common stride, and
    /// `(ph, pw)` padding; bias included.
    Conv2d {
        out_ch: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        ph: u64,
        pw: u64,
    },
    /// Batch normalization (affine).
    BatchNorm,
    /// ReLU activation.
    Relu,
    /// Max pooling.
    MaxPool {
        kernel: u64,
        stride: u64,
        padding: u64,
    },
    /// Average pooling.
    AvgPool {
        kernel: u64,
        stride: u64,
        padding: u64,
    },
    /// Global average pooling to `1×1`.
    GlobalAvgPool,
    /// Fully connected layer on flattened input.
    Linear { out_features: u64 },
}

impl Op {
    /// Square-kernel convolution.
    pub fn conv(out_ch: u64, kernel: u64, stride: u64, padding: u64) -> Self {
        Op::Conv2d {
            out_ch,
            kh: kernel,
            kw: kernel,
            stride,
            ph: padding,
            pw: padding,
        }
    }

    /// Rectangular-kernel convolution (stride 1).
    pub fn conv_rect(out_ch: u64, kh: u64, kw: u64, ph: u64, pw: u64) -> Self {
        Op::Conv2d {
            out_ch,
            kh,
            kw,
            stride: 1,
            ph,
            pw,
        }
    }

    /// A `1×1` convolution (stride 1, no padding).
    pub fn conv1x1(out_ch: u64) -> Self {
        Self::conv(out_ch, 1, 1, 0)
    }

    /// A `3×3` "same" convolution.
    pub fn conv3x3(out_ch: u64, stride: u64) -> Self {
        Self::conv(out_ch, 3, stride, 1)
    }

    /// Output shape of the op applied to `input`.
    pub fn output_shape(&self, input: TensorShape) -> TensorShape {
        let spatial = |x: u64, k: u64, s: u64, p: u64| {
            debug_assert!(x + 2 * p >= k, "kernel larger than padded input");
            (x + 2 * p - k) / s + 1
        };
        match *self {
            Op::Conv2d {
                out_ch,
                kh,
                kw,
                stride,
                ph,
                pw,
            } => TensorShape::new(
                input.n,
                out_ch,
                spatial(input.h, kh, stride, ph),
                spatial(input.w, kw, stride, pw),
            ),
            Op::BatchNorm | Op::Relu => input,
            Op::MaxPool {
                kernel,
                stride,
                padding,
            }
            | Op::AvgPool {
                kernel,
                stride,
                padding,
            } => TensorShape::new(
                input.n,
                input.c,
                spatial(input.h, kernel, stride, padding),
                spatial(input.w, kernel, stride, padding),
            ),
            Op::GlobalAvgPool => TensorShape::new(input.n, input.c, 1, 1),
            Op::Linear { out_features } => TensorShape::new(input.n, out_features, 1, 1),
        }
    }

    /// Trainable parameter count.
    pub fn params(&self, input: TensorShape) -> u64 {
        match *self {
            Op::Conv2d { out_ch, kh, kw, .. } => kh * kw * input.c * out_ch + out_ch,
            Op::BatchNorm => 2 * input.c,
            Op::Linear { out_features } => {
                let in_features = input.c * input.h * input.w;
                in_features * out_features + out_features
            }
            _ => 0,
        }
    }

    /// Forward FLOPs.
    pub fn flops(&self, input: TensorShape) -> u64 {
        let out = self.output_shape(input);
        match *self {
            Op::Conv2d { kh, kw, .. } => 2 * kh * kw * input.c * out.elements(),
            Op::BatchNorm => 4 * input.elements(),
            Op::Relu => input.elements(),
            Op::MaxPool { kernel, .. } | Op::AvgPool { kernel, .. } => {
                kernel * kernel * out.elements()
            }
            Op::GlobalAvgPool => input.elements(),
            Op::Linear { .. } => {
                let in_features = input.c * input.h * input.w;
                2 * input.n * in_features * out.c
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_params_flops() {
        let input = TensorShape::new(8, 3, 224, 224);
        let op = Op::conv(64, 7, 2, 3);
        let out = op.output_shape(input);
        assert_eq!(out, TensorShape::new(8, 64, 112, 112));
        assert_eq!(op.params(input), 7 * 7 * 3 * 64 + 64);
        assert_eq!(op.flops(input), 2 * 49 * 3 * out.elements());
    }

    #[test]
    fn rect_conv_factorization_is_cheaper_than_square() {
        let input = TensorShape::new(8, 192, 35, 35);
        let a = Op::conv_rect(192, 1, 7, 0, 3);
        let b = Op::conv_rect(192, 7, 1, 3, 0);
        let square = Op::conv(192, 7, 1, 3);
        let out_a = a.output_shape(input);
        assert_eq!(out_a, input.with_channels(192));
        assert_eq!(b.output_shape(out_a), out_a);
        assert!(a.flops(input) + b.flops(out_a) < square.flops(input));
    }

    #[test]
    fn linear_flattens_input() {
        let input = TensorShape::new(8, 2048, 1, 1);
        let op = Op::Linear { out_features: 1000 };
        assert_eq!(op.output_shape(input), TensorShape::new(8, 1000, 1, 1));
        assert_eq!(op.params(input), 2048 * 1000 + 1000);
        assert_eq!(op.flops(input), 2 * 8 * 2048 * 1000);
    }

    #[test]
    fn pointwise_ops_preserve_shape() {
        let input = TensorShape::new(2, 16, 10, 10);
        assert_eq!(Op::BatchNorm.output_shape(input), input);
        assert_eq!(Op::Relu.output_shape(input), input);
        assert_eq!(Op::BatchNorm.params(input), 32);
        assert_eq!(Op::Relu.params(input), 0);
    }

    #[test]
    fn global_pool_collapses_spatial() {
        let input = TensorShape::new(2, 16, 10, 12);
        assert_eq!(
            Op::GlobalAvgPool.output_shape(input),
            TensorShape::new(2, 16, 1, 1)
        );
    }

    #[test]
    fn pooling_counts_kernel_flops() {
        let input = TensorShape::new(1, 4, 8, 8);
        let op = Op::MaxPool {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let out = op.output_shape(input);
        assert_eq!(out, TensorShape::new(1, 4, 4, 4));
        assert_eq!(op.flops(input), 4 * out.elements());
    }
}
