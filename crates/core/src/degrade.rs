//! Degraded-mode replanning: derive the platform that survives a
//! [`PlatformFault`] and replan the same chain on it.
//!
//! The planner treats the survivor as an ordinary instance — there is no
//! special "degraded" code path in the DP, which is exactly what makes
//! the result trustworthy: a replanned instance is bit-identical to a
//! cold `madpipe plan` on the surviving platform (the chaos harness in
//! `madpipe-serve` asserts this down to the f64 bits). What this module
//! adds is the bookkeeping around that replan: the baseline plan on the
//! healthy platform, the degraded plan on the survivor, and the
//! throughput delta between them, plus `replan.*` spans and counters so
//! an operator can see degradations in the metrics stream.
//!
//! Warm starts: [`replan_with_session`] plans the baseline through a
//! caller-owned [`ProbeSession`], so a service that already planned the
//! healthy instance pays only for the degraded one (the `madpipe serve`
//! daemon goes further and answers both sides from its plan cache when
//! it can). The degraded side is *incremental* when the fault only
//! shrinks the platform: the baseline session's dense DP slabs seed the
//! degraded solves ([`ProbeSession::derive`]), which reuses every
//! surviving state without changing a single output bit.

use madpipe_model::{Allocation, Chain, ModelError, Platform, PlatformFault};

use crate::dp::ProbeSession;
use crate::planner::{
    madpipe_plan_with_session, madpipe_plan_with_stats, MadPipePlan, PlanError, PlannerConfig,
};
use crate::stats::{PlannerStats, ProbeSource};

/// The outcome of replanning one chain across one platform fault.
#[derive(Debug)]
pub struct ReplanOutcome {
    /// The injected fault.
    pub fault: PlatformFault,
    /// The platform that survives the fault.
    pub degraded_platform: Platform,
    /// Plan on the healthy platform (it may itself be infeasible, e.g.
    /// when replanning a speculative instance).
    pub baseline: Result<MadPipePlan, PlanError>,
    /// Plan on the surviving platform.
    pub degraded: Result<MadPipePlan, PlanError>,
    /// Planner instrumentation of the baseline plan.
    pub baseline_stats: PlannerStats,
    /// Planner instrumentation of the degraded plan, extended with
    /// `replan.fault.<kind>` and the `replan.throughput_delta` gauge.
    pub degraded_stats: PlannerStats,
    /// A fast fallback allocation for the survivor: one slab-seeded DP
    /// probe of the degraded platform at the *baseline plan's* chosen
    /// target period ([`crate::ProbeSource::Bridge`]). Because the
    /// baseline session retains a dense slab at exactly that target, the
    /// probe reuses every surviving state and costs a fraction of a full
    /// solve — a usable allocation even when the full degraded replan
    /// fails in phase 2. `None` on cold replans ([`replan`]), when the
    /// baseline itself did not plan, or when the baseline target is
    /// infeasible on the survivor.
    pub bridge: Option<Allocation>,
}

impl ReplanOutcome {
    /// Relative throughput change `degraded/baseline − 1` (negative when
    /// the fault costs throughput), when both sides planned.
    pub fn throughput_delta(&self) -> Option<f64> {
        match (&self.baseline, &self.degraded) {
            (Ok(b), Ok(d)) => Some(d.throughput() / b.throughput() - 1.0),
            _ => None,
        }
    }

    /// Achieved-period ratio `degraded/baseline` (≥ 1 when the fault
    /// slows the pipeline), when both sides planned.
    pub fn period_ratio(&self) -> Option<f64> {
        match (&self.baseline, &self.degraded) {
            (Ok(b), Ok(d)) => Some(d.period() / b.period()),
            _ => None,
        }
    }
}

/// Replan `chain` across `fault`: plan the healthy platform, derive the
/// survivor, plan it, and report both. Errors only when the fault itself
/// is unusable (losing every GPU, an out-of-range fraction); planning
/// failures on either side are carried in the outcome.
pub fn replan(
    chain: &Chain,
    platform: &Platform,
    fault: PlatformFault,
    cfg: &PlannerConfig,
) -> Result<ReplanOutcome, ModelError> {
    let _span = madpipe_obs::span("replan.total");
    let degraded_platform = fault.apply(platform)?;
    let (baseline, baseline_stats) = madpipe_plan_with_stats(chain, platform, cfg);
    let (degraded, degraded_stats) = madpipe_plan_with_stats(chain, &degraded_platform, cfg);
    Ok(finish(
        fault,
        degraded_platform,
        baseline,
        degraded,
        baseline_stats,
        degraded_stats,
        None,
    ))
}

/// [`replan`] with the baseline planned through a caller-owned warm
/// [`ProbeSession`] — revisited baseline targets cost a memo lookup, and
/// the baseline plan stays bit-identical to a cold one. The degraded
/// side plans through a session *derived* from the baseline one
/// ([`ProbeSession::derive`]): when the fault only shrinks the platform
/// (a GPU loss keeps memory, bandwidth and therefore every DP axis
/// intact), the surviving prefix of the baseline's dense DP slabs seeds
/// the degraded solves, so the replan is incremental rather than from
/// scratch — while staying bit-identical to a cold plan of the survivor,
/// because seeded states carry exactly the values a cold solve would
/// recompute. Faults that reshape the state space (memory or link
/// changes) derive an effectively fresh session.
pub fn replan_with_session(
    session: &mut ProbeSession<'_>,
    fault: PlatformFault,
    cfg: &PlannerConfig,
) -> Result<ReplanOutcome, ModelError> {
    let _span = madpipe_obs::span("replan.total");
    let degraded_platform = fault.apply(session.platform())?;
    let (baseline, baseline_stats) = madpipe_plan_with_session(session, cfg);
    let (degraded, degraded_stats, bridge) = {
        let mut degraded_session = session.derive(&degraded_platform);
        // Bridge probe: the survivor at the baseline's chosen target.
        // The parent holds a slab at exactly this `T̂`, so the probe is
        // seeded (nearly free) and yields an immediate fallback
        // allocation; the full replan below stays bit-identical to a
        // cold one either way (probes are pure, and an extra cached
        // outcome never changes what the bisection computes).
        let bridge = baseline.as_ref().ok().and_then(|plan| {
            degraded_session
                .probe(
                    plan.phase1.t_hat,
                    cfg.algorithm1.use_special,
                    ProbeSource::Bridge,
                )
                .allocation
        });
        let (d, ds) = madpipe_plan_with_session(&mut degraded_session, cfg);
        (d, ds, bridge)
    };
    Ok(finish(
        fault,
        degraded_platform,
        baseline,
        degraded,
        baseline_stats,
        degraded_stats,
        bridge,
    ))
}

fn finish(
    fault: PlatformFault,
    degraded_platform: Platform,
    baseline: Result<MadPipePlan, PlanError>,
    degraded: Result<MadPipePlan, PlanError>,
    baseline_stats: PlannerStats,
    mut degraded_stats: PlannerStats,
    bridge: Option<Allocation>,
) -> ReplanOutcome {
    degraded_stats
        .metrics
        .bump_counter(&format!("replan.fault.{}", fault.kind()), 1);
    let mut outcome = ReplanOutcome {
        fault,
        degraded_platform,
        baseline,
        degraded,
        baseline_stats,
        degraded_stats,
        bridge,
    };
    if let Some(delta) = outcome.throughput_delta() {
        outcome
            .degraded_stats
            .metrics
            .set_gauge("replan.throughput_delta", delta);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain() -> Chain {
        let layers = (0..6)
            .map(|i| {
                Layer::new(
                    format!("l{i}"),
                    1e-3 * (i + 1) as f64,
                    2e-3 * (i + 1) as f64,
                    1 << 20,
                    4 << 20,
                )
            })
            .collect();
        Chain::new("t", 1 << 20, layers).unwrap()
    }

    fn platform() -> Platform {
        Platform::new(4, 2 << 30, 12e9).unwrap()
    }

    #[test]
    fn replan_is_bit_identical_to_offline_planning_on_the_survivor() {
        let c = chain();
        let p = platform();
        let cfg = PlannerConfig::default();
        let fault = PlatformFault::GpuLoss { count: 1 };
        let out = replan(&c, &p, fault, &cfg).unwrap();
        assert_eq!(out.degraded_platform.n_gpus, 3);

        // The degraded plan must match a cold plan of the survivor, to
        // the f64 bit — there is no degraded-specific planner path.
        let offline = crate::planner::madpipe_plan(&c, &out.degraded_platform, &cfg).unwrap();
        let degraded = out.degraded.as_ref().unwrap();
        assert_eq!(degraded.period().to_bits(), offline.period().to_bits());
        assert_eq!(degraded.allocation, offline.allocation);

        // Losing a GPU can never raise throughput.
        let delta = out.throughput_delta().unwrap();
        assert!(delta <= 1e-12, "GPU loss raised throughput by {delta}");
        assert!(out.period_ratio().unwrap() >= 1.0 - 1e-12);
        assert_eq!(
            out.degraded_stats.metrics.counter("replan.fault.gpu_loss"),
            1
        );
    }

    #[test]
    fn warm_session_replan_matches_cold_replan() {
        let c = chain();
        let p = platform();
        let cfg = PlannerConfig::default();
        let fault = PlatformFault::MemoryReduction { fraction: 0.5 };
        let cold = replan(&c, &p, fault, &cfg).unwrap();

        let mut session = ProbeSession::new(&c, &p, &cfg.algorithm1.discretization);
        // Warm the session with an unrelated plan first.
        let _ = madpipe_plan_with_session(&mut session, &cfg);
        let warm = replan_with_session(&mut session, fault, &cfg).unwrap();

        let (a, b) = (cold.degraded.unwrap(), warm.degraded.unwrap());
        assert_eq!(a.period().to_bits(), b.period().to_bits());
        let (a, b) = (cold.baseline.unwrap(), warm.baseline.unwrap());
        assert_eq!(a.period().to_bits(), b.period().to_bits());
    }

    #[test]
    fn gpu_loss_replans_reuse_surviving_dp_slabs() {
        // A GPU loss keeps every DP axis intact, so the warm replan must
        // seed its solves from the baseline session's slabs — and still
        // produce the identical ReplanOutcome a cold replan does.
        let c = chain();
        let p = platform();
        let cfg = PlannerConfig::default();
        let fault = PlatformFault::GpuLoss { count: 1 };
        let cold = replan(&c, &p, fault, &cfg).unwrap();

        let mut session = ProbeSession::new(&c, &p, &cfg.algorithm1.discretization);
        let _ = madpipe_plan_with_session(&mut session, &cfg);
        let warm = replan_with_session(&mut session, fault, &cfg).unwrap();

        assert!(
            warm.degraded_stats.dp.states_seeded > 0,
            "surviving slab states must seed the degraded solves: {:?}",
            warm.degraded_stats.dp
        );
        assert!(
            warm.bridge.is_some(),
            "baseline target is feasible on the survivor here, so the \
             bridge probe must yield a fallback allocation"
        );
        assert!(
            cold.bridge.is_none(),
            "cold replans have no session to bridge from"
        );
        assert_eq!(
            cold.throughput_delta().unwrap().to_bits(),
            warm.throughput_delta().unwrap().to_bits()
        );
        let (a, b) = (cold.degraded.unwrap(), warm.degraded.unwrap());
        assert_eq!(a.period().to_bits(), b.period().to_bits());
        assert_eq!(a.allocation, b.allocation);
        let (a, b) = (cold.baseline.unwrap(), warm.baseline.unwrap());
        assert_eq!(a.period().to_bits(), b.period().to_bits());
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn unusable_faults_are_rejected_before_planning() {
        let c = chain();
        let p = platform();
        let cfg = PlannerConfig::default();
        assert!(replan(&c, &p, PlatformFault::GpuLoss { count: 4 }, &cfg).is_err());
        assert!(replan(&c, &p, PlatformFault::LinkSlowdown { fraction: 1.5 }, &cfg).is_err());
    }

    #[test]
    fn infeasible_degraded_instances_are_reported_not_panicked() {
        // 2 GPUs with barely enough memory: losing one leaves a single
        // GPU that cannot hold the whole chain.
        let layers = vec![
            Layer::new("l0", 1e-3, 2e-3, 600 << 20, 1 << 20),
            Layer::new("l1", 1e-3, 2e-3, 600 << 20, 1 << 20),
        ];
        let c = Chain::new("tight", 1 << 20, layers).unwrap();
        let p = Platform::new(2, 2 << 30, 12e9).unwrap();
        let cfg = PlannerConfig::default();
        let out = replan(&c, &p, PlatformFault::GpuLoss { count: 1 }, &cfg).unwrap();
        assert!(out.baseline.is_ok(), "baseline fits across 2 GPUs");
        assert!(out.degraded.is_err(), "survivor cannot hold the chain");
        assert!(out.throughput_delta().is_none());
    }
}
