//! Eager scheduling vs planned periodic schedules — the paper's core
//! motivation, observed in the discrete-event simulator.
//!
//! PipeDream executes its partition with an *eager* 1F1B policy; §4.1
//! argues this makes memory consumption unpredictable. Here we take the
//! same allocation, run (a) the eager policy at several pipeline depths
//! and (b) the 1F1B*/MadPipe periodic pattern, and compare measured
//! throughput and measured memory peaks against the limit.
//!
//! ```sh
//! cargo run --release --example eager_vs_planned [network] [P] [M_gb]
//! ```

use madpipe::core::{madpipe_plan, PlannerConfig};
use madpipe::dnn::{networks, GpuModel};
use madpipe::model::Platform;
use madpipe::sim::{replay_pattern, simulate_eager, EagerConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let m: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);

    let net = networks::by_name(net_name).expect("unknown network");
    let chain = net.profile(8, 1000, &GpuModel::default()).unwrap();
    let platform = Platform::gb(p, m, 12.0).unwrap();
    const GIB: f64 = (1u64 << 30) as f64;

    let plan = madpipe_plan(&chain, &platform, &PlannerConfig::default())
        .expect("planning failed — try a larger memory limit");
    println!(
        "{} on {} GPUs, {} GB each — MadPipe allocation, {} stages\n",
        chain.name(),
        p,
        m,
        plan.allocation.len()
    );
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "policy", "period (ms)", "peak (GB)", "fits?"
    );

    let replay = replay_pattern(
        &chain,
        &platform,
        &plan.allocation,
        &plan.schedule.pattern,
        100,
    );
    println!(
        "{:<26} {:>12.1} {:>12.2} {:>10}",
        "planned periodic pattern",
        replay.period * 1e3,
        replay.max_peak_bytes() as f64 / GIB,
        if replay.memory_violation { "NO" } else { "yes" }
    );

    for depth in [1usize, 2, 4, 8, 16] {
        let eager = simulate_eager(
            &chain,
            &platform,
            &plan.allocation,
            &EagerConfig {
                batches: 100,
                depth: Some(depth),
            },
        );
        println!(
            "{:<26} {:>12.1} {:>12.2} {:>10}",
            format!("eager 1F1B, depth {depth}"),
            eager.period * 1e3,
            eager.max_peak_bytes() as f64 / GIB,
            if eager.memory_violation { "NO" } else { "yes" }
        );
    }
    println!(
        "\nEager scheduling only reaches the planned throughput at depths\n\
         whose memory peak already exceeds the limit — the planned pattern\n\
         gets the throughput *and* provably fits (the paper's §4.1 point)."
    );
}
