//! Figure 7: per-network geometric mean, over all (P, β), of the ratio
//! *algorithm period / MadPipe period* as a function of the memory limit.
//!
//! A PipeDream ratio above 1 means MadPipe is faster; the paper reports
//! it consistently above 1.2 when memory is below 10 GB. Cells where
//! PipeDream fails entirely (MadPipe plans, PipeDream cannot) are counted
//! separately — they would push the mean to infinity.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::csv::{ratio, Table};
use crate::grid::{geometric_mean, CellResult};

/// Build the Figure 7 table and text rendering from grid results.
pub fn generate(results: &[CellResult]) -> (String, Table) {
    let mut table = Table::new(&[
        "network",
        "M_gb",
        "pipedream_over_madpipe_gmean",
        "cells",
        "pipedream_failures",
        "madpipe_failures",
    ]);
    let networks: BTreeSet<&str> = results.iter().map(|r| r.cell.network.as_str()).collect();
    let memories: BTreeSet<u64> = results.iter().map(|r| r.cell.m_gb).collect();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 7 — geometric mean over (P, beta) of PipeDream/MadPipe period ratio"
    );
    let _ = writeln!(
        text,
        "  (>1 means MadPipe is faster; 'pd-fail' counts cells only MadPipe could plan)"
    );
    let _ = write!(text, "  {:>5} |", "M(GB)");
    for net in &networks {
        let _ = write!(text, " {:>22} |", net);
    }
    let _ = writeln!(text);

    for &m in &memories {
        let _ = write!(text, "  {:>5} |", m);
        for net in &networks {
            let group: Vec<&CellResult> = results
                .iter()
                .filter(|r| r.cell.network == *net && r.cell.m_gb == m)
                .collect();
            let gmean = geometric_mean(group.iter().map(|r| r.ratio()));
            let pd_fail = group
                .iter()
                .filter(|r| r.madpipe.is_some() && r.pipedream.is_none())
                .count();
            let mp_fail = group.iter().filter(|r| r.madpipe.is_none()).count();
            let shown = gmean
                .map(|g| format!("{g:.3}"))
                .unwrap_or_else(|| "-".into());
            let _ = write!(text, " {:>12} ({} pd-fail) |", shown, pd_fail);
            table.push(vec![
                net.to_string(),
                m.to_string(),
                ratio(gmean),
                group.len().to_string(),
                pd_fail.to_string(),
                mp_fail.to_string(),
            ]);
        }
        let _ = writeln!(text);
    }
    (text, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Cell;

    fn cell(net: &str, p: usize, m: u64, mp: Option<f64>, pd: Option<f64>) -> CellResult {
        CellResult {
            cell: Cell {
                network: net.into(),
                p,
                m_gb: m,
                beta_gb: 12.0,
                policy: Default::default(),
            },
            sequential: 1.0,
            madpipe_estimate: mp,
            madpipe: mp,
            pipedream_estimate: pd,
            pipedream: pd,
            planning_seconds: 0.1,
            stats: crate::grid::test_stats(3, 0, 10),
            certified: mp.map(|_| true),
            jitter_margin: mp.map(|_| 0.1),
        }
    }

    #[test]
    fn aggregates_ratios_per_network_and_memory() {
        let results = vec![
            cell("resnet50", 2, 3, Some(0.1), Some(0.2)),  // ratio 2
            cell("resnet50", 4, 3, Some(0.1), Some(0.05)), // ratio 0.5
            cell("resnet50", 2, 8, Some(0.1), None),       // pd failure
        ];
        let (text, table) = generate(&results);
        // gm(2, 0.5) = 1
        assert!(text.contains("1.000"));
        assert_eq!(table.len(), 2); // two memory levels
        let csv = table.to_csv();
        assert!(csv.contains("resnet50,3,1.0000,2,0,0"));
        assert!(csv.contains("resnet50,8,,1,1,0"));
    }
}
