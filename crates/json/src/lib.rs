//! A small, dependency-free JSON layer.
//!
//! The workspace needs JSON in exactly three places — profile files
//! (`madpipe-dnn`), Chrome traces (`madpipe-sim`) and result tables —
//! none of which justify an external serialization framework. This crate
//! provides a [`Value`] tree, a strict parser, compact/pretty writers and
//! the [`ToJson`]/[`FromJson`] traits the model types implement by hand.
//!
//! Numbers are kept in three shapes (`u64`, `i64`, `f64`) so integer
//! byte counts round-trip exactly; floats are printed with Rust's
//! shortest-round-trip formatting, so `f64` values survive a round trip
//! bit-for-bit (NaN and infinities are not representable in JSON and are
//! rejected on write).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer (the common case for byte counts).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Any number written with a fraction or exponent.
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Object with insertion order preserved.
    Object(Vec<(String, Value)>),
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description, with a byte offset for parse errors.
    pub message: String,
}

impl JsonError {
    /// Build an error from anything printable.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serialize a Rust value into a [`Value`] tree.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Rebuild a Rust value from a [`Value`] tree.
pub trait FromJson: Sized {
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl Value {
    /// Parse a JSON document (strict: no trailing garbage).
    pub fn parse(s: &str) -> Result<Value, JsonError> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}");
                let s = format!("{x}");
                out.push_str(&s);
                // Keep the float/integer distinction across a round trip.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => write_seq(
                out,
                indent,
                depth,
                '[',
                ']',
                items.iter(),
                |out, v, ind, d| v.write(out, ind, d),
            ),
            Value::Object(fields) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                fields.iter(),
                |out, (k, v), ind, d| {
                    write_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind, d);
                },
            ),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as a `u64` (accepting exact floats).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Ok(*x as u64)
            }
            other => Err(JsonError::new(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Float(x) => Ok(*x),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(v) => Ok(v),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// The object's fields as a map (for tests and ad-hoc inspection).
    pub fn as_map(&self) -> Result<BTreeMap<&str, &Value>, JsonError> {
        match self {
            Value::Object(fields) => Ok(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            other => Err(JsonError::new(format!("expected object, got {other:?}"))),
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{} at byte {}", msg, self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our files;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// Blanket conveniences for common shapes.
impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::UInt(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl FromJson for u64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_u64()
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2.0, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.field("b").unwrap().get("c"), Some(&Value::Null));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "nulla", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789e10, -0.25] {
            let v = Value::Float(x);
            let back = Value::parse(&v.to_string_compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn compact_and_pretty_parse_back_equal() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("resnet".into())),
            (
                "layers".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(0.5)]),
            ),
            ("gpu".into(), Value::Null),
        ]);
        assert_eq!(Value::parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn float_integer_values_keep_their_type() {
        let v = Value::Float(3.0);
        let s = v.to_string_compact();
        assert_eq!(s, "3.0");
        assert_eq!(Value::parse(&s).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("tab\t\"quote\"\u{1}".into());
        let s = v.to_string_compact();
        assert_eq!(Value::parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_passes_through() {
        let v = Value::parse("\"héllo → 🚀\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo → 🚀");
    }
}
