//! `madpipe-serve`: a concurrent planning service over newline-delimited
//! JSON.
//!
//! The daemon turns the library planner into a long-lived service: a
//! nonblocking acceptor, a thread per connection, a bounded worker pool
//! whose workers each keep a warm [`madpipe_core::ProbeSession`], and a
//! sharded LRU cache keyed by the *canonical* instance — key-sorted,
//! unit-normalized JSON — so the same problem asked twice (in any field
//! order, in bytes or GiB) is answered from memory, bit-identical to a
//! cold `madpipe plan`.
//!
//! The daemon is supervised: worker panics are isolated per request
//! (structured `internal` error, `serve.panics` counter) and dead
//! workers are respawned; `{"cmd":"health"}` reports queue depth and
//! worker liveness, and `{"cmd":"replan"}` answers degraded-mode
//! replanning (GPU loss, memory reduction, link slowdown) through the
//! same cache and pool.
//!
//! See [`protocol`] for the wire format, [`cache`] for the keying and
//! eviction rules, and [`server`] for the threading, supervision and
//! drain story.

pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::PlanCache;
pub use protocol::{
    canonical_instance, parse_request, plan_to_json, PlanRequest, ReplanRequest, Request,
    ServeError,
};
pub use server::{install_signal_handlers, term_requested, ServeConfig, Server};
