//! Hybrid model/data parallelism — the paper's stated perspective.
//!
//! §1 and §6 of the paper position MadPipe as the building block of a
//! hybrid scheme: split the `P` GPUs into `d` *replica groups* of
//! `P/d` GPUs, run MadPipe's pipelined model parallelism inside each
//! group, and data parallelism across groups. Each stage's `d` replicas
//! synchronize gradients with a ring all-reduce; following the
//! PipeDream-2BW double-buffered weight convention already used by the
//! memory model, the all-reduce of one batch overlaps the compute of the
//! next, so the steady-state period of a group is
//!
//! `T_eff(d) = max( T_madpipe(P/d), max_s 2·(d−1)/d · W(s)/β )`
//!
//! and the aggregate throughput is `d / T_eff(d)`. This module searches
//! the divisors of `P` for the best replica count.

use madpipe_model::{Chain, Platform};

use crate::planner::{madpipe_plan, MadPipePlan, PlanError, PlannerConfig};

/// A hybrid plan: `replicas` data-parallel copies of a `group_gpus`-wide
/// MadPipe pipeline.
#[derive(Debug, Clone)]
pub struct HybridPlan {
    /// Number of data-parallel replica groups `d`.
    pub replicas: usize,
    /// GPUs per group (`P / d`).
    pub group_gpus: usize,
    /// The MadPipe plan of one group.
    pub plan: MadPipePlan,
    /// Ring all-reduce bottleneck per batch (`max_s 2(d−1)/d·W(s)/β`).
    pub allreduce_time: f64,
    /// Effective steady-state period of one group.
    pub effective_period: f64,
}

impl HybridPlan {
    /// Aggregate throughput in mini-batches per second across all groups.
    pub fn throughput(&self) -> f64 {
        self.replicas as f64 / self.effective_period
    }
}

/// Ring all-reduce bottleneck for a given plan at `d` replicas: each GPU
/// synchronizes the gradients of *all* its stages with its `d−1` peers,
/// so the busiest cross-group link carries `2·(d−1)/d` times the
/// per-GPU gradient bytes per batch.
pub fn allreduce_bottleneck(
    chain: &Chain,
    platform: &Platform,
    plan: &MadPipePlan,
    d: usize,
) -> f64 {
    if d <= 1 {
        return 0.0;
    }
    let factor = 2.0 * (d as f64 - 1.0) / d as f64;
    let mut per_gpu = vec![0u64; platform.n_gpus];
    for s in plan.allocation.stages() {
        per_gpu[s.gpu] += chain.weight_bytes(s.layers.clone());
    }
    per_gpu
        .iter()
        .map(|&w| factor * w as f64 / platform.bandwidth)
        .fold(0.0, f64::max)
}

/// Search the divisors of `platform.n_gpus` for the replica count with
/// the highest aggregate throughput. `d = 1` (pure model parallelism) is
/// always a candidate, so the result is never worse than plain MadPipe
/// (when plain MadPipe is feasible at all; tighter per-group platforms
/// can rescue otherwise-infeasible instances and vice versa).
pub fn best_hybrid(
    chain: &Chain,
    platform: &Platform,
    cfg: &PlannerConfig,
) -> Result<HybridPlan, PlanError> {
    let p = platform.n_gpus;
    let mut best: Option<HybridPlan> = None;
    let mut last_err = PlanError::Phase1Infeasible;
    for d in 1..=p {
        if !p.is_multiple_of(d) {
            continue;
        }
        let group = Platform {
            n_gpus: p / d,
            ..*platform
        };
        match madpipe_plan(chain, &group, cfg) {
            Ok(plan) => {
                let allreduce = allreduce_bottleneck(chain, &group, &plan, d);
                let effective = plan.period().max(allreduce);
                let candidate = HybridPlan {
                    replicas: d,
                    group_gpus: p / d,
                    plan,
                    allreduce_time: allreduce,
                    effective_period: effective,
                };
                if best
                    .as_ref()
                    .is_none_or(|b| candidate.throughput() > b.throughput())
                {
                    best = Some(candidate);
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(n: usize, w: u64, act: u64) -> Chain {
        let layers = (0..n)
            .map(|i| Layer::new(format!("l{i}"), 1e-3, 2e-3, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn pure_model_parallelism_is_always_considered() {
        let c = chain(8, 1 << 10, 1 << 12);
        let platform = Platform::new(3, 1 << 30, 1e9).unwrap(); // prime P
        let hybrid = best_hybrid(&c, &platform, &PlannerConfig::default()).unwrap();
        // Divisors of 3 are {1, 3}; both group shapes are valid.
        assert!(hybrid.replicas == 1 || hybrid.replicas == 3);
        assert!(hybrid.throughput() > 0.0);
    }

    #[test]
    fn hybrid_beats_pure_model_parallelism_on_wide_platforms() {
        // Few layers, cheap comm: a deep pipeline on 8 GPUs cannot use
        // them all (only 4 layers), but 4 replicas of 2 GPUs can.
        let c = chain(4, 1 << 8, 1 << 10);
        let platform = Platform::new(8, 1 << 30, 1e9).unwrap();
        let hybrid = best_hybrid(&c, &platform, &PlannerConfig::default()).unwrap();
        let pure = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap();
        assert!(hybrid.throughput() + 1e-9 >= 1.0 / pure.period());
        assert!(
            hybrid.replicas >= 2,
            "expected replication, got d = {}",
            hybrid.replicas
        );
    }

    #[test]
    fn heavy_weights_and_slow_links_discourage_replication() {
        // Gradient all-reduce over 1 GB of weights at 1 GB/s dominates.
        let c = chain(8, 128 << 20, 1 << 10);
        let platform = Platform::new(4, 16 << 30, (1u64 << 30) as f64).unwrap();
        let hybrid = best_hybrid(&c, &platform, &PlannerConfig::default()).unwrap();
        assert_eq!(
            hybrid.replicas, 1,
            "all-reduce cost should forbid replication"
        );
        assert_eq!(hybrid.allreduce_time, 0.0);
    }

    #[test]
    fn throughput_accounting_is_consistent() {
        let c = chain(6, 1 << 12, 1 << 12);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let hybrid = best_hybrid(&c, &platform, &PlannerConfig::default()).unwrap();
        assert!(hybrid.effective_period + 1e-12 >= hybrid.plan.period());
        assert!(hybrid.effective_period + 1e-12 >= hybrid.allreduce_time);
        assert!(
            (hybrid.throughput() - hybrid.replicas as f64 / hybrid.effective_period).abs() < 1e-12
        );
        assert_eq!(hybrid.group_gpus * hybrid.replicas, 4);
    }
}
