//! Three-way baseline comparison: MadPipe vs PipeDream (asynchronous
//! 1F1B) vs GPipe (synchronous micro-batch pipelining with flush).
//!
//! Prints the ResNet-50 memory sweep for all three systems, then
//! benchmarks GPipe's planner (near-instant — it solves a much simpler
//! problem).

use criterion::{criterion_group, criterion_main, Criterion};

use madpipe_core::{compare, PlannerConfig};
use madpipe_dnn::{resnet50, GpuModel};
use madpipe_model::Platform;
use madpipe_pipedream::{gpipe_plan, GPipeConfig};

fn print_table(chain: &madpipe_model::Chain) {
    println!("\nThree-way: period (ms), ResNet-50, P = 4, beta = 12 GB/s");
    println!(
        "{:>6} | {:>9} {:>10} {:>16} {:>18}",
        "M(GB)", "madpipe", "pipedream", "gpipe(recompute)", "gpipe(no-recomp)"
    );
    for m in [3u64, 4, 6, 8, 12, 16] {
        let platform = Platform::gb(4, m, 12.0).unwrap();
        let cmp = compare(chain, &platform, &PlannerConfig::default());
        let fmt_res = |v: Option<f64>| v.map(|x| format!("{:.1}", x * 1e3)).unwrap_or("inf".into());
        let gp_r = gpipe_plan(chain, &platform, &GPipeConfig::default()).map(|p| p.period);
        let gp_n = gpipe_plan(
            chain,
            &platform,
            &GPipeConfig {
                recompute: false,
                ..GPipeConfig::default()
            },
        )
        .map(|p| p.period);
        println!(
            "{m:>6} | {:>9} {:>10} {:>16} {:>18}",
            fmt_res(cmp.madpipe.as_ref().ok().map(|p| p.period())),
            fmt_res(cmp.pipedream.as_ref().ok().map(|p| p.period())),
            fmt_res(gp_r),
            fmt_res(gp_n),
        );
    }
    println!(
        "\nExpected shape: GPipe's flush bubble keeps it above the 1F1B\n\
         systems when memory allows them to pipeline; at the very tightest\n\
         memory GPipe-with-recompute survives longest (one weight copy,\n\
         recomputed activations)."
    );
}

fn bench(c: &mut Criterion) {
    let chain = resnet50().profile(8, 1000, &GpuModel::default()).unwrap();
    print_table(&chain);
    let platform = Platform::gb(4, 8, 12.0).unwrap();
    let mut group = c.benchmark_group("baselines");
    group.bench_function("gpipe_plan/resnet50_p4_m8", |b| {
        b.iter(|| {
            gpipe_plan(&chain, &platform, &GPipeConfig::default())
                .unwrap()
                .period
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
